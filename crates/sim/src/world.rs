//! The scenario world: Bob, his three Web applications, his friends, and
//! his Authorization Manager — §II of the paper, executable.
//!
//! [`World::bootstrap`] wires the full simulated environment: identity
//! provider, AM, WebPics / WebStorage / WebDocs, and user accounts. The
//! experiment drivers (and the examples) then run protocol flows against
//! it and read the network's counters and traces.

use std::collections::HashMap;
use std::sync::Arc;

use ucam_am::AuthorizationManager;
use ucam_host::{Video, WebDocs, WebPics, WebStorage, WebVideos};
use ucam_policy::{Action, PolicyBody, PolicyId, ResourceRef, Rule, RulePolicy, Subject};
use ucam_requester::{AccessOutcome, AccessSpec, RequesterClient};
use ucam_webenv::identity::IdentityProvider;
use ucam_webenv::{Browser, Method, Request, Response, SimNet, Transport, Url};

/// The AM's authority in the standard world.
pub const AM: &str = "am.example";
/// The identity provider's authority.
pub const IDP: &str = "idp.example";
/// The three primary scenario hosts used by the experiments.
pub const HOSTS: [&str; 3] = ["webpics.example", "webstorage.example", "webdocs.example"];
/// The Sec. II scenario's video service (the fourth registered host).
pub const VIDEO_HOST: &str = "webvideos.example";

/// The assembled scenario world.
pub struct World {
    /// The message transport (owns clock, trace, counters). `SimNet` by
    /// default; [`World::bootstrap_on`] accepts any [`Transport`] backend,
    /// so the same scenario runs over loopback HTTP unchanged.
    pub net: Arc<dyn Transport>,
    /// Bob's chosen Authorization Manager.
    pub am: Arc<AuthorizationManager>,
    /// The identity provider everyone authenticates against.
    pub idp: Arc<IdentityProvider>,
    /// The photo gallery.
    pub pics: Arc<WebPics>,
    /// The online file system.
    pub storage: Arc<WebStorage>,
    /// The word processor.
    pub docs: Arc<WebDocs>,
    /// The online video service (Sec. II scenario).
    pub videos: Arc<WebVideos>,
    /// Cached identity assertions per user.
    assertions: HashMap<String, String>,
    /// Requester clients per friend.
    clients: HashMap<String, RequesterClient>,
    /// Browsers per user.
    browsers: HashMap<String, Browser>,
    /// Uploaded resource ids per host authority.
    uploaded: HashMap<String, Vec<String>>,
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("hosts", &HOSTS)
            .field("users", &self.assertions.keys().collect::<Vec<_>>())
            .finish_non_exhaustive()
    }
}

impl World {
    /// Builds the standard world: one AM, one IdP, three hosts, and the
    /// users bob, alice and chris.
    #[must_use]
    pub fn bootstrap() -> Self {
        Self::bootstrap_on(Arc::new(SimNet::new()))
    }

    /// Builds the standard world on an explicit transport backend — the
    /// transport-conformance suite runs the same scenario over `SimNet`
    /// and `HttpTransport` through this.
    #[must_use]
    pub fn bootstrap_on(net: Arc<dyn Transport>) -> Self {
        let clock = net.clock().clone();

        let idp = Arc::new(IdentityProvider::new(IDP, clock.clone()));
        let am = Arc::new(AuthorizationManager::new(AM, clock.clone()));
        let pics = WebPics::new(HOSTS[0], clock.clone());
        let storage = WebStorage::new(HOSTS[1], clock.clone());
        let docs = WebDocs::new(HOSTS[2], clock.clone());
        let videos = WebVideos::new(VIDEO_HOST, clock);

        for user in ["bob", "alice", "chris"] {
            idp.register_user(user, &format!("pw-{user}"));
            am.register_user(user);
        }
        am.set_identity_verifier(idp.verifier());
        pics.shell().set_identity_verifier(idp.verifier());
        storage.shell().set_identity_verifier(idp.verifier());
        docs.shell().set_identity_verifier(idp.verifier());
        videos.shell().set_identity_verifier(idp.verifier());

        net.register(idp.clone());
        net.register(am.clone());
        net.register(pics.clone());
        net.register(storage.clone());
        net.register(docs.clone());
        net.register(videos.clone());

        World {
            net,
            am,
            idp,
            pics,
            storage,
            docs,
            videos,
            assertions: HashMap::new(),
            clients: HashMap::new(),
            browsers: HashMap::new(),
            uploaded: HashMap::new(),
        }
    }

    /// Returns the deterministic `SimNet` backend, for harnesses that
    /// inject simulated faults (partitions, message loss). Fault
    /// injection is backend-specific, so this panics when the world runs
    /// on a different transport.
    ///
    /// # Panics
    ///
    /// Panics if the world was bootstrapped on a non-`SimNet` backend.
    #[must_use]
    pub fn simnet(&self) -> &SimNet {
        self.net
            .as_any()
            .downcast_ref::<SimNet>()
            .expect("this world does not run on SimNet")
    }

    /// Logs `user` in at the IdP (cached) and returns their assertion.
    ///
    /// # Panics
    ///
    /// Panics for users that were not registered at bootstrap.
    pub fn assertion(&mut self, user: &str) -> String {
        if let Some(token) = self.assertions.get(user) {
            return token.clone();
        }
        let assertion = self
            .idp
            .login(user, &format!("pw-{user}"))
            .expect("bootstrap users can always log in");
        self.assertions
            .insert(user.to_owned(), assertion.token.clone());
        assertion.token
    }

    /// Returns the browser of `user` (created on first use).
    pub fn browser(&mut self, user: &str) -> &mut Browser {
        self.browsers
            .entry(user.to_owned())
            .or_insert_with(|| Browser::new(&format!("browser:{user}")))
    }

    /// Returns the requester client acting for `friend`.
    pub fn client(&mut self, friend: &str) -> &mut RequesterClient {
        if !self.clients.contains_key(friend) {
            let assertion = self.assertion(friend);
            let mut client = RequesterClient::new(&format!("requester:{friend}-agent"));
            client.set_subject_token(Some(assertion));
            self.clients.insert(friend.to_owned(), client);
        }
        self.clients.get_mut(friend).expect("just inserted")
    }

    /// Uploads the §II content: `k` photos in album `rome` at WebPics, `k`
    /// files under `trips/` at WebStorage, `k` trip reports at WebDocs.
    pub fn upload_content(&mut self, k: usize) {
        let token = self.assertion("bob");
        // Album / dir / folder containers first.
        self.net.dispatch(
            "browser:bob",
            Request::new(Method::Post, "https://webpics.example/albums")
                .with_param("name", "rome")
                .with_param("subject_token", &token),
        );
        self.net.dispatch(
            "browser:bob",
            Request::new(Method::Post, "https://webstorage.example/mkdir")
                .with_param("path", "trips")
                .with_param("subject_token", &token),
        );
        self.net.dispatch(
            "browser:bob",
            Request::new(Method::Post, "https://webdocs.example/folders")
                .with_param("name", "trips")
                .with_param("subject_token", &token),
        );
        self.net.dispatch(
            "browser:bob",
            Request::new(Method::Post, "https://webvideos.example/collections")
                .with_param("name", "trips")
                .with_param("subject_token", &token),
        );
        self.note_upload(HOSTS[0], "album-meta/rome");
        self.note_upload(HOSTS[1], "dirs/trips");
        self.note_upload(HOSTS[2], "folder-meta/trips");
        self.note_upload(VIDEO_HOST, "collection-meta/trips");

        for i in 0..k {
            let image = ucam_host::Image::gradient(8, 8);
            let body = ucam_crypto::base64url_encode(&image.to_bytes());
            self.net.dispatch(
                "browser:bob",
                Request::new(Method::Post, "https://webpics.example/photos")
                    .with_param("album", "rome")
                    .with_param("id", &format!("photo-{i}"))
                    .with_param("subject_token", &token)
                    .with_body(body),
            );
            self.note_upload(HOSTS[0], &format!("albums/rome/photo-{i}"));

            self.net.dispatch(
                "browser:bob",
                Request::new(Method::Post, "https://webstorage.example/files")
                    .with_param("path", &format!("trips/file-{i}.txt"))
                    .with_param("subject_token", &token)
                    .with_body(format!("trip file {i}")),
            );
            self.note_upload(HOSTS[1], &format!("files/trips/file-{i}.txt"));

            self.net.dispatch(
                "browser:bob",
                Request::new(Method::Post, "https://webdocs.example/docs")
                    .with_param("folder", "trips")
                    .with_param("id", &format!("report-{i}"))
                    .with_param("subject_token", &token)
                    .with_body(format!("Trip report {i}.")),
            );
            self.note_upload(HOSTS[2], &format!("docs/trips/report-{i}"));

            let video = Video::test_pattern(4, 4, 3);
            self.net.dispatch(
                "browser:bob",
                Request::new(Method::Post, "https://webvideos.example/videos")
                    .with_param("collection", "trips")
                    .with_param("id", &format!("clip-{i}"))
                    .with_param("subject_token", &token)
                    .with_body(ucam_crypto::base64url_encode(&video.to_bytes())),
            );
            self.note_upload(VIDEO_HOST, &format!("collections/trips/clip-{i}"));
        }
    }

    /// The default three-resource-per-host §II content.
    pub fn upload_scenario_content(&mut self) {
        self.upload_content(3);
    }

    fn note_upload(&mut self, host: &str, id: &str) {
        self.uploaded
            .entry(host.to_owned())
            .or_default()
            .push(id.to_owned());
    }

    /// Resource ids `owner` uploaded at `host` (in upload order).
    #[must_use]
    pub fn uploaded_at(&self, host: &str) -> &[String] {
        self.uploaded.get(host).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Runs the Fig. 3 delegation flow for `user` against every host
    /// (including the video service), driven through the browser exactly
    /// as the protocol specifies.
    pub fn delegate_all_hosts(&mut self, user: &str) {
        for host in HOSTS {
            self.delegate_host(user, host);
        }
        self.delegate_host(user, VIDEO_HOST);
    }

    /// Logs `user`'s browser in at an AM: stores their identity assertion
    /// as the `ident` session cookie for that authority.
    pub fn login_browser_at(&mut self, user: &str, am_authority: &str) {
        let assertion = self.assertion(user);
        self.browser(user)
            .set_cookie(am_authority, "ident", &assertion);
    }

    /// Runs the Fig. 3 delegation flow for one host.
    pub fn delegate_host(&mut self, user: &str, host: &str) {
        self.login_browser_at(user, AM);
        let url = format!("https://{host}/delegate/setup?user={user}&am={AM}");
        let resp = self.with_browser(user, |net, browser| browser.get(net, &url));
        assert!(
            resp.status.is_success(),
            "delegation for {user} at {host} failed: {} {}",
            resp.status,
            resp.body
        );
    }

    /// Runs `f` with the user's browser and the network — the browser is
    /// temporarily taken out of the map so both can be borrowed at once.
    fn with_browser<R>(
        &mut self,
        user: &str,
        f: impl FnOnce(&dyn Transport, &mut Browser) -> R,
    ) -> R {
        let mut browser = self
            .browsers
            .remove(user)
            .unwrap_or_else(|| Browser::new(&format!("browser:{user}")));
        let result = f(self.net.as_ref(), &mut browser);
        self.browsers.insert(user.to_owned(), browser);
        result
    }

    /// Runs `f` with the friend's requester client and the network.
    fn with_client<R>(
        &mut self,
        friend: &str,
        f: impl FnOnce(&dyn Transport, &mut RequesterClient) -> R,
    ) -> R {
        // Ensure the client exists (needs &mut self for the assertion).
        self.client(friend);
        let mut client = self.clients.remove(friend).expect("just ensured");
        let result = f(self.net.as_ref(), &mut client);
        self.clients.insert(friend.to_owned(), client);
        result
    }

    /// Centrally shares everything Bob uploaded with `friends` (R1–R3):
    /// one group, one policy, one realm per host — composed **once** at
    /// the AM.
    pub fn share_with_friends(&mut self, owner: &str, friends: &[&str]) {
        let uploaded = self.uploaded.clone();
        self.am
            .pap(owner, |account| {
                for friend in friends {
                    account.add_group_member("friends", friend);
                }
                let policy = account.create_policy(
                    "friends-read",
                    PolicyBody::Rules(
                        RulePolicy::new().with_rule(
                            Rule::permit()
                                .for_subject(Subject::Group("friends".into()))
                                .for_action(Action::Read)
                                .for_action(Action::List),
                        ),
                    ),
                );
                for (host, ids) in &uploaded {
                    let realm = format!("shared@{host}");
                    for id in ids {
                        account.assign_realm(ResourceRef::new(host, id), &realm);
                    }
                    account
                        .link_general(&realm, &policy)
                        .expect("policy was just created");
                }
            })
            .expect("owner account exists");
    }

    /// Links one more policy to one resource through the browser redirect
    /// flow of Fig. 4 (`/share` at the host → `/compose` at the AM).
    pub fn compose_via_redirect(
        &mut self,
        owner: &str,
        host: &str,
        resource: &str,
        policy: &PolicyId,
    ) -> Response {
        self.login_browser_at(owner, AM);
        let url = format!(
            "https://{host}/share?resource={resource}&policy={}",
            policy.as_str()
        );
        self.with_browser(owner, |net, browser| browser.get(net, &url))
    }

    /// A friend reads a resource through the full Requester flow
    /// (Figs. 5–6). `path` is the host route, e.g. `/photos/rome/photo-0`.
    pub fn friend_reads(&mut self, friend: &str, host: &str, path: &str) -> AccessOutcome {
        let spec = AccessSpec::read(Url::new(host, path));
        self.with_client(friend, |net, client| client.access(net, &spec))
    }

    /// Like [`World::friend_reads`] but using requester-orchestrated
    /// XRD discovery (§VII) instead of the host redirect of Fig. 5.
    /// `resource_id` is the host-local id (e.g. `albums/rome/photo-0`).
    pub fn friend_reads_via_discovery(
        &mut self,
        friend: &str,
        host: &str,
        path: &str,
        resource_id: &str,
    ) -> AccessOutcome {
        let spec = AccessSpec::read(Url::new(host, path));
        let resource_id = resource_id.to_owned();
        self.with_client(friend, |net, client| {
            client.access_via_discovery(net, &spec, &resource_id)
        })
    }

    /// A friend's agent polls a pending consent request at `am`.
    pub fn friend_polls_consent(
        &mut self,
        friend: &str,
        am: &str,
        consent_id: &str,
    ) -> Option<bool> {
        let am = am.to_owned();
        let consent_id = consent_id.to_owned();
        self.with_client(friend, |net, client| {
            client.poll_consent(net, &am, &consent_id)
        })
    }

    /// Flushes every cache in the system (requester tokens + host decision
    /// caches) — the E7 ablation lever.
    pub fn flush_all_caches(&mut self) {
        for client in self.clients.values_mut() {
            client.clear_tokens();
        }
        self.pics.shell().core.flush_decision_cache();
        self.storage.shell().core.flush_decision_cache();
        self.docs.shell().core.flush_decision_cache();
        self.videos.shell().core.flush_decision_cache();
    }

    /// Enables/disables host decision caches on all hosts.
    pub fn set_decision_caches(&self, enabled: bool) {
        self.pics.shell().core.set_cache_enabled(enabled);
        self.storage.shell().core.set_cache_enabled(enabled);
        self.docs.shell().core.set_cache_enabled(enabled);
        self.videos.shell().core.set_cache_enabled(enabled);
    }

    /// Pushes every owner's current policy epoch from the AM to all
    /// hosts, so cached decisions made under older policy state are
    /// dropped — the targeted, protocol-faithful alternative to
    /// [`World::flush_all_caches`].
    pub fn sync_policy_epochs(&self) {
        for (owner, epoch) in self.am.policy_epochs() {
            self.pics.shell().core.note_policy_epoch(&owner, epoch);
            self.storage.shell().core.note_policy_epoch(&owner, epoch);
            self.docs.shell().core.note_policy_epoch(&owner, epoch);
            self.videos.shell().core.note_policy_epoch(&owner, epoch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_registers_everything() {
        let mut world = World::bootstrap();
        // All five apps answer.
        for authority in [IDP, AM, HOSTS[0], HOSTS[1], HOSTS[2]] {
            let resp = world.net.dispatch(
                "probe",
                Request::new(Method::Get, &format!("https://{authority}/__nope__")),
            );
            assert_ne!(resp.status.code(), 503, "{authority} must be reachable");
        }
        // Users can log in.
        assert!(!world.assertion("bob").is_empty());
        assert!(!world.assertion("alice").is_empty());
    }

    #[test]
    fn upload_populates_all_hosts() {
        let mut world = World::bootstrap();
        world.upload_scenario_content();
        assert_eq!(world.uploaded_at(HOSTS[0]).len(), 4); // album + 3 photos
        assert_eq!(world.uploaded_at(HOSTS[1]).len(), 4);
        assert_eq!(world.uploaded_at(HOSTS[2]).len(), 4);
        assert!(world
            .pics
            .shell()
            .core
            .resource("albums/rome/photo-0")
            .is_some());
        assert!(world
            .storage
            .shell()
            .core
            .resource("files/trips/file-1.txt")
            .is_some());
        assert!(world
            .docs
            .shell()
            .core
            .resource("docs/trips/report-2")
            .is_some());
    }

    #[test]
    fn delegation_flow_works_for_all_hosts() {
        let mut world = World::bootstrap();
        world.delegate_all_hosts("bob");
        for host in HOSTS {
            let config = match host {
                "webpics.example" => world.pics.shell().core.delegation_for("x", "bob"),
                "webstorage.example" => world.storage.shell().core.delegation_for("x", "bob"),
                _ => world.docs.shell().core.delegation_for("x", "bob"),
            };
            let config = config.expect("delegation stored");
            assert_eq!(config.am, AM);
            assert!(world.am.check_host_token(&config.host_token).is_ok());
        }
    }

    #[test]
    fn end_to_end_friend_access() {
        let mut world = World::bootstrap();
        world.upload_scenario_content();
        world.delegate_all_hosts("bob");
        world.share_with_friends("bob", &["alice", "chris"]);

        // Alice reads from all three hosts through the full protocol.
        for (host, path) in [
            (HOSTS[0], "/photos/rome/photo-0"),
            (HOSTS[1], "/files/trips/file-0.txt"),
            (HOSTS[2], "/docs/trips/report-0"),
        ] {
            let outcome = world.friend_reads("alice", host, path);
            assert!(outcome.is_granted(), "{host}{path}: {outcome:?}");
        }

        // The video service is covered by the same single policy (R2).
        let outcome = world.friend_reads("alice", VIDEO_HOST, "/videos/trips/clip-0");
        assert!(outcome.is_granted(), "video: {outcome:?}");

        let outcome = world.friend_reads("chris", HOSTS[0], "/photos/rome/photo-0");
        assert!(outcome.is_granted());
    }

    #[test]
    fn video_content_uploaded_and_protected() {
        let mut world = World::bootstrap();
        world.upload_scenario_content();
        assert_eq!(world.uploaded_at(VIDEO_HOST).len(), 4); // collection + 3 clips
        assert!(world
            .videos
            .shell()
            .core
            .resource("collections/trips/clip-1")
            .is_some());
        // Undelegated + unshared: strangers are blocked by legacy deny.
        let outcome = world.friend_reads("alice", VIDEO_HOST, "/videos/trips/clip-0");
        assert!(!outcome.is_granted());
    }

    #[test]
    fn stranger_denied_via_protocol() {
        let mut world = World::bootstrap();
        world.upload_scenario_content();
        world.delegate_all_hosts("bob");
        world.share_with_friends("bob", &["alice"]); // chris NOT included
        let outcome = world.friend_reads("chris", HOSTS[0], "/photos/rome/photo-0");
        assert!(
            matches!(outcome, AccessOutcome::Denied(_)),
            "chris must be denied: {outcome:?}"
        );
    }

    #[test]
    fn compose_via_redirect_links_policy() {
        let mut world = World::bootstrap();
        world.upload_scenario_content();
        world.delegate_all_hosts("bob");
        let policy = world
            .am
            .pap("bob", |account| {
                account.create_policy(
                    "public-read",
                    PolicyBody::Rules(
                        RulePolicy::new().with_rule(
                            Rule::permit()
                                .for_subject(Subject::Public)
                                .for_action(Action::Read),
                        ),
                    ),
                )
            })
            .unwrap();
        let resp = world.compose_via_redirect("bob", HOSTS[0], "albums/rome/photo-0", &policy);
        assert!(resp.status.is_success(), "{}", resp.body);
        world
            .am
            .pap_ref("bob", |account| {
                let r = ResourceRef::new(HOSTS[0], "albums/rome/photo-0");
                assert_eq!(account.policies().specific_binding(&r), Some(&policy));
            })
            .unwrap();
    }
}
