//! Chaos soak: randomized fault injection over the full protocol stack.
//!
//! The churn soak ([`crate::churn`]) stresses *policy* dynamics on a
//! healthy network; this module stresses the *fabric*. A seeded fault
//! schedule — partitions, flap cycles, windowed burst loss, latency
//! spikes — plays out against the six-phase flow while the resilience
//! machinery is armed end to end: requester retry + multi-AM failover,
//! Host→AM retry, circuit breaker, fallback AM, and the stale-grace
//! degraded mode.
//!
//! Policy-epoch propagation is **asynchronous**: each AM delivers epoch
//! advances to the Host over the simulated network through its push
//! channel (`ucam_am::push`), with deterministic retry/backoff when the
//! fabric drops the message. The soak therefore keeps **two** ground
//! truth tables: `truth_now` (updated the instant a mutation lands at
//! the AMs) and `truth_visible` (updated once the corresponding epoch
//! push has been delivered to the Host). The gap between them is the
//! **revocation-visibility window**, which the soak measures instead of
//! assuming it is zero.
//!
//! Two invariants are checked and must hold on **every** access:
//!
//! 1. **Soundness** — a granted access implies the requester is entitled
//!    under `truth_now` *or* under `truth_visible` (an undelivered
//!    revocation may legitimately leave a cached permit alive until the
//!    push lands or the TTL expires). Faults may cause spurious
//!    *denials* (fail-closed is always acceptable) but never grants that
//!    both tables deny. `lookup_stale` refuses epoch-stale entries
//!    outright, so a *delivered* revocation kills the grace window too.
//! 2. **Bounded staleness** — the Host's high-water staleness gauge
//!    never exceeds the configured grace window: no permit is ever
//!    served beyond `expires_at + stale_grace_ms`. End to end, a
//!    revocation is enforced within `cache_ttl + stale_grace +
//!    revocation_visibility` milliseconds, with the last term measured
//!    by the push channel's delivery-lag gauge (DESIGN.md §10).
//!
//! After the scripted steps, every fault is healed, the push channels
//! drain to empty, the clock runs past every grace window, breaker
//! cooldown and flap period, and a full verification sweep asserts that
//! each (reader, resource) pair gets *exactly* the ground-truth outcome:
//! every outage ends recovered or fail-closed, never wedged.

use std::collections::HashSet;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ucam_am::AuthorizationManager;
use ucam_host::{BreakerConfig, DelegationConfig, ResilienceConfig, WebStorage};
use ucam_policy::{Action, PolicyBody, ResourceRef, Rule, RulePolicy, Subject};
use ucam_requester::{AccessOutcome, AccessSpec, RequesterClient};
use ucam_webenv::identity::IdentityProvider;
use ucam_webenv::{FlapSchedule, LatencyModel, Method, Request, RetryPolicy, SimNet, Url};

/// Authority of the primary Authorization Manager.
const AM_A: &str = "am-a.example";
/// Authority of the mirrored fallback Authorization Manager.
const AM_B: &str = "am-b.example";
/// Authority of the Host under test.
const HOST: &str = "storage.example";
/// The single resource owner (the paper's Bob).
const OWNER: &str = "bob";

/// Configuration of a chaos run.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Number of potential readers.
    pub readers: usize,
    /// Resources owned by the single owner.
    pub resources: usize,
    /// Randomized steps to execute (roughly half are accesses).
    pub steps: usize,
    /// RNG seed (runs are deterministic per seed).
    pub seed: u64,
    /// Decision-cache TTL installed at both AMs (kept short so cached
    /// permits actually expire into the grace window during the run).
    pub cache_ttl_ms: u64,
    /// Degraded-mode grace window on the Host's decision cache.
    pub stale_grace_ms: u64,
    /// Enables the AMs' capability-sieve push (DESIGN.md §12): epoch
    /// pushes carry a signed tier-1 sieve, and the Host serves matching
    /// accesses lock-free. The soak's invariants are unchanged — the
    /// sieve must be semantically invisible.
    pub sieve: bool,
    /// Enables decision-level invalidation push (protocol v2, DESIGN.md
    /// §16): epoch pushes carry the exact fingerprints that died, and
    /// the Host evicts those instead of purging owner-wide. The soak's
    /// invariants are unchanged — surgical invalidation must be
    /// semantically invisible too.
    pub invalidation: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            readers: 4,
            resources: 4,
            steps: 2_400,
            seed: 42,
            cache_ttl_ms: 400,
            stale_grace_ms: 15_000,
            sieve: false,
            invalidation: false,
        }
    }
}

/// The outcome of a chaos run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosReport {
    /// Accesses attempted during the fault phase.
    pub accesses: u64,
    /// Accesses granted during the fault phase.
    pub granted: u64,
    /// Accesses denied or failed during the fault phase.
    pub denied: u64,
    /// Denials of a ground-truth-entitled reader (fail-closed under
    /// faults; acceptable during the fault phase, forbidden after heal).
    pub fail_closed: u64,
    /// Invariant violations (MUST be zero): spurious grants during the
    /// fault phase, any mismatch during the final healed sweep, or a
    /// staleness-gauge reading beyond the grace window.
    pub violations: u64,
    /// Reader grant events (mirrored to both AMs).
    pub grants: u64,
    /// Reader revocation events (mirrored to both AMs).
    pub revocations: u64,
    /// Partition events injected (single- or dual-AM).
    pub partitions: u64,
    /// Flap schedules installed.
    pub flaps: u64,
    /// Burst-loss reconfigurations.
    pub bursts: u64,
    /// Heal-everything events.
    pub heals: u64,
    /// Expired permits served inside the grace window (Host gauge).
    pub stale_served: u64,
    /// Decision queries answered by the fallback AM.
    pub fallback_queries: u64,
    /// Decision queries fast-failed by an open circuit.
    pub breaker_fast_fails: u64,
    /// Host-side retry attempts beyond the first.
    pub host_retries: u64,
    /// Requester-side retry attempts beyond the first.
    pub requester_retries: u64,
    /// Requester authorize calls failed over to the secondary AM.
    pub requester_failovers: u64,
    /// High-water staleness served, in ms past TTL (≤ grace window).
    pub max_served_staleness_ms: u64,
    /// Epoch pushes delivered to the Host across both AMs.
    pub pushes_delivered: u64,
    /// Push delivery attempts lost to the fabric and retried.
    pub push_retries: u64,
    /// Measured revocation-visibility window: the worst
    /// schedule-to-delivery lag of any epoch push, in ms.
    pub revocation_visibility_ms: u64,
    /// Accesses in the final healed verification sweep (all must match
    /// ground truth exactly).
    pub verified_accesses: u64,
    /// Accesses granted by the Host's tier-1 capability sieve (zero when
    /// [`ChaosConfig::sieve`] is off).
    pub sieve_hits: u64,
    /// Sieve bodies the Host verified and installed.
    pub sieve_installs: u64,
    /// Sieve bodies the Host rejected fail-closed. With the mirror AM
    /// signing under its *own* delegation secret, every one of its
    /// bodies lands here — forged-signer coverage for free.
    pub sieve_rejects: u64,
    /// Delivered epoch pushes that carried a sieve body (both AMs).
    pub sieves_pushed: u64,
    /// Delivered epoch pushes that carried a decision-invalidation body
    /// (both AMs; zero when [`ChaosConfig::invalidation`] is off).
    pub invalidations_pushed: u64,
    /// Invalidation bodies the Host verified and applied surgically. As
    /// with sieves, AM-B signs under its own delegation secret, so its
    /// bodies all fail verification and fall back to the plain (always
    /// safe) owner-wide epoch note.
    pub invalidations_applied: u64,
    /// Cached permits evicted by exact fingerprint through applied
    /// invalidations.
    pub invalidated_evictions: u64,
}

/// Everything the soak needs to drive and judge one run.
struct Rig {
    net: SimNet,
    host: Arc<WebStorage>,
    am_a: Arc<AuthorizationManager>,
    am_b: Arc<AuthorizationManager>,
    clients: Vec<RequesterClient>,
    readers: Vec<String>,
    resources: Vec<String>,
}

/// Applies one PAP mutation identically to both AMs (they are mirrors;
/// applying in lockstep also keeps their policy epochs aligned).
fn pap_both<F>(rig: &Rig, f: F)
where
    F: Fn(&mut ucam_am::Account),
{
    rig.am_a.pap(OWNER, &f).expect("owner registered at AM-A");
    rig.am_b.pap(OWNER, &f).expect("owner registered at AM-B");
}

/// Gives both AMs' push channels one delivery round over the (possibly
/// faulty) fabric; returns the number of pushes that landed.
fn pump_pushes(rig: &Rig) -> u64 {
    (rig.am_a.pump_epoch_pushes(&rig.net) + rig.am_b.pump_epoch_pushes(&rig.net)) as u64
}

/// Whether every scheduled epoch push from *either* AM has been
/// delivered. The AMs mutate in lockstep, so their epochs are aligned
/// and one fully-drained channel means the Host holds the newest epoch.
fn pushes_visible(rig: &Rig) -> bool {
    rig.am_a.pending_epoch_pushes() == 0 || rig.am_b.pending_epoch_pushes() == 0
}

/// Drains both push channels to empty on a healthy fabric, advancing the
/// clock through retry backoff as needed; returns deliveries made.
fn drain_pushes(rig: &Rig) -> u64 {
    let mut delivered = 0;
    for _ in 0..10_000 {
        delivered += pump_pushes(rig);
        if rig.am_a.pending_epoch_pushes() == 0 && rig.am_b.pending_epoch_pushes() == 0 {
            return delivered;
        }
        rig.net.clock().advance_ms(50);
    }
    panic!("push channels failed to drain on a healed fabric");
}

fn build_rig(config: &ChaosConfig) -> Rig {
    let net = SimNet::new();
    net.trace().set_enabled(false);
    let clock = net.clock().clone();

    let idp = Arc::new(IdentityProvider::new("idp.example", clock.clone()));
    let am_a = Arc::new(AuthorizationManager::new(AM_A, clock.clone()));
    let am_b = Arc::new(AuthorizationManager::new(AM_B, clock.clone()));
    am_a.set_identity_verifier(idp.verifier());
    am_b.set_identity_verifier(idp.verifier());
    // Epoch propagation is a real network message from here on: every
    // policy change schedules a push to the Host, delivered (and retried)
    // by `pump_pushes` as the run advances.
    am_a.set_epoch_push_target(HOST);
    am_b.set_epoch_push_target(HOST);
    if config.sieve {
        // Both AMs compile sieves, but the Host's delegation for the
        // owner names AM-A's secret: AM-B's bodies must all be rejected
        // at the door while its plain epoch params still apply.
        am_a.set_sieve_push(true);
        am_b.set_sieve_push(true);
    }
    if config.invalidation {
        // Same forged-signer coverage as the sieve: AM-B's invalidation
        // bodies are all rejected fail-closed at the Host, which then
        // falls through to the plain owner-wide epoch purge.
        am_a.set_invalidation_push(true);
        am_b.set_invalidation_push(true);
    }
    let host = WebStorage::new(HOST, clock);
    host.shell().set_identity_verifier(idp.verifier());
    net.register(idp.clone());
    net.register(am_a.clone());
    net.register(am_b.clone());
    net.register(host.clone());

    // A small baseline latency plus a periodic spike on the decision
    // edge: every 7th Host→AM-A message stalls. Latency only charges the
    // shared clock, so this shakes TTL/flap alignment without touching
    // delivery.
    net.set_latency(LatencyModel::constant(2).with_spike(HOST, AM_A, 7, 40));

    idp.register_user(OWNER, "pw");
    am_a.register_user(OWNER);
    am_b.register_user(OWNER);
    let assertion = idp.login(OWNER, "pw").unwrap().token;

    // Primary delegation at AM-A; mirrored delegation at AM-B wired in as
    // the Host's fallback for AM-A outages.
    let (delegation_a, token_a) = am_a.establish_delegation(HOST, OWNER).unwrap();
    host.shell().core.set_user_delegation(
        OWNER,
        DelegationConfig {
            am: AM_A.into(),
            host_token: token_a,
            delegation_id: delegation_a.id,
        },
    );
    let (delegation_b, token_b) = am_b.establish_delegation(HOST, OWNER).unwrap();

    // Arm the Host's resilience machinery in one atomic application.
    host.shell().core.set_resilience(
        ResilienceConfig::new()
            .with_fallback_am(
                AM_A,
                DelegationConfig {
                    am: AM_B.into(),
                    host_token: token_b,
                    delegation_id: delegation_b.id,
                },
            )
            .with_breaker(BreakerConfig::default())
            .with_am_retry(RetryPolicy {
                max_attempts: 3,
                base_backoff_ms: 10,
                max_backoff_ms: 80,
                jitter_ms: 5,
                seed: config.seed ^ 0x9e37,
                budget_ms: 1_000,
                attempt_timeout_ms: 50,
            })
            .with_stale_grace_ms(config.stale_grace_ms),
    );

    let resources: Vec<String> = (0..config.resources)
        .map(|r| format!("files/{OWNER}/res-{r}.txt"))
        .collect();
    for r in 0..config.resources {
        let path = format!("{OWNER}/res-{r}.txt");
        let resp = net.dispatch(
            &format!("browser:{OWNER}"),
            Request::new(Method::Post, &format!("https://{HOST}/files"))
                .with_param("path", &path)
                .with_param("subject_token", &assertion)
                .with_body(format!("content of {path}")),
        );
        assert!(resp.status.is_success(), "{}", resp.body);
    }

    let rig = Rig {
        net,
        host,
        am_a,
        am_b,
        clients: Vec::new(),
        readers: (0..config.readers).map(|i| format!("reader-{i}")).collect(),
        resources,
    };

    // One group-based read policy, mirrored at both AMs.
    let ttl = config.cache_ttl_ms;
    let n_resources = config.resources;
    pap_both(&rig, |account| {
        account.set_cache_ttl_ms(ttl);
        let id = account.create_policy(
            "readers",
            PolicyBody::Rules(
                RulePolicy::new().with_rule(
                    Rule::permit()
                        .for_subject(Subject::Group("readers".into()))
                        .for_action(Action::Read),
                ),
            ),
        );
        let realm = "everything";
        for r in 0..n_resources {
            account.assign_realm(
                ResourceRef::new(HOST, &format!("files/{OWNER}/res-{r}.txt")),
                realm,
            );
        }
        account.link_general(realm, &id).unwrap();
    });
    // Deliver the setup-time epoch advances before the run starts.
    drain_pushes(&rig);

    let mut rig = rig;
    for (i, reader) in rig.readers.clone().iter().enumerate() {
        idp.register_user(reader, "pw");
        let assertion = idp.login(reader, "pw").unwrap().token;
        let mut client = RequesterClient::new(&format!("requester:{reader}"));
        client.set_subject_token(Some(assertion));
        client.set_resilience(
            ucam_requester::ResilienceConfig::new()
                .with_retry(RetryPolicy {
                    max_attempts: 3,
                    base_backoff_ms: 10,
                    max_backoff_ms: 80,
                    jitter_ms: 5,
                    seed: config.seed ^ (i as u64).wrapping_mul(0x85eb_ca6b),
                    budget_ms: 1_000,
                    attempt_timeout_ms: 50,
                })
                .with_fallback_am(AM_A, AM_B),
        );
        rig.clients.push(client);
    }
    rig
}

/// Clears every injected fault: partitions, flap schedules, burst loss.
fn heal_all(rig: &Rig) {
    rig.net.set_offline(AM_A, false);
    rig.net.set_offline(AM_B, false);
    rig.net.set_flap(AM_A, None);
    rig.net.set_burst_loss(0, 0, 0);
}

/// One reader access judged against ground truth. Returns `true` when
/// the outcome violates soundness (a grant that both `truth_now` and
/// `truth_visible` deny, or — when `exact` — any deviation at all,
/// including fail-closed denials).
#[allow(clippy::too_many_arguments)]
fn judge_access(
    rig: &mut Rig,
    truth_now: &HashSet<String>,
    truth_visible: &HashSet<String>,
    reader_idx: usize,
    resource_idx: usize,
    exact: bool,
    report: &mut ChaosReport,
) -> bool {
    let reader = rig.readers[reader_idx].clone();
    let resource = rig.resources[resource_idx].clone();
    let expected = truth_now.contains(&reader);
    let spec = AccessSpec::read(Url::new(HOST, &format!("/{resource}")));
    let outcome = rig.clients[reader_idx].access(&rig.net, &spec);
    let granted = outcome.is_granted();
    if granted {
        report.granted += 1;
    } else {
        report.denied += 1;
        if expected {
            report.fail_closed += 1;
        }
    }
    if granted && !expected && !truth_visible.contains(&reader) {
        // A grant both tables deny: even an undelivered epoch push cannot
        // excuse it. Unconditional soundness violation.
        return true;
    }
    if exact && granted != expected {
        return true; // Healed network must reproduce ground truth exactly.
    }
    // On a healed network, non-grants must be clean policy denials.
    if exact && !granted && !matches!(outcome, AccessOutcome::Denied(_)) {
        return true;
    }
    false
}

/// Runs the chaos soak. See the [module docs](self).
///
/// # Panics
///
/// Panics when the rig cannot be constructed (zero readers/resources).
#[must_use]
pub fn run(config: &ChaosConfig) -> ChaosReport {
    assert!(config.readers > 0 && config.resources > 0, "need actors");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut rig = build_rig(config);
    let mut truth_now: HashSet<String> = HashSet::new();
    let mut truth_visible: HashSet<String> = HashSet::new();
    let mut report = ChaosReport::default();

    for step in 0..config.steps {
        // Time always moves: flap phases rotate, cached permits age
        // toward (and through) their TTL into the grace window.
        rig.net.clock().advance_ms(rng.gen_range(20..=80));
        // Give the push channels their delivery round *before* the step's
        // event: epoch advances travel the same faulty fabric as
        // everything else, and their delivery lag IS the
        // revocation-visibility window.
        report.pushes_delivered += pump_pushes(&rig);
        if pushes_visible(&rig) {
            truth_visible.clone_from(&truth_now);
        }
        match rng.gen_range(0..20u32) {
            // Policy churn: grant a reader at both AMs. Churn is kept
            // rare relative to the cache TTL: every delivered epoch push
            // kills the owner's cached permits, and permits that never
            // age past their TTL can never exercise the grace window.
            0 => {
                let reader = rig.readers[rng.gen_range(0..rig.readers.len())].clone();
                pap_both(&rig, |account| {
                    account.add_group_member("readers", &reader);
                });
                truth_now.insert(reader);
                report.grants += 1;
            }
            // Policy churn: revoke a reader at both AMs. Until the epoch
            // push lands at the Host, a cached permit may legitimately
            // keep serving — that gap is measured, not assumed away.
            1 => {
                let reader = rig.readers[rng.gen_range(0..rig.readers.len())].clone();
                pap_both(&rig, |account| {
                    account.remove_group_member("readers", &reader);
                });
                truth_now.remove(&reader);
                report.revocations += 1;
            }
            // Partition the primary AM (fallback AM keeps answering).
            2 => {
                rig.net.set_offline(AM_A, true);
                report.partitions += 1;
            }
            // Full outage: both AMs dark. Only fresh cache hits and the
            // stale-grace degraded mode can still grant.
            3 => {
                rig.net.set_offline(AM_A, true);
                rig.net.set_offline(AM_B, true);
                report.partitions += 1;
            }
            // Flap cycle on the primary: down for the first 120 ms of
            // every 300 ms period, phase drawn per event.
            4 => {
                rig.net.set_flap(
                    AM_A,
                    Some(FlapSchedule {
                        period_ms: 300,
                        down_ms: 120,
                        phase_ms: rng.gen_range(0..300),
                    }),
                );
                report.flaps += 1;
            }
            // Windowed burst loss across the whole fabric.
            5 => {
                rig.net.set_burst_loss(8, 20, config.seed ^ step as u64);
                report.bursts += 1;
            }
            // Heal everything.
            6..=7 => {
                heal_all(&rig);
                report.heals += 1;
            }
            // Access: a random reader reads a random resource.
            _ => {
                let reader_idx = rng.gen_range(0..rig.readers.len());
                let resource_idx = rng.gen_range(0..rig.resources.len());
                report.accesses += 1;
                if judge_access(
                    &mut rig,
                    &truth_now,
                    &truth_visible,
                    reader_idx,
                    resource_idx,
                    false,
                    &mut report,
                ) {
                    report.violations += 1;
                }
            }
        }
    }

    // Heal-and-verify sweep: with every fault cleared, the push channels
    // drained to empty (every revocation visible), and the clock run past
    // the grace window, breaker cooldown and flap period, every
    // (reader, resource) pair must land exactly on ground truth.
    heal_all(&rig);
    report.pushes_delivered += drain_pushes(&rig);
    truth_visible.clone_from(&truth_now);
    rig.net
        .clock()
        .advance_ms(config.stale_grace_ms + config.cache_ttl_ms + 10_000);
    for reader_idx in 0..rig.readers.len() {
        for resource_idx in 0..rig.resources.len() {
            report.verified_accesses += 1;
            if judge_access(
                &mut rig,
                &truth_now,
                &truth_visible,
                reader_idx,
                resource_idx,
                true,
                &mut report,
            ) {
                report.violations += 1;
            }
        }
    }

    // Bounded staleness: the Host's high-water gauge must stay inside
    // the configured grace window.
    report.max_served_staleness_ms = rig.host.shell().core.max_served_staleness_ms();
    if report.max_served_staleness_ms > config.stale_grace_ms {
        report.violations += 1;
    }

    let push_a = rig.am_a.epoch_push_stats();
    let push_b = rig.am_b.epoch_push_stats();
    report.push_retries = push_a.retries + push_b.retries;
    report.revocation_visibility_ms = push_a.max_lag_ms.max(push_b.max_lag_ms);

    report.sieves_pushed = push_a.sieved + push_b.sieved;
    report.invalidations_pushed = push_a.invalidations + push_b.invalidations;

    let pep = rig.host.shell().core.stats();
    report.sieve_hits = pep.sieve_hits;
    report.sieve_installs = pep.sieve_installs;
    report.sieve_rejects = pep.sieve_rejects;
    report.invalidations_applied = pep.invalidations_applied;
    report.invalidated_evictions = pep.invalidated_evictions;
    report.stale_served = pep.stale_served;
    report.fallback_queries = pep.fallback_queries;
    report.breaker_fast_fails = pep.breaker_fast_fails;
    report.host_retries = pep.am_retries;
    report.requester_retries = rig.clients.iter().map(|c| c.stats().retries).sum();
    report.requester_failovers = rig.clients.iter().map(|c| c.stats().failovers).sum();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_soak_holds_invariants() {
        let report = run(&ChaosConfig::default());
        assert_eq!(report.violations, 0, "{report:?}");
        assert!(report.accesses >= 1_000, "{report:?}");
        assert!(report.granted > 0, "{report:?}");
        assert!(report.denied > 0, "{report:?}");
        assert!(report.partitions > 0 && report.flaps > 0 && report.bursts > 0);
        // The resilience paths must actually carry load, not just exist.
        assert!(report.fallback_queries > 0, "{report:?}");
        assert!(report.requester_retries > 0, "{report:?}");
        assert!(report.host_retries > 0, "{report:?}");
        assert!(
            report.max_served_staleness_ms <= ChaosConfig::default().stale_grace_ms,
            "{report:?}"
        );
        // The epoch push channel carried real traffic over the faulty
        // fabric: every mutation was delivered, some deliveries needed
        // retries, and the visibility window was actually measured.
        assert!(report.pushes_delivered > 0, "{report:?}");
        assert!(report.revocation_visibility_ms > 0, "{report:?}");
        // A permit can outlive a revocation by at most TTL + grace +
        // the measured push lag; the gauge itself stays within grace.
        assert!(
            report.max_served_staleness_ms
                <= ChaosConfig::default().stale_grace_ms + report.revocation_visibility_ms,
            "{report:?}"
        );
    }

    #[test]
    fn chaos_soak_with_sieve_enabled_holds_the_same_invariants() {
        // The tentpole's correctness proof: the two-tier edge must be
        // semantically invisible. Same ground-truth tables, same
        // soundness and staleness invariants, with the sieve carrying
        // real load and the mirror AM's wrongly-signed sieves all
        // rejected fail-closed.
        let report = run(&ChaosConfig {
            sieve: true,
            ..ChaosConfig::default()
        });
        assert_eq!(report.violations, 0, "{report:?}");
        assert!(report.accesses >= 1_000, "{report:?}");
        assert!(report.granted > 0 && report.denied > 0, "{report:?}");
        // The sieve actually carried load end to end: pushed, installed,
        // and serving hits.
        assert!(report.sieves_pushed > 0, "{report:?}");
        assert!(report.sieve_installs > 0, "{report:?}");
        assert!(report.sieve_hits > 0, "{report:?}");
        // AM-B signs under its own secret, so every one of its bodies is
        // rejected — and its plain epoch params still got applied (the
        // run would violate soundness otherwise).
        assert!(report.sieve_rejects > 0, "{report:?}");
        assert!(
            report.max_served_staleness_ms <= ChaosConfig::default().stale_grace_ms,
            "{report:?}"
        );
    }

    #[test]
    fn chaos_soak_with_invalidation_push_holds_the_same_invariants() {
        // Protocol v2's surgical invalidation must be semantically
        // invisible under faults: same ground-truth tables, same
        // soundness and bounded-staleness invariants, with invalidation
        // bodies carrying real load and AM-B's wrongly-signed bodies all
        // falling back to the plain owner-wide purge.
        let report = run(&ChaosConfig {
            invalidation: true,
            ..ChaosConfig::default()
        });
        assert_eq!(report.violations, 0, "{report:?}");
        assert!(report.accesses >= 1_000, "{report:?}");
        assert!(report.granted > 0 && report.denied > 0, "{report:?}");
        // Invalidation actually carried load end to end.
        assert!(report.invalidations_pushed > 0, "{report:?}");
        assert!(report.invalidations_applied > 0, "{report:?}");
        // Revocations happened while permits were cached, so at least
        // some entries died by exact fingerprint rather than purge.
        assert!(report.revocations > 0, "{report:?}");
        assert!(
            report.max_served_staleness_ms <= ChaosConfig::default().stale_grace_ms,
            "{report:?}"
        );
    }

    #[test]
    fn chaos_soak_with_invalidation_is_deterministic_per_seed() {
        let config = ChaosConfig {
            steps: 400,
            seed: 7,
            invalidation: true,
            ..ChaosConfig::default()
        };
        assert_eq!(run(&config), run(&config));
    }

    #[test]
    fn chaos_soak_with_sieve_is_deterministic_per_seed() {
        let config = ChaosConfig {
            steps: 400,
            seed: 7,
            sieve: true,
            ..ChaosConfig::default()
        };
        assert_eq!(run(&config), run(&config));
    }

    #[test]
    fn chaos_soak_is_deterministic_per_seed() {
        let config = ChaosConfig {
            steps: 400,
            seed: 7,
            ..ChaosConfig::default()
        };
        assert_eq!(run(&config), run(&config));
    }

    #[test]
    fn chaos_soak_exercises_degraded_and_failover_paths() {
        // A seed/shape chosen so the rarer paths all fire: stale-grace
        // serving, breaker fast-fails and requester failovers.
        let report = run(&ChaosConfig {
            steps: 3_000,
            seed: 1,
            ..ChaosConfig::default()
        });
        assert_eq!(report.violations, 0, "{report:?}");
        assert!(report.stale_served > 0, "{report:?}");
        assert!(report.breaker_fast_fails > 0, "{report:?}");
        assert!(report.requester_failovers > 0, "{report:?}");
        assert!(report.fail_closed > 0, "{report:?}");
    }
}
