//! Small table/metric helpers shared by the experiment drivers.

use std::fmt;

/// A simple text table, rendered with aligned columns — the experiment
//  drivers print their results through this so `EXPERIMENTS.md` and the
//  bench output share one format.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    #[must_use]
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics when the row length differs from the header length.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells.to_vec());
    }

    /// Convenience for string-literal rows.
    pub fn row_strs(&mut self, cells: &[&str]) {
        self.row(&cells.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>());
    }

    /// The number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when there are no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Cell accessor (row, column).
    #[must_use]
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows.get(row)?.get(col).map(String::as_str)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, cell) in cells.iter().enumerate() {
                write!(f, " {cell:<width$} |", width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        write!(f, "|")?;
        for width in &widths {
            write!(f, "{}|", "-".repeat(width + 2))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row_strs(&["alpha", "1"]);
        t.row(&["b".to_owned(), "22222".to_owned()]);
        let text = t.to_string();
        assert!(text.contains("## demo"));
        assert!(text.contains("| alpha | 1     |"));
        assert!(text.contains("| b     | 22222 |"));
        assert_eq!(t.len(), 2);
        assert_eq!(t.cell(1, 1), Some("22222"));
        assert_eq!(t.cell(5, 0), None);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row_strs(&["only-one"]);
    }
}
