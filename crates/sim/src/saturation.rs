//! Saturation harness: the phase-3→6 protocol flow under thread load.
//!
//! `EXPERIMENTS.md` tracks the *modelled* cost of the protocol (round
//! trips, simulated latency); this module measures the *wall-clock* cost
//! of the implementation itself when N concurrent requesters hammer one
//! Authorization Manager and two Hosts. It is the harness behind the
//! `saturation` bench target and the `bench_report` example, which writes
//! the measured trajectory to `BENCH_PR2.json` so every PR records how
//! fast the fabric actually is.
//!
//! Two workloads:
//!
//! * [`SaturationMode::Phase6Warm`] — token reuse + warm decision cache:
//!   the paper's steady state, one round trip per access (§V.B.6).
//! * [`SaturationMode::FullFlow`] — the requester discards its tokens
//!   before every access, so each iteration replays phases 3–6 (redirect,
//!   authorization, access with decision query).
//!
//! Each thread drives its own [`RequesterClient`] against its own
//! resource (spread across the two Hosts), so the measured contention is
//! the fabric's — `SimNet` dispatch, AM shards, Host decision cache —
//! not artificial key collisions.

use std::sync::{Arc, Barrier};
use std::time::Instant;

use ucam_am::AuthorizationManager;
use ucam_host::{DelegationConfig, WebStorage};
use ucam_policy::{Action, PolicyBody, ResourceRef, Rule, RulePolicy, Subject};
use ucam_requester::{AccessSpec, RequesterClient};
use ucam_webenv::identity::IdentityProvider;
use ucam_webenv::{HttpTransport, Method, Request, SimNet, Transport, Url};

/// The two Host authorities of the saturation rig.
pub const SAT_HOSTS: [&str; 2] = ["files-a.example", "files-b.example"];

/// Per-access latency is stamped on every Nth access (the first of each
/// stride), so the percentile columns stay honest while the timed loop
/// itself stays almost free of clock reads and sample-buffer traffic.
const LATENCY_SAMPLE_EVERY: usize = 16;

/// Warm accesses are driven through [`RequesterClient::access_batch`] in
/// strides of this many, so the client-side pipelining the cross-process
/// transport implements (one buffered write + one read loop per stride,
/// DESIGN.md §15) is what the steady-state rows measure — §V.B.6's "one
/// round trip per access" amortized over the stride instead of paying a
/// scheduler switch per message. Equal to [`LATENCY_SAMPLE_EVERY`] so
/// the sampling rate is unchanged: one stamp per stride, with the
/// per-access figure being the stride wall over its length.
const PIPELINE_STRIDE: usize = LATENCY_SAMPLE_EVERY;

/// Which [`Transport`] backend the rig runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// The deterministic in-process fabric ([`SimNet`]).
    #[default]
    Sim,
    /// Real loopback TCP ([`HttpTransport`]): every dispatch crosses
    /// actual sockets through the hand-rolled HTTP/1.1 codec.
    Http,
}

impl TransportKind {
    /// The suffix appended to the `bench` column for this backend
    /// (`phase6_warm` stays bare for `Sim`; `Http` rows become
    /// `phase6_warm_http` so the two families never collide in
    /// `BENCH_PR2.json`).
    #[must_use]
    pub fn bench_suffix(self) -> &'static str {
        match self {
            TransportKind::Sim => "",
            TransportKind::Http => "_http",
        }
    }

    /// Builds a fresh, empty transport of this kind.
    #[must_use]
    pub fn build(self) -> Arc<dyn Transport> {
        match self {
            TransportKind::Sim => Arc::new(SimNet::new()),
            TransportKind::Http => Arc::new(HttpTransport::new()),
        }
    }
}

/// Which part of the protocol the measured loop replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaturationMode {
    /// Token held + decision cached: one round trip per access.
    Phase6Warm,
    /// Tokens discarded before every access: phases 3–6 on every access.
    FullFlow,
}

impl SaturationMode {
    /// The `bench` column value for this mode on a given backend.
    #[must_use]
    pub fn bench_name(self, transport: TransportKind) -> &'static str {
        match (self, transport) {
            (SaturationMode::Phase6Warm, TransportKind::Sim) => "phase6_warm",
            (SaturationMode::Phase6Warm, TransportKind::Http) => "phase6_warm_http",
            (SaturationMode::FullFlow, TransportKind::Sim) => "full_flow",
            (SaturationMode::FullFlow, TransportKind::Http) => "full_flow_http",
        }
    }
}

/// One saturation run's shape.
#[derive(Debug, Clone)]
pub struct SaturationConfig {
    /// Number of concurrent requester threads.
    pub threads: usize,
    /// Accesses each thread performs (after one untimed warm-up access).
    pub iters_per_thread: usize,
    /// Workload mode.
    pub mode: SaturationMode,
    /// Which transport backend carries the messages.
    pub transport: TransportKind,
}

/// One measured row, matching the `BENCH_PR2.json` schema.
#[derive(Debug, Clone)]
pub struct SaturationRow {
    /// Workload name (`phase6_warm` or `full_flow`).
    pub bench: &'static str,
    /// Number of concurrent requester threads.
    pub threads: usize,
    /// Available parallelism of the box that measured the row. Latency
    /// gates need it: on a box with fewer cores than threads, per-access
    /// sojourn necessarily grows by the time-sharing factor
    /// `threads / cores` (Little's law — N clients share one server), so
    /// a p50 ceiling that compares thread counts must scale by the
    /// oversubscription the *measuring* machine imposed.
    pub cores: usize,
    /// Aggregate granted accesses per wall-clock second.
    pub reqs_per_sec: f64,
    /// Median per-access wall latency in microseconds.
    pub p50_us: f64,
    /// 95th-percentile per-access wall latency in microseconds. The
    /// structural-contention gauge: on an oversubscribed box, OS
    /// preemption taints ~1% of latency samples (each descheduling
    /// charges a full scheduling quantum to whichever access straddles
    /// it), which whipsaws the p99; a real lock convoy stalls *every*
    /// thread behind the preempted holder and drags the p95 along too.
    pub p95_us: f64,
    /// 99th-percentile per-access wall latency in microseconds.
    pub p99_us: f64,
    /// Deterministic work counts for the timed window — the
    /// machine-independent half of the row (see [`WorkCounts`]).
    pub work: WorkCounts,
}

/// Exact protocol work performed during the timed window, read from the
/// transport's message stats and the Hosts' PEP counters after the
/// workers join. Every field is a deterministic function of
/// `(bench, threads, iters)` — independent of the machine, the load and
/// the transport backend — so CI gates on these values *exactly*
/// instead of trusting a noise-prone req/s floor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkCounts {
    /// Granted accesses in the timed window (`threads x iters`).
    pub accesses: u64,
    /// Request/response round trips the transport carried.
    pub wire_rts: u64,
    /// Exact serialized size of every successful round trip, as the
    /// canonical HTTP/1.1 codec frames it (`webenv::codec`). `SimNet`
    /// computes it arithmetically, `HttpTransport` moves those literal
    /// bytes — the cross-backend gate checks the two bit-identically,
    /// so the work-count cells cover message *size*, not just count.
    pub bytes_on_wire: u64,
    /// Accesses decided by the tier-1 capability sieve.
    pub sieve_hits: u64,
    /// Permits served from the tier-2 decision cache.
    pub cache_hits: u64,
    /// Decision queries that reached the AM.
    pub am_queries: u64,
}

impl SaturationRow {
    /// Renders the row as one JSON object (the `BENCH_PR2.json` row form).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"bench\":\"{}\",\"threads\":{},\"cores\":{},\"reqs_per_sec\":{:.1},\
             \"p50_us\":{:.2},\"p95_us\":{:.2},\"p99_us\":{:.2},\"accesses\":{},\"wire_rts\":{},\
             \"bytes_on_wire\":{},\"sieve_hits\":{},\"cache_hits\":{},\"am_queries\":{}}}",
            self.bench,
            self.threads,
            self.cores,
            self.reqs_per_sec,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.work.accesses,
            self.work.wire_rts,
            self.work.bytes_on_wire,
            self.work.sieve_hits,
            self.work.cache_hits,
            self.work.am_queries
        )
    }

    /// Folds another attempt at the same configuration into this row,
    /// keeping the best value of each field independently: max
    /// throughput, min latency at every percentile. Machine noise is
    /// strictly one-sided (preemption and throttling only ever slow a
    /// run down), so the per-field best over attempts is the tightest
    /// estimate of what the fabric can actually sustain — even when the
    /// best throughput and the best tail come from different windows.
    /// # Panics
    ///
    /// Panics when the two attempts disagree on their work counts: the
    /// counts are deterministic per configuration, so a mismatch means
    /// the protocol did different work on identical runs — a bug, not
    /// noise to be averaged away.
    pub fn merge_best(&mut self, other: &SaturationRow) {
        debug_assert_eq!(self.bench, other.bench);
        debug_assert_eq!(self.threads, other.threads);
        debug_assert_eq!(self.cores, other.cores);
        assert_eq!(
            self.work, other.work,
            "work counts diverged between attempts of {}@{}",
            self.bench, self.threads
        );
        self.reqs_per_sec = self.reqs_per_sec.max(other.reqs_per_sec);
        self.p50_us = self.p50_us.min(other.p50_us);
        self.p95_us = self.p95_us.min(other.p95_us);
        self.p99_us = self.p99_us.min(other.p99_us);
    }
}

/// The assembled rig: one AM, two Hosts, one reader account per thread.
struct Rig {
    net: Arc<dyn Transport>,
    idp: Arc<IdentityProvider>,
    am: Arc<AuthorizationManager>,
    hosts: Vec<Arc<WebStorage>>,
}

/// Builds the rig for `threads` readers: bob delegates both Hosts to one
/// AM, uploads one file per reader (spread across the Hosts), and links a
/// policy permitting any authenticated subject to read.
fn build_rig(transport: TransportKind, threads: usize) -> Rig {
    let net: Arc<dyn Transport> = transport.build();
    let clock = net.clock().clone();
    let idp = Arc::new(IdentityProvider::new("idp.example", clock.clone()));
    let am = Arc::new(AuthorizationManager::new("am.example", clock.clone()));
    am.set_identity_verifier(idp.verifier());
    net.register(idp.clone());
    net.register(am.clone());

    idp.register_user("bob", "pw");
    am.register_user("bob");
    // The AM pushes epoch advances — and, with the sieve enabled,
    // compiled tier-1 capability sieves (DESIGN.md §12) — to both Hosts.
    am.set_sieve_push(true);

    let mut hosts = Vec::new();
    for authority in SAT_HOSTS {
        let host = WebStorage::new(authority, clock.clone());
        host.shell().set_identity_verifier(idp.verifier());
        net.register(host.clone());
        am.set_epoch_push_target(authority);
        let (delegation, host_token) = am.establish_delegation(authority, "bob").unwrap();
        host.shell().core.set_user_delegation(
            "bob",
            DelegationConfig {
                am: "am.example".into(),
                host_token,
                delegation_id: delegation.id,
            },
        );
        hosts.push(host);
    }

    let bob = idp.login("bob", "pw").unwrap().token;
    for t in 0..threads {
        let authority = SAT_HOSTS[t % SAT_HOSTS.len()];
        let resp = net.dispatch(
            "browser:bob",
            Request::new(Method::Post, &format!("https://{authority}/files"))
                .with_param("path", &format!("shared/f{t}.txt"))
                .with_param("subject_token", &bob)
                .with_body(format!("file {t}")),
        );
        assert!(resp.status.is_success(), "upload failed: {}", resp.body);
    }

    am.pap("bob", |account| {
        let policy = account.create_policy(
            "open-read",
            PolicyBody::Rules(
                RulePolicy::new().with_rule(
                    Rule::permit()
                        .for_subject(Subject::Authenticated)
                        .for_action(Action::Read),
                ),
            ),
        );
        let realm = "shared";
        for t in 0..threads {
            let authority = SAT_HOSTS[t % SAT_HOSTS.len()];
            account.assign_realm(
                ResourceRef::new(authority, &format!("files/shared/f{t}.txt")),
                realm,
            );
        }
        account.link_general(realm, &policy).unwrap();
    })
    .unwrap();

    for t in 0..threads {
        idp.register_user(&format!("reader-{t}"), "pw");
    }

    Rig {
        net,
        idp,
        am,
        hosts,
    }
}

/// Recompiles and delivers the capability sieves to both Hosts on the
/// healthy fabric, draining the push channel to empty.
fn deliver_sieves(rig: &Rig) {
    rig.am.schedule_sieve_refresh();
    for _ in 0..1_000 {
        rig.am.pump_epoch_pushes(rig.net.as_ref());
        if rig.am.pending_epoch_pushes() == 0 {
            return;
        }
        rig.net.clock().advance_ms(50);
    }
    panic!("sieve pushes failed to drain on a healthy fabric");
}

/// Runs one saturation configuration and returns its measured row.
///
/// Every access is asserted granted, so a run that silently degrades into
/// denials cannot masquerade as a fast one.
///
/// # Panics
///
/// Panics when `threads` or `iters_per_thread` is zero, and when any
/// access is denied.
#[must_use]
pub fn run_saturation(config: &SaturationConfig) -> SaturationRow {
    assert!(config.threads > 0, "at least one thread");
    assert!(config.iters_per_thread > 0, "at least one iteration");
    let rig = build_rig(config.transport, config.threads);
    // Measured loops run trace-off: the point is the fabric's steady
    // state, not the recorder. The lazy-label API makes this one relaxed
    // atomic load per record call.
    rig.net.trace().set_enabled(false);
    let warmed = Arc::new(Barrier::new(config.threads + 1));
    let start_line = Arc::new(Barrier::new(config.threads + 1));
    let mode = config.mode;
    let iters = config.iters_per_thread;

    let mut handles = Vec::new();
    for t in 0..config.threads {
        let net = Arc::clone(&rig.net);
        let warmed = Arc::clone(&warmed);
        let start_line = Arc::clone(&start_line);
        let assertion = rig.idp.login(&format!("reader-{t}"), "pw").unwrap().token;
        handles.push(std::thread::spawn(move || {
            let mut client = RequesterClient::new(&format!("requester:reader-{t}"));
            client.set_subject_token(Some(assertion));
            let authority = SAT_HOSTS[t % SAT_HOSTS.len()];
            let spec = AccessSpec::read(Url::new(authority, &format!("/files/shared/f{t}.txt")));
            // Warm up: obtain the token and populate the decision cache.
            assert!(
                client.access(net.as_ref(), &spec).is_granted(),
                "warm-up access must succeed"
            );
            warmed.wait();
            // …the main thread compiles and delivers the sieves here…
            start_line.wait();
            // Each worker stamps its own window. The aggregate wall is
            // max(end) − min(start) across workers: timing from the main
            // thread is wrong on a box with fewer cores than threads,
            // because the workers can run (and even finish) before the
            // main thread is rescheduled after the barrier, shrinking the
            // observed window and inflating throughput.
            let began = Instant::now();
            let mut samples_ns = Vec::with_capacity(iters / LATENCY_SAMPLE_EVERY + 1);
            match mode {
                SaturationMode::Phase6Warm => {
                    // The steady state is driven in pipelined strides:
                    // the warm token is cached, so each stride is one
                    // `dispatch_pipelined` round over the wire. Latency
                    // is stamped once per stride and amortized over its
                    // length — the same 1-in-N sampling rate as the
                    // sequential loop below.
                    let specs = vec![spec.clone(); PIPELINE_STRIDE];
                    let mut done = 0;
                    while done < iters {
                        let stride = PIPELINE_STRIDE.min(iters - done);
                        let start = Instant::now();
                        let outcomes = client.access_batch(net.as_ref(), &specs[..stride]);
                        samples_ns.push(start.elapsed().as_nanos() as u64 / stride as u64);
                        for outcome in &outcomes {
                            assert!(
                                outcome.is_granted(),
                                "saturation access denied: {outcome:?}"
                            );
                        }
                        done += stride;
                    }
                }
                SaturationMode::FullFlow => {
                    for i in 0..iters {
                        client.clear_tokens();
                        // Latency is sampled 1-in-N: stamping every
                        // access costs two clock reads (~5% of a warm
                        // access) and a sample buffer whose footprint
                        // scales with the thread count, which would bias
                        // the multi-thread aggregate downward.
                        if i.is_multiple_of(LATENCY_SAMPLE_EVERY) {
                            let start = Instant::now();
                            let outcome = client.access(net.as_ref(), &spec);
                            samples_ns.push(start.elapsed().as_nanos() as u64);
                            assert!(
                                outcome.is_granted(),
                                "saturation access denied: {outcome:?}"
                            );
                        } else {
                            let outcome = client.access(net.as_ref(), &spec);
                            assert!(
                                outcome.is_granted(),
                                "saturation access denied: {outcome:?}"
                            );
                        }
                    }
                }
            }
            (began, Instant::now(), samples_ns)
        }));
    }

    // Every warm-up token is now issued: compile the capability sieves
    // and push them to both Hosts before the clock starts, so Phase6Warm
    // measures the steady state the AM can actually provision — the
    // tier-1 lock-free edge, not the shared-lock decision cache.
    warmed.wait();
    deliver_sieves(&rig);
    // Zero the message and PEP counters so the work counts cover exactly
    // the timed window: nothing moves between here and the start line.
    rig.net.reset_stats();
    for host in &rig.hosts {
        host.shell().core.reset_stats();
    }
    start_line.wait();
    let mut samples: Vec<u64> =
        Vec::with_capacity(config.threads * (iters / LATENCY_SAMPLE_EVERY + 1));
    let mut wall_start: Option<Instant> = None;
    let mut wall_end: Option<Instant> = None;
    for handle in handles {
        let (began, ended, thread_samples) = handle.join().expect("saturation thread panicked");
        wall_start = Some(wall_start.map_or(began, |w| w.min(began)));
        wall_end = Some(wall_end.map_or(ended, |w| w.max(ended)));
        samples.extend(thread_samples);
    }
    let elapsed = wall_end
        .expect("at least one thread")
        .saturating_duration_since(wall_start.expect("at least one thread"))
        .as_secs_f64();

    // Exact work accounting for the timed window, straight from the
    // stat cells that were zeroed at the start line.
    let mut pep = ucam_host::PepStats::default();
    for host in &rig.hosts {
        let hs = host.shell().core.stats();
        pep.sieve_hits += hs.sieve_hits;
        pep.cache_hits += hs.cache_hits;
        pep.am_queries += hs.am_queries;
    }
    let net_stats = rig.net.stats();
    let work = WorkCounts {
        accesses: (config.threads * iters) as u64,
        wire_rts: net_stats.round_trips,
        bytes_on_wire: net_stats.bytes_on_wire,
        sieve_hits: pep.sieve_hits,
        cache_hits: pep.cache_hits,
        am_queries: pep.am_queries,
    };

    // Phase6Warm must have run on the tier-1 edge: every timed access on
    // every thread a sieve hit. A run that silently degraded to tier-2
    // (an empty sieve, a compile gap, an early expiry) would measure the
    // wrong path and must fail loudly instead.
    if mode == SaturationMode::Phase6Warm {
        assert!(
            work.sieve_hits >= work.accesses,
            "phase6_warm ran off the sieve: {} tier-1 hits for {} accesses",
            work.sieve_hits,
            work.accesses
        );
    }

    samples.sort_unstable();
    let total_ops = (config.threads * iters) as f64;
    SaturationRow {
        bench: mode.bench_name(config.transport),
        threads: config.threads,
        cores: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        reqs_per_sec: total_ops / elapsed.max(f64::EPSILON),
        p50_us: percentile_us(&samples, 0.50),
        p95_us: percentile_us(&samples, 0.95),
        p99_us: percentile_us(&samples, 0.99),
        work,
    }
}

/// Runs the standard sweep: both modes × the given thread counts, on
/// the chosen transport backend.
#[must_use]
pub fn saturation_sweep(
    transport: TransportKind,
    thread_counts: &[usize],
    iters_per_thread: usize,
) -> Vec<SaturationRow> {
    let mut rows = Vec::new();
    for mode in [SaturationMode::Phase6Warm, SaturationMode::FullFlow] {
        for &threads in thread_counts {
            rows.push(run_saturation(&SaturationConfig {
                threads,
                iters_per_thread,
                mode,
                transport,
            }));
        }
    }
    rows
}

/// Renders rows as the `BENCH_PR2.json` document (a JSON array).
#[must_use]
pub fn rows_to_json(rows: &[SaturationRow]) -> String {
    let mut out = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&row.to_json());
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    assert!(!sorted_ns.is_empty());
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx] as f64 / 1_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_run_produces_sane_row() {
        let row = run_saturation(&SaturationConfig {
            threads: 2,
            iters_per_thread: 20,
            mode: SaturationMode::Phase6Warm,
            transport: TransportKind::Sim,
        });
        assert_eq!(row.bench, "phase6_warm");
        assert_eq!(row.threads, 2);
        assert!(row.reqs_per_sec > 0.0);
        assert!(row.p50_us > 0.0);
        assert!(row.p99_us >= row.p50_us);
    }

    #[test]
    fn full_flow_run_produces_sane_row() {
        let row = run_saturation(&SaturationConfig {
            threads: 2,
            iters_per_thread: 10,
            mode: SaturationMode::FullFlow,
            transport: TransportKind::Sim,
        });
        assert_eq!(row.bench, "full_flow");
        // A cold access costs strictly more wire work than a warm one, so
        // the row must still be well-formed under the heavier flow.
        assert!(row.reqs_per_sec > 0.0);
    }

    fn demo_work() -> WorkCounts {
        WorkCounts {
            accesses: 800,
            wire_rts: 800,
            bytes_on_wire: 240_000,
            sieve_hits: 800,
            cache_hits: 0,
            am_queries: 0,
        }
    }

    #[test]
    fn json_rows_match_schema() {
        let rows = vec![SaturationRow {
            bench: "phase6_warm",
            threads: 4,
            cores: 8,
            reqs_per_sec: 123456.7,
            p50_us: 4.25,
            p95_us: 7.75,
            p99_us: 9.5,
            work: demo_work(),
        }];
        let doc = rows_to_json(&rows);
        assert!(doc.starts_with("[\n"));
        assert!(doc.contains("\"bench\":\"phase6_warm\""));
        assert!(doc.contains("\"threads\":4"));
        assert!(doc.contains("\"cores\":8"));
        assert!(doc.contains("\"reqs_per_sec\":123456.7"));
        assert!(doc.contains("\"p50_us\":4.25"));
        assert!(doc.contains("\"p95_us\":7.75"));
        assert!(doc.contains("\"p99_us\":9.50"));
        assert!(doc.contains("\"accesses\":800"));
        assert!(doc.contains("\"wire_rts\":800"));
        assert!(doc.contains("\"bytes_on_wire\":240000"));
        // The document must round-trip through a typed parse of the
        // published schema.
        #[derive(serde::Deserialize)]
        struct RowCheck {
            bench: String,
            threads: u64,
            cores: u64,
            reqs_per_sec: f64,
            p50_us: f64,
            p95_us: f64,
            p99_us: f64,
            accesses: u64,
            wire_rts: u64,
            bytes_on_wire: u64,
            sieve_hits: u64,
            cache_hits: u64,
            am_queries: u64,
        }
        let parsed: Vec<RowCheck> = serde_json::from_str(&doc).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].bench, "phase6_warm");
        assert_eq!(parsed[0].threads, 4);
        assert_eq!(parsed[0].cores, 8);
        assert!((parsed[0].reqs_per_sec - 123456.7).abs() < 1e-6);
        assert!((parsed[0].p50_us - 4.25).abs() < 1e-9);
        assert!((parsed[0].p95_us - 7.75).abs() < 1e-9);
        assert!((parsed[0].p99_us - 9.5).abs() < 1e-9);
        assert_eq!(parsed[0].accesses, 800);
        assert_eq!(parsed[0].wire_rts, 800);
        assert_eq!(parsed[0].bytes_on_wire, 240_000);
        assert_eq!(parsed[0].sieve_hits, 800);
        assert_eq!(parsed[0].cache_hits, 0);
        assert_eq!(parsed[0].am_queries, 0);
    }

    #[test]
    fn merge_best_keeps_the_best_of_each_field_independently() {
        let mut row = SaturationRow {
            bench: "full_flow",
            threads: 8,
            cores: 4,
            reqs_per_sec: 25_000.0,
            p50_us: 33.0,
            p95_us: 80.0,
            p99_us: 16_000.0,
            work: demo_work(),
        };
        row.merge_best(&SaturationRow {
            bench: "full_flow",
            threads: 8,
            cores: 4,
            reqs_per_sec: 24_000.0,
            p50_us: 35.0,
            p95_us: 90.0,
            p99_us: 700.0,
            work: demo_work(),
        });
        assert!((row.reqs_per_sec - 25_000.0).abs() < 1e-9);
        assert!((row.p50_us - 33.0).abs() < 1e-9);
        assert!((row.p95_us - 80.0).abs() < 1e-9);
        assert!((row.p99_us - 700.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "work counts diverged")]
    fn merge_best_rejects_diverging_work_counts() {
        let mut row = SaturationRow {
            bench: "full_flow",
            threads: 8,
            cores: 4,
            reqs_per_sec: 25_000.0,
            p50_us: 33.0,
            p95_us: 80.0,
            p99_us: 90.0,
            work: demo_work(),
        };
        let mut other = row.clone();
        other.work.wire_rts += 1;
        row.merge_best(&other);
    }

    #[test]
    fn http_rig_matches_sim_work_counts() {
        // The same configuration must do identical protocol work on both
        // backends — the message edge is an implementation detail.
        let config = |transport| SaturationConfig {
            threads: 2,
            iters_per_thread: 8,
            mode: SaturationMode::Phase6Warm,
            transport,
        };
        let sim = run_saturation(&config(TransportKind::Sim));
        let http = run_saturation(&config(TransportKind::Http));
        assert_eq!(sim.bench, "phase6_warm");
        assert_eq!(http.bench, "phase6_warm_http");
        assert_eq!(sim.work, http.work, "work diverged across transports");
        assert_eq!(sim.work.accesses, 16);
        assert_eq!(sim.work.sieve_hits, 16);
        // `bytes_on_wire` is part of the equality above; pin that it is
        // a real measurement, not two zeroes agreeing with each other.
        assert!(sim.work.bytes_on_wire > 0, "bytes_on_wire not counted");
    }
}
