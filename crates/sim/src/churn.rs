//! Randomized sharing-churn simulation ("soak test").
//!
//! §II ends with the observation that sharing is not a one-shot act: Bob
//! keeps adding friends, removing them, and uploading more content. This
//! module drives a randomized stream of such events against the real
//! protocol stack and checks, on **every** access, that the outcome
//! matches an independently maintained ground-truth model — any deviation
//! is an authorization soundness violation.
//!
//! Decision caches are **enabled** during churn: the Host serves repeat
//! accesses from its bounded decision cache, and every policy-changing
//! event (group edit, delegation revocation) advances the owner's policy
//! epoch at the AM and pushes it to the Host, which drops the owner's
//! cached permits. Soundness argument: a cached permit is only served
//! for the same requester/resource/action/bearer-token within its TTL
//! *and* while the owner's epoch is unchanged since the AM stamped the
//! decision — so a cache hit reproduces a decision the AM made under
//! policy state identical (for that owner) to the current ground truth.
//! Runs stay deterministic per seed: eviction is insertion-ordered
//! second-chance, never keyed on map iteration order.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ucam_am::AuthorizationManager;
use ucam_host::{DelegationConfig, WebStorage};
use ucam_policy::{Action, PolicyBody, ResourceRef, Rule, RulePolicy, Subject};
use ucam_requester::{AccessOutcome, AccessSpec, RequesterClient};
use ucam_webenv::identity::IdentityProvider;
use ucam_webenv::{Method, Request, SimNet, Url};

/// Configuration of a churn run.
#[derive(Debug, Clone, Copy)]
pub struct ChurnConfig {
    /// Number of resource-owning users.
    pub owners: usize,
    /// Number of potential readers.
    pub readers: usize,
    /// Resources per owner.
    pub resources_per_owner: usize,
    /// Randomized steps to execute.
    pub steps: usize,
    /// RNG seed (runs are deterministic per seed).
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            owners: 3,
            readers: 5,
            resources_per_owner: 4,
            steps: 300,
            seed: 42,
        }
    }
}

/// The outcome of a churn run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChurnReport {
    /// Accesses attempted.
    pub accesses: u64,
    /// Accesses granted.
    pub granted: u64,
    /// Accesses denied.
    pub denied: u64,
    /// Grant events (friend added).
    pub grants: u64,
    /// Revoke events (friend removed).
    pub revocations: u64,
    /// Ground-truth mismatches (MUST be zero).
    pub violations: u64,
    /// Round trips on the wire over the whole run.
    pub round_trips: u64,
    /// Accesses served from the Host's decision cache.
    pub cache_hits: u64,
}

/// Runs the churn simulation. See the [module docs](self).
///
/// # Panics
///
/// Panics when the rig cannot be constructed (zero owners/readers).
#[must_use]
pub fn run(config: &ChurnConfig) -> ChurnReport {
    assert!(config.owners > 0 && config.readers > 0, "need actors");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let net = SimNet::new();
    // The soak dispatches tens of thousands of messages; run trace-off so
    // it exercises the fabric's zero-cost path and stays memory-flat.
    net.trace().set_enabled(false);
    let clock = net.clock().clone();

    let idp = Arc::new(IdentityProvider::new("idp.example", clock.clone()));
    let am = Arc::new(AuthorizationManager::new("am.example", clock.clone()));
    am.set_identity_verifier(idp.verifier());
    let host = WebStorage::new("storage.example", clock);
    host.shell().set_identity_verifier(idp.verifier());
    net.register(idp.clone());
    net.register(am.clone());
    net.register(host.clone());

    let owners: Vec<String> = (0..config.owners).map(|i| format!("owner-{i}")).collect();
    let readers: Vec<String> = (0..config.readers).map(|i| format!("reader-{i}")).collect();

    // Register users, upload resources, delegate, and install one
    // group-based policy per owner.
    let mut resources: Vec<(String, String)> = Vec::new(); // (owner, resource id)
    for owner in &owners {
        idp.register_user(owner, "pw");
        am.register_user(owner);
        let assertion = idp.login(owner, "pw").unwrap().token;
        let (delegation, host_token) = am.establish_delegation("storage.example", owner).unwrap();
        host.shell().core.set_user_delegation(
            owner,
            DelegationConfig {
                am: "am.example".into(),
                host_token,
                delegation_id: delegation.id,
            },
        );
        for r in 0..config.resources_per_owner {
            let path = format!("{owner}/res-{r}.txt");
            let resp = net.dispatch(
                &format!("browser:{owner}"),
                Request::new(Method::Post, "https://storage.example/files")
                    .with_param("path", &path)
                    .with_param("subject_token", &assertion)
                    .with_body(format!("content of {path}")),
            );
            assert!(resp.status.is_success(), "{}", resp.body);
            resources.push((owner.clone(), format!("files/{path}")));
        }
        am.pap(owner, |account| {
            let id = account.create_policy(
                "readers",
                PolicyBody::Rules(
                    RulePolicy::new().with_rule(
                        Rule::permit()
                            .for_subject(Subject::Group("readers".into()))
                            .for_action(Action::Read),
                    ),
                ),
            );
            let realm = "everything";
            for r in 0..config.resources_per_owner {
                account.assign_realm(
                    ResourceRef::new("storage.example", &format!("files/{owner}/res-{r}.txt")),
                    realm,
                );
            }
            account.link_general(realm, &id).unwrap();
        })
        .unwrap();
    }
    let mut clients: HashMap<String, RequesterClient> = HashMap::new();
    for reader in &readers {
        idp.register_user(reader, "pw");
        let assertion = idp.login(reader, "pw").unwrap().token;
        let mut client = RequesterClient::new(&format!("requester:{reader}"));
        client.set_subject_token(Some(assertion));
        clients.insert(reader.clone(), client);
    }

    // Ground truth: owner -> set of readers currently in their group.
    let mut truth: HashMap<String, HashSet<String>> = HashMap::new();
    // Ground truth: owners whose Host<->AM delegation is currently revoked.
    let mut revoked_delegation: HashSet<String> = HashSet::new();
    // Current delegation id per owner (needed for revocation).
    let mut delegation_ids: HashMap<String, String> = HashMap::new();
    for owner in &owners {
        let config = host
            .shell()
            .core
            .delegation_for("any", owner)
            .expect("delegated during setup");
        delegation_ids.insert(owner.clone(), config.delegation_id);
    }
    let mut report = ChurnReport::default();

    // Epoch push channel: after any policy-changing event the AM's fresh
    // epoch for the owner reaches the Host, killing stale cached permits
    // (this replaces the old blanket `flush_decision_cache()`).
    let push_epoch = |owner: &str| {
        host.shell()
            .core
            .note_policy_epoch(owner, am.policy_epoch(owner));
    };

    for _ in 0..config.steps {
        match rng.gen_range(0..12) {
            // 0-2: owner grants a random reader.
            0..=2 => {
                let owner = &owners[rng.gen_range(0..owners.len())];
                let reader = &readers[rng.gen_range(0..readers.len())];
                am.pap(owner, |account| account.add_group_member("readers", reader))
                    .unwrap();
                push_epoch(owner);
                truth
                    .entry(owner.clone())
                    .or_default()
                    .insert(reader.clone());
                report.grants += 1;
            }
            // 3-4: owner revokes a random reader.
            3..=4 => {
                let owner = &owners[rng.gen_range(0..owners.len())];
                let reader = &readers[rng.gen_range(0..readers.len())];
                am.pap(owner, |account| {
                    account.remove_group_member("readers", reader);
                })
                .unwrap();
                push_epoch(owner);
                truth.entry(owner.clone()).or_default().remove(reader);
                report.revocations += 1;
            }
            // 5: owner revokes their delegation entirely (trust withdrawn).
            5 => {
                let owner = owners[rng.gen_range(0..owners.len())].clone();
                if !revoked_delegation.contains(&owner) {
                    let id = delegation_ids.get(&owner).expect("known").clone();
                    assert!(am.revoke_delegation(&owner, &id));
                    push_epoch(&owner);
                    revoked_delegation.insert(owner);
                }
            }
            // 6: owner re-establishes a revoked delegation (Fig. 3 again).
            6 => {
                let owner = owners[rng.gen_range(0..owners.len())].clone();
                if revoked_delegation.remove(&owner) {
                    let (delegation, host_token) = am
                        .establish_delegation("storage.example", &owner)
                        .expect("account exists");
                    host.shell().core.set_user_delegation(
                        &owner,
                        DelegationConfig {
                            am: "am.example".into(),
                            host_token,
                            delegation_id: delegation.id.clone(),
                        },
                    );
                    delegation_ids.insert(owner, delegation.id);
                }
            }
            // 7-11: a random reader accesses a random resource.
            _ => {
                let reader = &readers[rng.gen_range(0..readers.len())];
                let (owner, resource) = &resources[rng.gen_range(0..resources.len())];
                let expected = !revoked_delegation.contains(owner)
                    && truth.get(owner).is_some_and(|set| set.contains(reader));
                let client = clients.get_mut(reader).expect("registered");
                let spec = AccessSpec::read(Url::new("storage.example", &format!("/{resource}")));
                let outcome = client.access(&net, &spec);
                report.accesses += 1;
                let granted = outcome.is_granted();
                if granted {
                    report.granted += 1;
                } else {
                    report.denied += 1;
                }
                if granted != expected {
                    report.violations += 1;
                }
                // Sanity: non-grant outcomes during churn must be clean
                // policy denials, not protocol failures.
                if !granted && !matches!(outcome, AccessOutcome::Denied(_)) {
                    report.violations += 1;
                }
            }
        }
    }
    report.round_trips = net.stats().round_trips;
    report.cache_hits = host.shell().core.stats().cache_hits;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soak_has_no_violations() {
        let report = run(&ChurnConfig::default());
        assert_eq!(report.violations, 0, "{report:?}");
        assert!(report.accesses > 50, "{report:?}");
        assert!(
            report.granted > 0,
            "some shares must have landed: {report:?}"
        );
        assert!(report.denied > 0, "some denials must occur: {report:?}");
        assert!(
            report.cache_hits > 0,
            "the decision cache must carry some of the load: {report:?}"
        );
    }

    #[test]
    fn soak_is_deterministic_per_seed() {
        let a = run(&ChurnConfig {
            steps: 120,
            seed: 7,
            ..ChurnConfig::default()
        });
        let b = run(&ChurnConfig {
            steps: 120,
            seed: 7,
            ..ChurnConfig::default()
        });
        assert_eq!(a, b);
    }

    #[test]
    fn soak_scales_actors() {
        let report = run(&ChurnConfig {
            owners: 5,
            readers: 10,
            resources_per_owner: 2,
            steps: 200,
            seed: 99,
        });
        assert_eq!(report.violations, 0, "{report:?}");
    }
}
