//! Million-entity population engine: seeded, streamed generators for
//! users, resources and Zipf-shaped traffic, plus the `population_scale`
//! load-curve driver behind `BENCH_PR2.json`.
//!
//! The paper argues the AM centralizes access management for *all* of a
//! user's Web resources — which only holds up if one AM instance
//! sustains realistic populations. This module generates those
//! populations deterministically:
//!
//! * [`Population`] streams 10⁶ users and 10⁶ resources over a
//!   configurable Host count (the bench range is 64–1024) in O(entities)
//!   time and O(1) memory — entity names are formatted on demand and
//!   never materialized as a whole;
//! * [`Zipf`] shapes traffic: both the resource and the requester of
//!   every [`AccessEvent`] are rank-skewed (s ≈ 1.0), so a small hot set
//!   dominates — the distribution real sharing traffic follows;
//! * [`run_population_scale`] assembles the full fabric (one AM, `hosts`
//!   WebStorage Hosts, per-owner push subscriptions), registers the
//!   population, drains the epoch-push backlog with the bounded fan-out
//!   pump, and measures granted end-to-end accesses.
//!
//! Determinism: the same seed yields byte-identical streams (pinned by
//! [`Population::digest`]), so load curves are reproducible run to run.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use ucam_am::AuthorizationManager;
use ucam_host::WebStorage;
use ucam_policy::{Action, PolicyBody, ResourceRef, Rule, RulePolicy, Subject};
use ucam_requester::{AccessSpec, RequesterClient};
use ucam_webenv::{protocol, Method, Request, SimNet, Status, Url};

/// SplitMix64 — the seed expander: tiny state, full 64-bit avalanche,
/// and deterministic across platforms. Not cryptographic; this drives
/// load shapes, not security decisions.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A Zipf(s) rank sampler over `n` items via the inverse CDF of the
/// continuous bounded power-law — O(1) per draw and O(1) state, where
/// the textbook discrete sampler needs an O(n) harmonic table.
///
/// For s = 1 the CDF is `ln(x)/ln(n+1)` on `[1, n+1)`; for s ≠ 1 it is
/// the bounded Pareto form. Rank 0 is the hottest item.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    s: f64,
    /// `ln(n+1)` — the s = 1 normalizer.
    log_n1: f64,
    /// `(n+1)^(1-s)` — the s ≠ 1 normalizer.
    pow_n1: f64,
}

impl Zipf {
    /// Creates a sampler over ranks `0..n` with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero or `s` is not positive.
    #[must_use]
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(s > 0.0, "Zipf exponent must be positive");
        let n1 = (n + 1) as f64;
        Zipf {
            n,
            s,
            log_n1: n1.ln(),
            pow_n1: n1.powf(1.0 - s),
        }
    }

    /// Draws one rank in `0..n` (0 = hottest).
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        let u = rng.next_unit();
        let x = if (self.s - 1.0).abs() < 1e-9 {
            (u * self.log_n1).exp()
        } else {
            let e = 1.0 - self.s;
            (1.0 + u * (self.pow_n1 - 1.0)).powf(1.0 / e)
        };
        (x.floor() as u64).saturating_sub(1).min(self.n - 1)
    }
}

/// The shape of a generated population.
#[derive(Debug, Clone)]
pub struct PopulationConfig {
    /// Number of resource-owner accounts at the AM.
    pub users: usize,
    /// Number of resources, spread over the owners round-robin.
    pub resources: usize,
    /// Number of Hosts; owner `u` lives on Host `u % hosts`. The bench
    /// range is 64–1024.
    pub hosts: usize,
    /// Size of the requester pool traffic draws from.
    pub requesters: usize,
    /// Seed for every stream this population produces.
    pub seed: u64,
    /// Zipf exponent shaping resource and requester popularity.
    pub zipf_s: f64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            users: 1_000,
            resources: 1_000,
            hosts: 64,
            requesters: 256,
            seed: 0x5EED_CAFE,
            zipf_s: 1.0,
        }
    }
}

/// One generated user: owner account `name` homed on Host `host`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserSpec {
    /// Dense user index.
    pub id: u64,
    /// Account name at the AM (and owner name at the Host).
    pub name: String,
    /// Index of the Host this user's resources live on.
    pub host: usize,
}

/// One generated resource: `path` at Host `host`, owned by user `owner`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceSpec {
    /// Dense resource index.
    pub id: u64,
    /// Resource id at the Host (`files/…`, the WebStorage namespace).
    pub path: String,
    /// Index of the owning user.
    pub owner: u64,
    /// Index of the Host the resource lives on.
    pub host: usize,
}

/// One traffic event: requester rank `requester` reads resource rank
/// `resource`; both are Zipf-skewed indexes into their pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessEvent {
    /// Resource index in `0..resources`.
    pub resource: u64,
    /// Requester index in `0..requesters`.
    pub requester: u64,
}

/// The deterministic generator: all streams derive from
/// [`PopulationConfig::seed`] and nothing is materialized up front.
#[derive(Debug, Clone)]
pub struct Population {
    cfg: PopulationConfig,
}

impl Population {
    /// Wraps a validated config.
    ///
    /// # Panics
    ///
    /// Panics when any pool is empty.
    #[must_use]
    pub fn new(cfg: PopulationConfig) -> Self {
        assert!(cfg.users > 0, "population needs users");
        assert!(cfg.resources > 0, "population needs resources");
        assert!(cfg.hosts > 0, "population needs hosts");
        assert!(cfg.requesters > 0, "population needs requesters");
        Population { cfg }
    }

    /// The config this population was built from.
    #[must_use]
    pub fn config(&self) -> &PopulationConfig {
        &self.cfg
    }

    /// Account name of user `u`.
    #[must_use]
    pub fn user_name(&self, u: u64) -> String {
        format!("u{u}")
    }

    /// Authority of Host `h`.
    #[must_use]
    pub fn host_authority(&self, h: usize) -> String {
        format!("host-{h}.example")
    }

    /// Resource id of resource `r` (the Host-side id, under the
    /// WebStorage `files/` namespace).
    #[must_use]
    pub fn resource_id(&self, r: u64) -> String {
        format!("files/pop/r{r}")
    }

    /// Requester (client) name of requester rank `q`.
    #[must_use]
    pub fn requester_name(&self, q: u64) -> String {
        format!("requester:req-{q}")
    }

    /// The user owning resource `r` (round-robin).
    #[must_use]
    pub fn owner_of_resource(&self, r: u64) -> u64 {
        r % self.cfg.users as u64
    }

    /// The Host user `u` lives on (round-robin).
    #[must_use]
    pub fn host_of_user(&self, u: u64) -> usize {
        (u % self.cfg.hosts as u64) as usize
    }

    /// Streams every user, in index order. O(1) memory: each item is
    /// built on demand.
    pub fn users(&self) -> impl Iterator<Item = UserSpec> + '_ {
        (0..self.cfg.users as u64).map(|id| UserSpec {
            id,
            name: self.user_name(id),
            host: self.host_of_user(id),
        })
    }

    /// Streams every resource, in index order. O(1) memory.
    pub fn resources(&self) -> impl Iterator<Item = ResourceSpec> + '_ {
        (0..self.cfg.resources as u64).map(|id| {
            let owner = self.owner_of_resource(id);
            ResourceSpec {
                id,
                path: self.resource_id(id),
                owner,
                host: self.host_of_user(owner),
            }
        })
    }

    /// Streams the (infinite) Zipf-shaped traffic for this population's
    /// seed. Callers `take(n)` what they need; the stream holds O(1)
    /// state and two draws per event.
    #[must_use]
    pub fn accesses(&self) -> AccessStream {
        AccessStream {
            rng: SplitMix64::new(self.cfg.seed ^ 0xACCE_55ED),
            resources: Zipf::new(self.cfg.resources as u64, self.cfg.zipf_s),
            requesters: Zipf::new(self.cfg.requesters as u64, self.cfg.zipf_s),
        }
    }

    /// FNV-1a digest over the first `events` traffic events — the
    /// determinism pin: equal seeds produce byte-identical streams.
    #[must_use]
    pub fn digest(&self, events: usize) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |v: u64| {
            for byte in v.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for event in self.accesses().take(events) {
            fold(event.resource);
            fold(event.requester);
        }
        hash
    }
}

/// The infinite traffic stream behind [`Population::accesses`].
#[derive(Debug, Clone)]
pub struct AccessStream {
    rng: SplitMix64,
    resources: Zipf,
    requesters: Zipf,
}

impl Iterator for AccessStream {
    type Item = AccessEvent;

    fn next(&mut self) -> Option<AccessEvent> {
        Some(AccessEvent {
            resource: self.resources.sample(&mut self.rng),
            requester: self.requesters.sample(&mut self.rng),
        })
    }
}

// -- the population_scale load-curve driver ---------------------------------

/// One `population_scale` run's shape.
#[derive(Debug, Clone)]
pub struct PopulationScaleConfig {
    /// Entity count: this many users *and* this many resources.
    pub population: usize,
    /// Host count the population is spread over.
    pub hosts: usize,
    /// Requester-pool size traffic draws from.
    pub requesters: usize,
    /// Measured accesses (each asserted granted).
    pub accesses: usize,
    /// Stream seed.
    pub seed: u64,
}

impl Default for PopulationScaleConfig {
    fn default() -> Self {
        PopulationScaleConfig {
            population: 10_000,
            hosts: 64,
            requesters: 1_024,
            accesses: 20_000,
            seed: 0x5EED_CAFE,
        }
    }
}

/// One measured `population_scale` row (the `BENCH_PR2.json` form).
#[derive(Debug, Clone)]
pub struct PopulationScaleRow {
    /// Entity count (users = resources).
    pub population: usize,
    /// Host count.
    pub hosts: usize,
    /// Granted end-to-end accesses per wall-clock second.
    pub reqs_per_sec: f64,
    /// Median per-access wall latency in microseconds.
    pub p50_us: f64,
    /// 99th-percentile per-access wall latency in microseconds.
    pub p99_us: f64,
    /// Entities registered per second during setup (users + resources +
    /// delegations + policies, streamed).
    pub setup_eps: f64,
    /// Epoch-push deliveries drained after setup — the multi-Host
    /// fan-out the run exercised.
    pub push_deliveries: u64,
    /// Hosts that onboarded through `POST /protection/v2/register`
    /// (DESIGN.md §16) — always equal to `hosts`; the row carries it so
    /// the CI registration smoke can assert dynamic onboarding actually
    /// ran, with zero hand-wired trust entries.
    pub hosts_registered: u64,
}

impl PopulationScaleRow {
    /// Renders the row as one JSON object (the `BENCH_PR2.json` row form).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"bench\":\"population_scale\",\"population\":{},\"hosts\":{},\
             \"reqs_per_sec\":{:.1},\"p50_us\":{:.2},\"p99_us\":{:.2},\
             \"setup_eps\":{:.0},\"push_deliveries\":{},\"hosts_registered\":{}}}",
            self.population,
            self.hosts,
            self.reqs_per_sec,
            self.p50_us,
            self.p99_us,
            self.setup_eps,
            self.push_deliveries,
            self.hosts_registered
        )
    }
}

/// Builds the full fabric for `cfg`, registers the population streamed
/// (never materialized), drains the epoch-push backlog with the bounded
/// pump, then measures `cfg.accesses` Zipf-shaped end-to-end accesses.
///
/// Every access runs the real protocol — requester → Host enforce →
/// AM decision — and is asserted granted, so a run that degrades into
/// denials cannot masquerade as a fast one.
///
/// # Panics
///
/// Panics when an access is denied or the push backlog fails to drain.
#[must_use]
pub fn run_population_scale(cfg: &PopulationScaleConfig) -> PopulationScaleRow {
    let pop = Population::new(PopulationConfig {
        users: cfg.population,
        resources: cfg.population,
        hosts: cfg.hosts,
        requesters: cfg.requesters,
        seed: cfg.seed,
        zipf_s: 1.0,
    });
    let net = Arc::new(SimNet::new());
    net.trace().set_enabled(false);
    let clock = net.clock().clone();
    let am = Arc::new(AuthorizationManager::new("am.example", clock.clone()));
    // Audit is an O(1)-per-event ring here, not an unbounded log: a
    // million-entity run would otherwise hold every setup event forever.
    am.set_audit_cap(4_096);
    net.register(am.clone());
    let hosts: Vec<Arc<WebStorage>> = (0..cfg.hosts)
        .map(|h| {
            let host = WebStorage::new(&pop.host_authority(h), clock.clone());
            net.register(host.clone());
            host
        })
        .collect();

    // Registration, streamed — and fully dynamic (DESIGN.md §16): every
    // Host onboards itself over the wire through
    // `POST /protection/v2/register`, then obtains each of its owners'
    // delegations through `/protection/v2/delegate` (with `subscribe=1`
    // folding the per-owner push subscription into the same round trip)
    // and installs them via its own `/delegate/done` route. Zero trust
    // entries are hand-wired into either side.
    let setup_started = Instant::now();
    let credentials: Vec<protocol::RegistrationReply> = (0..cfg.hosts)
        .map(|h| {
            let authority = pop.host_authority(h);
            let resp = net.dispatch(
                &authority,
                Request::to_url(
                    Method::Post,
                    Url::new("am.example", protocol::REGISTER_PATH),
                )
                .with_body(
                    protocol::RegisterBody {
                        kind: "host".into(),
                        authority: authority.clone(),
                    }
                    .to_json(),
                ),
            );
            assert_eq!(resp.status, Status::Created, "registration: {}", resp.body);
            protocol::RegistrationReply::from_json(&resp.body).expect("registration reply")
        })
        .collect();
    for user in pop.users() {
        am.register_user(&user.name);
        let authority = pop.host_authority(user.host);
        let cred = &credentials[user.host];
        let resp = net.dispatch(
            &authority,
            Request::to_url(
                Method::Post,
                Url::new("am.example", protocol::DELEGATE_V2_PATH),
            )
            .with_param("registrant_id", &cred.registrant_id)
            .with_param("secret", &cred.secret)
            .with_param("user", &user.name)
            .with_param("subscribe", "1"),
        );
        assert_eq!(resp.status, Status::Created, "delegation: {}", resp.body);
        let reply = protocol::DelegateReply::from_json(&resp.body).expect("delegate reply");
        // Fig. 3 step 3, over the wire: the Host stores the delegation
        // through its own route rather than a direct core call.
        let done = net.dispatch(
            "am.example",
            Request::to_url(Method::Get, Url::new(&authority, "/delegate/done"))
                .with_param("user", &user.name)
                .with_param("am", "am.example")
                .with_param("host_token", &reply.host_token)
                .with_param("delegation_id", &reply.delegation_id),
        );
        assert!(done.status.is_success(), "delegate/done: {}", done.body);
    }
    for resource in pop.resources() {
        hosts[resource.host]
            .shell()
            .core
            .put_resource(
                &resource.path,
                &pop.user_name(resource.owner),
                "file",
                Vec::new(),
            )
            .expect("resource registration");
    }
    let users = cfg.population as u64;
    let resources = cfg.population as u64;
    for user in pop.users() {
        let authority = pop.host_authority(user.host);
        am.pap(&user.name, |account| {
            let policy = account.create_policy(
                "open-read",
                PolicyBody::Rules(
                    RulePolicy::new().with_rule(
                        Rule::permit()
                            .for_subject(Subject::Public)
                            .for_action(Action::Read),
                    ),
                ),
            );
            let mut r = user.id;
            while r < resources {
                account.assign_realm(ResourceRef::new(&authority, &pop.resource_id(r)), "shared");
                r += users;
            }
            account.link_general("shared", &policy).unwrap();
        })
        .expect("policy composition");
    }
    let setup_eps = (2 * cfg.population) as f64 / setup_started.elapsed().as_secs_f64().max(1e-9);

    // Drain the per-owner push backlog with the bounded pump: every
    // registered owner queued an epoch push to their home Host, so this
    // is the multi-Host fan-out edge at full width.
    let mut push_deliveries = 0u64;
    for _ in 0..(cfg.population / 512 + 1_000) {
        push_deliveries += am.pump_epoch_pushes_bounded(net.as_ref(), 4_096) as u64;
        if am.pending_epoch_pushes() == 0 {
            break;
        }
        clock.advance_ms(50);
    }
    assert_eq!(
        am.pending_epoch_pushes(),
        0,
        "epoch pushes failed to drain on a healthy fabric"
    );

    // Measured phase: Zipf traffic through the full protocol. Clients
    // are cached per requester rank, so hot requesters keep their token
    // caches warm — the steady-state mix, not an all-cold artifact.
    let mut clients: HashMap<u64, RequesterClient> = HashMap::new();
    let mut samples_ns: Vec<u64> = Vec::with_capacity(cfg.accesses);
    let started = Instant::now();
    for event in pop.accesses().take(cfg.accesses) {
        let owner = pop.owner_of_resource(event.resource);
        let host = pop.host_of_user(owner);
        let spec = AccessSpec::read(Url::new(
            &pop.host_authority(host),
            &format!("/{}", pop.resource_id(event.resource)),
        ));
        let client = clients
            .entry(event.requester)
            .or_insert_with(|| RequesterClient::new(&pop.requester_name(event.requester)));
        let begun = Instant::now();
        let outcome = client.access(net.as_ref(), &spec);
        samples_ns.push(begun.elapsed().as_nanos() as u64);
        assert!(
            outcome.is_granted(),
            "population access denied: {outcome:?}"
        );
    }
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);

    samples_ns.sort_unstable();
    let pct = |p: f64| -> f64 {
        let idx = ((samples_ns.len() as f64 - 1.0) * p).round() as usize;
        samples_ns[idx] as f64 / 1_000.0
    };
    PopulationScaleRow {
        population: cfg.population,
        hosts: cfg.hosts,
        reqs_per_sec: cfg.accesses as f64 / elapsed,
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        setup_eps,
        push_deliveries,
        hosts_registered: credentials.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_means_byte_identical_streams() {
        let cfg = PopulationConfig {
            users: 100_000,
            resources: 100_000,
            requesters: 10_000,
            ..PopulationConfig::default()
        };
        let a = Population::new(cfg.clone());
        let b = Population::new(cfg.clone());
        assert_eq!(a.digest(10_000), b.digest(10_000));
        let events_a: Vec<AccessEvent> = a.accesses().take(1_000).collect();
        let events_b: Vec<AccessEvent> = b.accesses().take(1_000).collect();
        assert_eq!(events_a, events_b);

        let reseeded = Population::new(PopulationConfig {
            seed: cfg.seed ^ 1,
            ..cfg
        });
        assert_ne!(a.digest(10_000), reseeded.digest(10_000));
    }

    #[test]
    fn zipf_top_one_percent_takes_the_majority() {
        // s = 1 over 10⁶ ranks: the analytic top-1% share is
        // ln(10⁴+1)/ln(10⁶+1) ≈ 0.667. Assert the majority with slack on
        // both sides so the test pins the shape, not the RNG.
        let n: u64 = 1_000_000;
        let zipf = Zipf::new(n, 1.0);
        let mut rng = SplitMix64::new(42);
        let draws = 200_000;
        let hot = (0..draws)
            .filter(|_| zipf.sample(&mut rng) < n / 100)
            .count();
        let share = hot as f64 / draws as f64;
        assert!(
            (0.55..0.80).contains(&share),
            "top-1% share {share:.3} outside the Zipf(1.0) envelope"
        );
        // Rank 0 alone is the single hottest item.
        let mut rng = SplitMix64::new(7);
        let rank0 = (0..draws).filter(|_| zipf.sample(&mut rng) == 0).count();
        assert!(rank0 > draws / 40, "rank 0 drew only {rank0}/{draws}");
    }

    #[test]
    fn streams_hold_constant_state_at_a_million_entities() {
        let pop = Population::new(PopulationConfig {
            users: 1_000_000,
            resources: 1_000_000,
            hosts: 1_024,
            requesters: 1_000_000,
            ..PopulationConfig::default()
        });
        // The streams are generators, not collections: their entire
        // state is a few counters and samplers.
        let stream = pop.accesses();
        assert!(std::mem::size_of_val(&stream) <= 128);
        // Walking a million events and a million entities touches every
        // index without materializing anything.
        let mut checksum = 0u64;
        for event in pop.accesses().take(1_000_000) {
            checksum = checksum.wrapping_add(event.resource ^ event.requester);
        }
        assert_ne!(checksum, 0);
        assert_eq!(pop.users().count(), 1_000_000);
        assert_eq!(pop.resources().count(), 1_000_000);
        let last = pop.resources().nth(999_999).unwrap();
        assert_eq!(last.owner, 999_999);
        assert_eq!(last.host, pop.host_of_user(last.owner));
    }

    #[test]
    fn zipf_ranks_stay_in_bounds_for_every_exponent_branch() {
        for s in [0.8, 1.0, 1.2] {
            let zipf = Zipf::new(1_000, s);
            let mut rng = SplitMix64::new(9);
            for _ in 0..10_000 {
                assert!(zipf.sample(&mut rng) < 1_000);
            }
        }
    }

    #[test]
    fn small_population_runs_end_to_end() {
        let row = run_population_scale(&PopulationScaleConfig {
            population: 200,
            hosts: 8,
            requesters: 32,
            accesses: 300,
            seed: 1,
        });
        assert_eq!(row.population, 200);
        assert_eq!(row.hosts, 8);
        assert!(row.reqs_per_sec > 0.0);
        assert!(row.p99_us >= row.p50_us);
        // Every owner's registration queued (at least) one push to their
        // home Host, and the drain delivered all of them.
        assert!(row.push_deliveries >= 200);
        assert_eq!(row.hosts_registered, 8);
        let json = row.to_json();
        assert!(json.contains("\"bench\":\"population_scale\""));
        assert!(json.contains("\"population\":200"));
        assert!(json.contains("\"hosts\":8"));
        assert!(json.contains("\"hosts_registered\":8"));
    }

    #[test]
    fn population_registration_smoke_onboards_512_hosts_dynamically() {
        // The CI registration smoke: 512 Hosts onboard against a live AM
        // purely through `POST /protection/v2/register` +
        // `/protection/v2/delegate` — no hand-wired trust entries exist
        // anywhere in the population engine — and the fabric then serves
        // real end-to-end accesses on every Host.
        let row = run_population_scale(&PopulationScaleConfig {
            population: 512,
            hosts: 512,
            requesters: 64,
            accesses: 1_024,
            seed: 3,
        });
        assert_eq!(row.hosts, 512);
        assert_eq!(row.hosts_registered, 512);
        // Every owner's subscribe=1 delegation queued at least one epoch
        // push to their dynamically registered home Host.
        assert!(row.push_deliveries >= 512);
    }
}
