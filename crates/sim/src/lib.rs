//! Scenario simulation and experiment drivers for the UCAM reproduction.
//!
//! The paper's evaluation consists of protocol figures (Figs. 1–6), a
//! prototype description (§VI), and qualitative claims (S1–S4 vs C1–C4).
//! This crate makes all of that executable:
//!
//! * [`world`] — the §II scenario, assembled: Bob, WebPics/WebStorage/
//!   WebDocs, his friends, and his Authorization Manager,
//! * [`metrics`] — table rendering shared by experiments and benches,
//! * [`experiments`] — one driver per entry in `EXPERIMENTS.md` (E1–E14),
//!   each regenerating a figure as a checked protocol trace or a
//!   qualitative claim as a measured table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod churn;
pub mod experiments;
pub mod metrics;
pub mod population;
pub mod saturation;
pub mod storm;
pub mod world;

pub use metrics::Table;
pub use world::World;
