//! Deterministic retry with exponential backoff for protocol edges.
//!
//! The paper concedes that centralising authorization at the AM
//! concentrates availability risk (§V.D); a production deployment of the
//! protocol therefore needs disciplined retries on the Requester→Host and
//! Host→AM edges. [`RetryPolicy`] implements the standard shape —
//! exponential backoff, capped, with jitter, under a total budget — but
//! entirely against the shared [`SimClock`], so retry behaviour is a
//! deterministic, replayable function of the policy seed and the fault
//! schedule.
//!
//! Only **transport** failures are retried: a response carrying a
//! [`TransportError`] classification came from the fabric, not from an
//! application. Application-level responses (including `503`s an
//! application chose to emit) are returned to the caller unchanged after
//! the first attempt, so retry wrappers never change protocol semantics
//! on a healthy network — the paper's round-trip counts (EXPERIMENTS.md
//! E7) are unaffected.

use crate::clock::SimClock;
use crate::http::{Response, TransportError};
use crate::latency::splitmix64;

/// Retry discipline for one protocol edge.
///
/// Time is charged to the [`SimClock`]:
///
/// * a [`TransportError::Timeout`] failure costs the caller
///   [`RetryPolicy::attempt_timeout_ms`] (the time a real client would
///   wait before concluding the message was lost);
/// * a [`TransportError::Unreachable`] failure costs nothing extra
///   (connection refused is detected immediately);
/// * each backoff sleep costs its computed duration.
///
/// Retries stop at [`RetryPolicy::max_attempts`], or earlier when the
/// next backoff sleep would exceed the remaining
/// [`RetryPolicy::budget_ms`].
///
/// # Example
///
/// ```
/// use ucam_webenv::{Response, RetryPolicy, SimClock, Status, TransportError};
///
/// let clock = SimClock::new();
/// let policy = RetryPolicy::default();
/// let mut calls = 0;
/// let (resp, report) = policy.run(&clock, |_attempt| {
///     calls += 1;
///     if calls < 3 {
///         Response::with_status(Status::Unavailable)
///             .with_transport_error(TransportError::Unreachable)
///     } else {
///         Response::ok()
///     }
/// });
/// assert_eq!(resp.status, Status::Ok);
/// assert_eq!(report.attempts, 3);
/// assert!(clock.now_ms() > 0); // backoff time was charged
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of attempts (including the first). At least 1.
    pub max_attempts: u32,
    /// Backoff before retry `n` (1-based) starts from
    /// `base_backoff_ms << (n - 1)`.
    pub base_backoff_ms: u64,
    /// Cap applied to the exponential backoff before jitter.
    pub max_backoff_ms: u64,
    /// Maximum extra milliseconds of seeded jitter added to each backoff.
    pub jitter_ms: u64,
    /// Seed for the deterministic jitter sequence.
    pub seed: u64,
    /// Total milliseconds the policy may spend on timeouts and backoff
    /// sleeps before giving up.
    pub budget_ms: u64,
    /// Milliseconds a caller waits before treating a lost message as
    /// failed ([`TransportError::Timeout`] responses charge this).
    pub attempt_timeout_ms: u64,
}

impl Default for RetryPolicy {
    /// Conservative defaults: 4 attempts, 50 ms base backoff doubling to a
    /// 1 s cap with up to 20 ms jitter, a 1 s attempt timeout, and a 10 s
    /// total budget.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_ms: 50,
            max_backoff_ms: 1_000,
            jitter_ms: 20,
            seed: 0,
            budget_ms: 10_000,
            attempt_timeout_ms: 1_000,
        }
    }
}

/// What a [`RetryPolicy::run`] call did, for stats and assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryReport {
    /// Attempts performed (at least 1).
    pub attempts: u32,
    /// Milliseconds charged to the clock for backoff sleeps.
    pub backoff_ms: u64,
    /// Milliseconds charged to the clock for attempt timeouts.
    pub timeout_ms: u64,
    /// Whether the final response still carried a transport error.
    pub exhausted: bool,
}

impl RetryPolicy {
    /// Backoff before retry `attempt` (1-based): exponential from
    /// [`RetryPolicy::base_backoff_ms`], capped at
    /// [`RetryPolicy::max_backoff_ms`], plus seeded jitter. Deterministic
    /// per `(seed, attempt)`.
    #[must_use]
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(63);
        let exp = self
            .base_backoff_ms
            .saturating_mul(1u64 << shift)
            .min(self.max_backoff_ms);
        if self.jitter_ms == 0 {
            return exp;
        }
        exp + splitmix64(self.seed ^ u64::from(attempt)) % (self.jitter_ms + 1)
    }

    /// Runs `op` under this policy, charging timeouts and backoff sleeps
    /// to `clock`. `op` receives the 0-based attempt index.
    ///
    /// Returns the last response together with a [`RetryReport`]. The
    /// response is returned as soon as it carries no
    /// [`TransportError`] — success, denial and application errors all
    /// end the loop immediately.
    pub fn run(
        &self,
        clock: &SimClock,
        mut op: impl FnMut(u32) -> Response,
    ) -> (Response, RetryReport) {
        let mut report = RetryReport::default();
        let max_attempts = self.max_attempts.max(1);
        loop {
            let resp = op(report.attempts);
            report.attempts += 1;
            let Some(kind) = resp.transport_error() else {
                return (resp, report);
            };
            if kind == TransportError::Timeout {
                clock.advance_ms(self.attempt_timeout_ms);
                report.timeout_ms += self.attempt_timeout_ms;
            }
            let spent = report.timeout_ms + report.backoff_ms;
            if report.attempts >= max_attempts {
                report.exhausted = true;
                return (resp, report);
            }
            let backoff = self.backoff_ms(report.attempts);
            if spent.saturating_add(backoff) > self.budget_ms {
                report.exhausted = true;
                return (resp, report);
            }
            clock.advance_ms(backoff);
            report.backoff_ms += backoff;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Status;

    fn transport_fail(kind: TransportError) -> Response {
        Response::with_status(Status::Unavailable).with_transport_error(kind)
    }

    #[test]
    fn success_on_first_attempt_is_free() {
        let clock = SimClock::new();
        let (resp, report) = RetryPolicy::default().run(&clock, |_| Response::ok());
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(report.attempts, 1);
        assert!(!report.exhausted);
        assert_eq!(clock.now_ms(), 0, "no time charged on clean success");
    }

    #[test]
    fn application_responses_are_never_retried() {
        let clock = SimClock::new();
        let mut calls = 0;
        // An application-level 503 (no transport classification) must not
        // be retried: retrying it would change protocol semantics.
        let (resp, report) = RetryPolicy::default().run(&clock, |_| {
            calls += 1;
            Response::with_status(Status::Unavailable).with_body("app says no")
        });
        assert_eq!(calls, 1);
        assert_eq!(report.attempts, 1);
        assert_eq!(resp.body, "app says no");
        assert_eq!(clock.now_ms(), 0);
    }

    #[test]
    fn unreachable_retries_without_timeout_charge() {
        let clock = SimClock::new();
        let policy = RetryPolicy {
            jitter_ms: 0,
            ..RetryPolicy::default()
        };
        let (resp, report) = policy.run(&clock, |_| transport_fail(TransportError::Unreachable));
        assert_eq!(report.attempts, 4);
        assert!(report.exhausted);
        assert_eq!(report.timeout_ms, 0);
        // Backoffs: 50, 100, 200 (no sleep after the final attempt).
        assert_eq!(report.backoff_ms, 350);
        assert_eq!(clock.now_ms(), 350);
        assert_eq!(resp.transport_error(), Some(TransportError::Unreachable));
    }

    #[test]
    fn timeout_charges_attempt_timeout_each_try() {
        let clock = SimClock::new();
        let policy = RetryPolicy {
            max_attempts: 3,
            jitter_ms: 0,
            attempt_timeout_ms: 500,
            ..RetryPolicy::default()
        };
        let (_, report) = policy.run(&clock, |_| transport_fail(TransportError::Timeout));
        assert_eq!(report.attempts, 3);
        assert_eq!(report.timeout_ms, 1_500);
        assert_eq!(report.backoff_ms, 50 + 100);
        assert_eq!(clock.now_ms(), 1_650);
    }

    #[test]
    fn recovers_mid_sequence() {
        let clock = SimClock::new();
        let mut calls = 0;
        let (resp, report) = RetryPolicy::default().run(&clock, |attempt| {
            assert_eq!(attempt, calls);
            calls += 1;
            if calls < 3 {
                transport_fail(TransportError::Unreachable)
            } else {
                Response::ok()
            }
        });
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(report.attempts, 3);
        assert!(!report.exhausted);
    }

    #[test]
    fn budget_stops_retries_early() {
        let clock = SimClock::new();
        let policy = RetryPolicy {
            max_attempts: 100,
            base_backoff_ms: 100,
            max_backoff_ms: 100,
            jitter_ms: 0,
            budget_ms: 450,
            attempt_timeout_ms: 0,
            ..RetryPolicy::default()
        };
        let (_, report) = policy.run(&clock, |_| transport_fail(TransportError::Unreachable));
        // 4 backoffs of 100 ms fit in 450; the 5th would overshoot.
        assert_eq!(report.attempts, 5);
        assert!(report.exhausted);
        assert_eq!(report.backoff_ms, 400);
    }

    #[test]
    fn backoff_is_capped_and_jitter_deterministic() {
        let policy = RetryPolicy {
            base_backoff_ms: 100,
            max_backoff_ms: 400,
            jitter_ms: 30,
            seed: 42,
            ..RetryPolicy::default()
        };
        for attempt in 1..10 {
            let b = policy.backoff_ms(attempt);
            let exp = (100u64 << (attempt - 1)).min(400);
            assert!((exp..=exp + 30).contains(&b), "attempt {attempt}: {b}");
            // Same (seed, attempt) always draws the same jitter.
            assert_eq!(b, policy.backoff_ms(attempt));
        }
        // A different seed draws a different jitter sequence somewhere.
        let other = RetryPolicy {
            seed: 43,
            ..policy.clone()
        };
        assert!((1..10).any(|a| other.backoff_ms(a) != policy.backoff_ms(a)));
    }

    #[test]
    fn huge_attempt_counts_do_not_overflow() {
        let policy = RetryPolicy {
            base_backoff_ms: u64::MAX / 2,
            max_backoff_ms: u64::MAX,
            jitter_ms: 0,
            ..RetryPolicy::default()
        };
        // Shift saturation + saturating mul: no panic, just the cap.
        assert_eq!(policy.backoff_ms(200), u64::MAX);
    }
}
