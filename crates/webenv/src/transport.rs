//! The transport abstraction: one message edge, two backends.
//!
//! The paper's architecture is three kinds of Web application — Hosts,
//! Authorization Managers, Requesters — exchanging HTTP requests and
//! responses. Everything above this module (the Host PEP, the Requester
//! client, the AM shell, epoch/sieve pushes) speaks to the network through
//! [`Transport`], so the same protocol code runs over either backend:
//!
//! * [`SimNet`](crate::net::SimNet) — the deterministic in-process fabric:
//!   synchronous dispatch, modelled latency charged to the shared
//!   [`SimClock`], seeded failure injection. Every experiment and the
//!   chaos soak run here, bit-identically per seed.
//! * [`HttpTransport`](crate::httpnet::HttpTransport) — real loopback TCP:
//!   each registered application gets its own listener and accept loop, a
//!   hand-rolled HTTP/1.1 codec carries the same [`Request`]/[`Response`]
//!   shapes over the wire, and transport failures are classified from the
//!   socket (connection refused/reset → `unreachable`, read timeout →
//!   `timeout`) onto the same `x-error-kind` taxonomy the fabric uses.
//!
//! The contract both backends honour (DESIGN.md §14):
//!
//! * **Dispatch** is synchronous request/response; applications may
//!   dispatch nested requests through the same transport while handling
//!   one (Host → AM decision query, Fig. 6).
//! * **Failure classification**: every transport-synthesized failure is a
//!   `503` carrying an `x-error-kind` header — [`TransportError::Unreachable`]
//!   when the failure was detected immediately, [`TransportError::Timeout`]
//!   when the caller had to wait it out. Application responses (even
//!   application 503s) never carry the header.
//! * **Clock**: both backends expose one shared [`SimClock`]. `SimNet`
//!   charges its modelled latency to it; `HttpTransport` never advances
//!   it — virtual time stays harness-driven on both backends, so token
//!   lifetimes and grace windows behave identically.
//! * **Stats**: exact message accounting ([`NetStats`]) — round trips,
//!   per-edge counts, payload bytes. These are the deterministic
//!   work-count cells the CI bench gate checks exactly.
//!
//! [`TransportError::Unreachable`]: crate::http::TransportError::Unreachable
//! [`TransportError::Timeout`]: crate::http::TransportError::Timeout

use std::sync::Arc;

use crate::clock::SimClock;
use crate::http::{Request, Response};
use crate::net::{NetStats, WebApp};
use crate::trace::TraceRecorder;

/// The message edge connecting Hosts, AMs and Requesters.
///
/// See the [module documentation](self) for the backend contract. All
/// protocol-layer code takes `&dyn Transport`; harnesses pick the
/// backend ([`SimNet`](crate::net::SimNet) for deterministic experiments,
/// [`HttpTransport`](crate::httpnet::HttpTransport) for real sockets) and
/// the call sites coerce.
pub trait Transport: Send + Sync + 'static {
    /// A short backend label (`"sim"`, `"http"`) for bench rows and logs.
    fn name(&self) -> &'static str;

    /// The concrete backend, for harness-level code that needs
    /// backend-specific controls (e.g. downcasting to
    /// [`SimNet`](crate::net::SimNet) to inject simulated partitions).
    /// Protocol code must never use this.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Registers an application under its [`WebApp::authority`]. A second
    /// registration for the same authority replaces the first.
    fn register(&self, app: Arc<dyn WebApp>);

    /// Removes the application registered under `authority`; subsequent
    /// dispatches to it fail as unreachable.
    fn unregister(&self, authority: &str);

    /// Dispatches `req` from the party labelled `from` to the application
    /// registered under the request URL's authority, synchronously
    /// returning its response (or a classified transport failure).
    fn dispatch(&self, from: &str, req: Request) -> Response;

    /// Dispatches a batch of independent requests, returning one response
    /// per request in input order. Semantically identical to calling
    /// [`Transport::dispatch`] once per request — same responses, same
    /// message accounting — which is exactly what the default
    /// implementation (and [`SimNet`](crate::net::SimNet)) does.
    ///
    /// Backends with real per-round-trip costs may override it to spend
    /// less wall clock on the same work:
    /// [`HttpTransport`](crate::httpnet::HttpTransport) pipelines each
    /// per-authority group over its one persistent connection (one
    /// buffered write carrying N requests, then N responses read back),
    /// so a flush of N queued messages costs one syscall pair instead of
    /// N serialized round trips. Callers must only batch requests that
    /// are independent of each other (no request may depend on an earlier
    /// one's effects *through a different authority's handler*) — batch
    /// flushes and push fan-outs qualify; redirect chains do not.
    fn dispatch_pipelined(&self, from: &str, reqs: Vec<Request>) -> Vec<Response> {
        reqs.into_iter()
            .map(|req| self.dispatch(from, req))
            .collect()
    }

    /// The shared logical clock (token lifetimes, cache TTLs, backoff).
    fn clock(&self) -> &SimClock;

    /// The shared protocol trace recorder.
    fn trace(&self) -> &TraceRecorder;

    /// A snapshot of the exact message statistics.
    fn stats(&self) -> NetStats;

    /// Zeroes the message statistics (clock and trace untouched).
    fn reset_stats(&self);
}
