//! HTTP-like request/response messages exchanged over the [`SimNet`].
//!
//! [`SimNet`]: crate::net::SimNet

use std::collections::BTreeMap;
use std::fmt;

use crate::url::Url;

/// An HTTP request method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Method {
    /// Read a resource.
    Get,
    /// Create a resource or submit a form.
    Post,
    /// Replace a resource.
    Put,
    /// Remove a resource.
    Delete,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
        };
        f.write_str(s)
    }
}

/// An HTTP response status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Status {
    /// 200 — success.
    Ok,
    /// 201 — resource created.
    Created,
    /// 202 — accepted for asynchronous processing (pending consent, §V.D).
    Accepted,
    /// 204 — success, no body.
    NoContent,
    /// 302 — redirect to the `Location` header (drives the paper's
    /// browser-redirect protocol steps).
    Found,
    /// 400 — malformed request.
    BadRequest,
    /// 401 — authentication or authorization token required.
    Unauthorized,
    /// 402 — payment claim required (claims extension, §VII).
    PaymentRequired,
    /// 403 — access denied by policy.
    Forbidden,
    /// 404 — no such resource.
    NotFound,
    /// 409 — conflicting state.
    Conflict,
    /// 503 — the contacted application is unreachable.
    Unavailable,
}

impl Status {
    /// Returns the numeric status code.
    #[must_use]
    pub fn code(self) -> u16 {
        match self {
            Status::Ok => 200,
            Status::Created => 201,
            Status::Accepted => 202,
            Status::NoContent => 204,
            Status::Found => 302,
            Status::BadRequest => 400,
            Status::Unauthorized => 401,
            Status::PaymentRequired => 402,
            Status::Forbidden => 403,
            Status::NotFound => 404,
            Status::Conflict => 409,
            Status::Unavailable => 503,
        }
    }

    /// Parses a numeric status code back into the enum (inverse of
    /// [`Status::code`]); `None` for codes the protocol never uses.
    #[must_use]
    pub fn from_code(code: u16) -> Option<Self> {
        Some(match code {
            200 => Status::Ok,
            201 => Status::Created,
            202 => Status::Accepted,
            204 => Status::NoContent,
            302 => Status::Found,
            400 => Status::BadRequest,
            401 => Status::Unauthorized,
            402 => Status::PaymentRequired,
            403 => Status::Forbidden,
            404 => Status::NotFound,
            409 => Status::Conflict,
            503 => Status::Unavailable,
            _ => return None,
        })
    }

    /// The canonical reason phrase for the HTTP/1.1 status line.
    #[must_use]
    pub fn reason(self) -> &'static str {
        match self {
            Status::Ok => "OK",
            Status::Created => "Created",
            Status::Accepted => "Accepted",
            Status::NoContent => "No Content",
            Status::Found => "Found",
            Status::BadRequest => "Bad Request",
            Status::Unauthorized => "Unauthorized",
            Status::PaymentRequired => "Payment Required",
            Status::Forbidden => "Forbidden",
            Status::NotFound => "Not Found",
            Status::Conflict => "Conflict",
            Status::Unavailable => "Service Unavailable",
        }
    }

    /// Returns `true` for 2xx statuses.
    #[must_use]
    pub fn is_success(self) -> bool {
        matches!(
            self,
            Status::Ok | Status::Created | Status::Accepted | Status::NoContent
        )
    }

    /// Returns `true` for the redirect status.
    #[must_use]
    pub fn is_redirect(self) -> bool {
        self == Status::Found
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// Transport-level failure classification attached by the network fabric.
///
/// Both kinds surface as `503 Unavailable` to keep the HTTP shape of the
/// simulation unchanged, but the retry layer (and tests) need to tell a
/// *partition* from a *slow or lossy path*: an unreachable authority is
/// detected immediately (connection refused), whereas a lost message
/// costs the caller a full attempt timeout before it can give up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportError {
    /// The authority is unknown or partitioned away — the failure is
    /// detected immediately, without waiting.
    Unreachable,
    /// The request (or its response) was lost in transit — the caller
    /// only learns of the failure by timing out.
    Timeout,
}

impl TransportError {
    /// The `x-error-kind` header value for this kind.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            TransportError::Unreachable => "unreachable",
            TransportError::Timeout => "timeout",
        }
    }
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An HTTP-like request.
///
/// Query parameters from the URL and form/body parameters are merged into a
/// single parameter map ([`Request::param`]), which is how the simulated
/// applications read protocol fields.
///
/// # Example
///
/// ```
/// use ucam_webenv::{Method, Request};
///
/// let req = Request::new(Method::Post, "https://am.example/token")
///     .with_param("realm", "photos")
///     .with_header("x-requester", "printer.example");
/// assert_eq!(req.param("realm"), Some("photos"));
/// assert_eq!(req.header("x-requester"), Some("printer.example"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method.
    pub method: Method,
    /// The target URL.
    pub url: Url,
    /// Header fields (lower-case names).
    pub headers: BTreeMap<String, String>,
    /// Form parameters (merged with URL query by [`Request::param`]).
    pub form: BTreeMap<String, String>,
    /// Raw request body (JSON for REST endpoints).
    pub body: String,
}

impl Request {
    /// Creates a request for `url`.
    ///
    /// # Panics
    ///
    /// Panics if `url` does not parse; use [`Request::to_url`] with an
    /// already-parsed [`Url`] for dynamic input.
    #[must_use]
    pub fn new(method: Method, url: &str) -> Self {
        Request::to_url(method, url.parse().expect("static request URL must parse"))
    }

    /// Creates a request for an already-parsed URL.
    #[must_use]
    pub fn to_url(method: Method, url: Url) -> Self {
        Request {
            method,
            url,
            headers: BTreeMap::new(),
            form: BTreeMap::new(),
            body: String::new(),
        }
    }

    /// Returns the parameter `key`, checking form fields first, then the URL
    /// query string.
    #[must_use]
    pub fn param(&self, key: &str) -> Option<&str> {
        self.form
            .get(key)
            .map(String::as_str)
            .or_else(|| self.url.query(key))
    }

    /// Returns the header `key` (case-sensitive, use lower-case).
    #[must_use]
    pub fn header(&self, key: &str) -> Option<&str> {
        self.headers.get(key).map(String::as_str)
    }

    /// Returns the bearer token from the `authorization` header, if present.
    ///
    /// # Example
    ///
    /// ```
    /// use ucam_webenv::{Method, Request};
    /// let req = Request::new(Method::Get, "https://h.example/r")
    ///     .with_header("authorization", "Bearer abc.def");
    /// assert_eq!(req.bearer_token(), Some("abc.def"));
    /// ```
    #[must_use]
    pub fn bearer_token(&self) -> Option<&str> {
        self.header("authorization")?.strip_prefix("Bearer ")
    }

    /// Adds a form parameter.
    #[must_use]
    pub fn with_param(mut self, key: &str, value: &str) -> Self {
        self.form.insert(key.to_owned(), value.to_owned());
        self
    }

    /// Adds a header field.
    #[must_use]
    pub fn with_header(mut self, key: &str, value: &str) -> Self {
        self.headers.insert(key.to_owned(), value.to_owned());
        self
    }

    /// Sets the authorization header to `Bearer <token>`.
    #[must_use]
    pub fn with_bearer(self, token: &str) -> Self {
        self.with_header("authorization", &format!("Bearer {token}"))
    }

    /// Sets the raw body.
    #[must_use]
    pub fn with_body(mut self, body: impl Into<String>) -> Self {
        self.body = body.into();
        self
    }

    /// Returns the session cookie attached to this request, if any.
    #[must_use]
    pub fn cookie(&self, name: &str) -> Option<&str> {
        let cookies = self.header("cookie")?;
        cookies.split("; ").find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == name).then_some(v)
        })
    }
}

/// An HTTP-like response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The response status.
    pub status: Status,
    /// Header fields (lower-case names).
    pub headers: BTreeMap<String, String>,
    /// Response body (HTML placeholder text or JSON).
    pub body: String,
}

impl Response {
    /// Creates a response with the given status and empty body.
    #[must_use]
    pub fn with_status(status: Status) -> Self {
        Response {
            status,
            headers: BTreeMap::new(),
            body: String::new(),
        }
    }

    /// Creates a `200 OK` response.
    #[must_use]
    pub fn ok() -> Self {
        Response::with_status(Status::Ok)
    }

    /// Creates a `302 Found` redirect to `location`.
    #[must_use]
    pub fn redirect(location: &Url) -> Self {
        Response::with_status(Status::Found).with_header("location", &location.to_string())
    }

    /// Creates a `404 Not Found` response with a short explanation.
    #[must_use]
    pub fn not_found(what: &str) -> Self {
        Response::with_status(Status::NotFound).with_body(format!("not found: {what}"))
    }

    /// Creates a `400 Bad Request` response with a short explanation.
    #[must_use]
    pub fn bad_request(why: &str) -> Self {
        Response::with_status(Status::BadRequest).with_body(format!("bad request: {why}"))
    }

    /// Creates a `403 Forbidden` response.
    #[must_use]
    pub fn forbidden(why: &str) -> Self {
        Response::with_status(Status::Forbidden).with_body(format!("forbidden: {why}"))
    }

    /// Returns the header `key`.
    #[must_use]
    pub fn header(&self, key: &str) -> Option<&str> {
        self.headers.get(key).map(String::as_str)
    }

    /// Returns the parsed redirect target, if this is a redirect.
    #[must_use]
    pub fn location(&self) -> Option<Url> {
        if !self.status.is_redirect() {
            return None;
        }
        self.header("location")?.parse().ok()
    }

    /// Adds a header field.
    #[must_use]
    pub fn with_header(mut self, key: &str, value: &str) -> Self {
        self.headers.insert(key.to_owned(), value.to_owned());
        self
    }

    /// Sets the body.
    #[must_use]
    pub fn with_body(mut self, body: impl Into<String>) -> Self {
        self.body = body.into();
        self
    }

    /// Adds a `set-cookie` header establishing a session cookie.
    #[must_use]
    pub fn with_cookie(self, name: &str, value: &str) -> Self {
        self.with_header("set-cookie", &format!("{name}={value}"))
    }

    /// Attaches a transport-error classification (`x-error-kind` header).
    ///
    /// Set by the network fabric on synthesized `503` responses so callers
    /// can distinguish a partition from a lost message.
    #[must_use]
    pub fn with_transport_error(self, kind: TransportError) -> Self {
        self.with_header("x-error-kind", kind.as_str())
    }

    /// Returns the transport-error classification, if the fabric attached
    /// one. `None` means the response came from a real application — even
    /// an application-level `503` is **not** a transport error and must
    /// not be retried blindly.
    #[must_use]
    pub fn transport_error(&self) -> Option<TransportError> {
        match self.header("x-error-kind")? {
            "unreachable" => Some(TransportError::Unreachable),
            "timeout" => Some(TransportError::Timeout),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_codes() {
        assert_eq!(Status::Ok.code(), 200);
        assert_eq!(Status::Found.code(), 302);
        assert_eq!(Status::PaymentRequired.code(), 402);
        assert!(Status::Created.is_success());
        assert!(!Status::Forbidden.is_success());
        assert!(Status::Found.is_redirect());
    }

    #[test]
    fn status_from_code_roundtrips() {
        for status in [
            Status::Ok,
            Status::Created,
            Status::Accepted,
            Status::NoContent,
            Status::Found,
            Status::BadRequest,
            Status::Unauthorized,
            Status::PaymentRequired,
            Status::Forbidden,
            Status::NotFound,
            Status::Conflict,
            Status::Unavailable,
        ] {
            assert_eq!(Status::from_code(status.code()), Some(status));
            assert!(!status.reason().is_empty());
        }
        assert_eq!(Status::from_code(500), None);
        assert_eq!(Status::from_code(0), None);
    }

    #[test]
    fn param_prefers_form_over_query() {
        let req = Request::new(Method::Post, "https://h.example/p?k=query").with_param("k", "form");
        assert_eq!(req.param("k"), Some("form"));
    }

    #[test]
    fn param_falls_back_to_query() {
        let req = Request::new(Method::Get, "https://h.example/p?k=query");
        assert_eq!(req.param("k"), Some("query"));
        assert_eq!(req.param("missing"), None);
    }

    #[test]
    fn bearer_token_parsing() {
        let req = Request::new(Method::Get, "https://h.example/r").with_bearer("tok123");
        assert_eq!(req.bearer_token(), Some("tok123"));
        let plain = Request::new(Method::Get, "https://h.example/r");
        assert_eq!(plain.bearer_token(), None);
        let wrong = Request::new(Method::Get, "https://h.example/r")
            .with_header("authorization", "Basic abc");
        assert_eq!(wrong.bearer_token(), None);
    }

    #[test]
    fn cookie_parsing() {
        let req = Request::new(Method::Get, "https://h.example/r")
            .with_header("cookie", "sid=abc; other=def");
        assert_eq!(req.cookie("sid"), Some("abc"));
        assert_eq!(req.cookie("other"), Some("def"));
        assert_eq!(req.cookie("none"), None);
    }

    #[test]
    fn redirect_location_roundtrip() {
        let target = Url::new("am.example", "/authorize").with_query("realm", "r1");
        let resp = Response::redirect(&target);
        assert_eq!(resp.location(), Some(target));
    }

    #[test]
    fn location_absent_for_non_redirect() {
        assert_eq!(Response::ok().location(), None);
    }

    #[test]
    fn method_display() {
        assert_eq!(Method::Get.to_string(), "GET");
        assert_eq!(Method::Delete.to_string(), "DELETE");
    }

    #[test]
    fn transport_error_roundtrip() {
        let resp = Response::with_status(Status::Unavailable)
            .with_transport_error(TransportError::Unreachable);
        assert_eq!(resp.transport_error(), Some(TransportError::Unreachable));
        let timeout = Response::with_status(Status::Unavailable)
            .with_transport_error(TransportError::Timeout);
        assert_eq!(timeout.transport_error(), Some(TransportError::Timeout));
        // Application responses — even 503s — carry no transport classification.
        assert_eq!(
            Response::with_status(Status::Unavailable).transport_error(),
            None
        );
        assert_eq!(Response::ok().transport_error(), None);
    }

    #[test]
    fn helper_constructors() {
        assert_eq!(Response::not_found("x").status, Status::NotFound);
        assert_eq!(Response::bad_request("y").status, Status::BadRequest);
        assert_eq!(Response::forbidden("z").status, Status::Forbidden);
        assert!(Response::forbidden("z").body.contains('z'));
    }
}
