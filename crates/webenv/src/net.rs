//! The in-memory network connecting all simulated Web applications.
//!
//! `SimNet` is the workspace's substitute for the public Internet of the
//! paper's deployment (Java prototype on Google App Engine). Applications
//! register under an authority; any party dispatches [`Request`]s to an
//! authority and receives a [`Response`] synchronously. Each dispatch:
//!
//! 1. records the request and response in the shared [`TraceRecorder`]
//!    (lazily — labels are never built while tracing is disabled),
//! 2. increments per-edge message counters in [`NetStats`],
//! 3. charges the configured [`LatencyModel`] (one hop each way) to the
//!    shared [`SimClock`].
//!
//! Applications may themselves call back into the network while handling a
//! request (e.g. a Host querying its Authorization Manager for a decision,
//! Fig. 6) — nested dispatch is explicitly supported.
//!
//! Failure injection: [`SimNet::set_offline`] makes an authority unreachable
//! (responses become `503 Unavailable`), which the test suite uses to probe
//! Host behaviour when the AM is down. Richer fault shapes build on the
//! same paths: [`SimNet::set_flap`] drives clock-scheduled transient
//! outages, [`SimNet::set_loss_every`] drops every n-th message, and
//! [`SimNet::set_burst_loss`] drops whole seeded windows of traffic.
//! Every fabric-synthesized failure carries a [`TransportError`]
//! classification (`x-error-kind` header) so callers can tell a partition
//! ([`TransportError::Unreachable`]) from a lost message
//! ([`TransportError::Timeout`]).
//!
//! # Concurrency model (DESIGN.md §9)
//!
//! Dispatch is the hot path of every experiment, so it acquires **no
//! shared lock** when tracing and loss injection are off:
//!
//! * the routing table, latency model and offline set live in one
//!   immutable [`ConfigSnapshot`] behind a generation stamp; each thread
//!   caches the current snapshot and revalidates it with a single atomic
//!   load, so registration churn never stalls in-flight dispatches;
//! * statistics land in per-thread **stat shards** (relaxed atomics plus
//!   a thread-keyed edge map) that are only aggregated when
//!   [`SimNet::stats`] takes a snapshot;
//! * the loss model is an atomic counter — the no-loss path performs one
//!   relaxed load and no read-modify-write.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::clock::SimClock;
use crate::http::{Request, Response, Status, TransportError};
use crate::latency::{splitmix64, LatencyModel};
use crate::trace::{TraceKind, TraceRecorder};
use crate::transport::Transport;

/// A Web application addressable on a [`Transport`] backend (the
/// in-process [`SimNet`] or the loopback-TCP
/// [`HttpTransport`](crate::httpnet::HttpTransport)).
pub trait WebApp: Send + Sync {
    /// The authority (host name) this application is registered under,
    /// e.g. `"webpics.example"`.
    fn authority(&self) -> &str;

    /// Handles one request. Implementations may dispatch further requests
    /// through `net` (nested calls are supported on both backends).
    fn handle(&self, net: &dyn Transport, req: &Request) -> Response;
}

/// Aggregate message statistics collected by the network.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Number of request/response round trips dispatched.
    pub round_trips: u64,
    /// Round trips per directed (from, to) edge.
    pub per_edge: std::collections::BTreeMap<(String, String), u64>,
    /// Total modelled latency charged to the clock, in milliseconds.
    pub modelled_latency_ms: u64,
    /// Total payload bytes carried (request bodies + response bodies +
    /// header values) — the modelled bandwidth cost.
    pub payload_bytes: u64,
    /// Exact serialized size of every *successful* round trip, as the
    /// canonical HTTP/1.1 codec frames it ([`crate::codec`]): request
    /// head + body plus response head + body. Failed dispatches (the
    /// fabric's synthesized 503s) contribute nothing, which is what
    /// keeps this counter bit-identical across backends — failure
    /// bodies are backend-specific, healthy messages are not.
    pub bytes_on_wire: u64,
}

impl NetStats {
    /// Total messages on the wire (each round trip is two messages).
    #[must_use]
    pub fn messages(&self) -> u64 {
        self.round_trips * 2
    }

    /// Round trips sent from `from` to `to`.
    #[must_use]
    pub fn edge(&self, from: &str, to: &str) -> u64 {
        self.per_edge
            .get(&(from.to_owned(), to.to_owned()))
            .copied()
            .unwrap_or(0)
    }
}

/// Number of stat shards. A power of two so a thread's slot is a mask.
const STAT_SHARDS: usize = 16;

/// Slots a thread keeps in its snapshot cache before evicting the oldest.
const CONFIG_CACHE_SLOTS: usize = 8;

/// One cell of the sharded statistics. Threads are assigned a shard
/// round-robin on first dispatch, so under up to [`STAT_SHARDS`] threads
/// every cell — including its edge-map mutex — is effectively
/// thread-private and a dispatch commit never contends.
#[derive(Default)]
struct StatShard {
    round_trips: AtomicU64,
    payload_bytes: AtomicU64,
    bytes_on_wire: AtomicU64,
    /// Committed *after* `round_trips` (Release) and read *before* it
    /// (Acquire), so a [`SimNet::stats`] snapshot can never observe
    /// latency charged for a round trip it has not counted yet.
    modelled_latency_ms: AtomicU64,
    /// Two-level `from -> to -> count` map so the warm path can bump an
    /// existing edge with borrowed keys (no per-dispatch allocation).
    per_edge: Mutex<HashMap<String, HashMap<String, u64>>>,
}

impl StatShard {
    /// Increments the `(from, to)` edge counter, allocating owned keys
    /// only the first time an edge is seen.
    fn bump_edge(&self, from: &str, to: &str) {
        let mut per_edge = self.per_edge.lock();
        if let Some(inner) = per_edge.get_mut(from) {
            if let Some(count) = inner.get_mut(to) {
                *count += 1;
                return;
            }
            inner.insert(to.to_owned(), 1);
            return;
        }
        per_edge
            .entry(from.to_owned())
            .or_default()
            .insert(to.to_owned(), 1);
    }
}

/// A clock-driven transient-outage schedule for one authority: within
/// every `period_ms` window (shifted by `phase_ms`), the authority is
/// down for the first `down_ms` milliseconds and up for the rest.
///
/// Purely a function of the shared [`SimClock`], so flap behaviour is
/// deterministic and replayable: the same access sequence against the
/// same clock observes the same outages.
///
/// # Example
///
/// ```
/// use ucam_webenv::FlapSchedule;
///
/// let flap = FlapSchedule { period_ms: 100, down_ms: 30, phase_ms: 0 };
/// assert!(flap.is_down_at(0));
/// assert!(flap.is_down_at(29));
/// assert!(!flap.is_down_at(30));
/// assert!(flap.is_down_at(100));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlapSchedule {
    /// Length of one up/down cycle in milliseconds.
    pub period_ms: u64,
    /// Milliseconds at the start of each cycle during which the
    /// authority is unreachable. Must be below `period_ms` for the
    /// authority to ever come back up.
    pub down_ms: u64,
    /// Shifts the cycle so multiple authorities need not flap in phase.
    pub phase_ms: u64,
}

impl FlapSchedule {
    /// Returns `true` when the schedule has the authority down at
    /// `now_ms`. A zero `period_ms` or `down_ms` never flaps.
    #[must_use]
    pub fn is_down_at(&self, now_ms: u64) -> bool {
        if self.period_ms == 0 || self.down_ms == 0 {
            return false;
        }
        (now_ms + self.phase_ms) % self.period_ms < self.down_ms
    }
}

/// The immutable routing/latency/offline configuration, swapped wholesale
/// on every mutation and revalidated by readers with one atomic load.
#[derive(Clone, Default)]
struct ConfigSnapshot {
    apps: HashMap<String, Arc<dyn WebApp>>,
    latency: LatencyModel,
    offline: HashSet<String>,
    /// Clock-driven transient-outage schedules per authority. The clock
    /// is only consulted when this map is non-empty, keeping the
    /// steady-state dispatch path unchanged.
    flaps: HashMap<String, FlapSchedule>,
}

/// Source of unique network ids for the per-thread snapshot cache.
static NEXT_NET_ID: AtomicU64 = AtomicU64::new(1);
/// Round-robin source of per-thread stat-shard slots.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's stat-shard slot (assigned on first dispatch).
    static SHARD_IDX: Cell<usize> = const { Cell::new(usize::MAX) };
    /// Cached `(net id, generation, snapshot)` triples, newest last.
    static CONFIG_CACHE: RefCell<Vec<(u64, u64, Arc<ConfigSnapshot>)>> =
        const { RefCell::new(Vec::new()) };
}

fn shard_index() -> usize {
    SHARD_IDX.with(|slot| {
        let mut idx = slot.get();
        if idx == usize::MAX {
            idx = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) & (STAT_SHARDS - 1);
            slot.set(idx);
        }
        idx
    })
}

/// The in-memory network. See the [module documentation](self).
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use ucam_webenv::{Method, Request, Response, SimNet, Status, Transport, WebApp};
///
/// struct Ping;
/// impl WebApp for Ping {
///     fn authority(&self) -> &str { "ping.example" }
///     fn handle(&self, _net: &dyn Transport, _req: &Request) -> Response {
///         Response::ok().with_body("pong")
///     }
/// }
///
/// let net = SimNet::new();
/// net.register(Arc::new(Ping));
/// let resp = net.dispatch("tester", Request::new(Method::Get, "https://ping.example/"));
/// assert_eq!(resp.status, Status::Ok);
/// assert_eq!(net.stats().round_trips, 1);
/// ```
pub struct SimNet {
    /// Globally unique id keying the per-thread snapshot cache.
    id: u64,
    config: Mutex<Arc<ConfigSnapshot>>,
    /// Bumped (under the `config` lock) on every configuration change.
    config_gen: AtomicU64,
    clock: SimClock,
    trace: TraceRecorder,
    shards: [StatShard; STAT_SHARDS],
    /// Loss model: every `loss_period`-th dispatch (counting from the
    /// `loss_offset`-th) is dropped; `loss_period == 0` disables.
    loss_period: AtomicU64,
    loss_offset: AtomicU64,
    loss_dispatched: AtomicU64,
    /// Burst-loss model: dispatches are grouped into windows of
    /// `burst_window` consecutive dispatches; a seeded draw per window
    /// decides whether the *whole* window is dropped. `burst_window == 0`
    /// disables.
    burst_window: AtomicU64,
    burst_prob_pct: AtomicU64,
    burst_seed: AtomicU64,
    /// Counts read-modify-write operations on the loss state performed by
    /// dispatches — the regression guard proving the loss-off fast path
    /// never touches writable loss state (it must stay zero while no loss
    /// model is configured).
    loss_write_ops: AtomicU64,
}

impl std::fmt::Debug for SimNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimNet")
            .field("apps", &self.config.lock().apps.keys().collect::<Vec<_>>())
            .field("clock_ms", &self.clock.now_ms())
            .finish_non_exhaustive()
    }
}

impl Default for SimNet {
    fn default() -> Self {
        SimNet::new()
    }
}

impl SimNet {
    /// Creates an empty network with a zero-latency model and a fresh clock.
    #[must_use]
    pub fn new() -> Self {
        SimNet {
            id: NEXT_NET_ID.fetch_add(1, Ordering::Relaxed),
            config: Mutex::new(Arc::new(ConfigSnapshot::default())),
            config_gen: AtomicU64::new(0),
            clock: SimClock::new(),
            trace: TraceRecorder::new(),
            shards: std::array::from_fn(|_| StatShard::default()),
            loss_period: AtomicU64::new(0),
            loss_offset: AtomicU64::new(0),
            loss_dispatched: AtomicU64::new(0),
            burst_window: AtomicU64::new(0),
            burst_prob_pct: AtomicU64::new(0),
            burst_seed: AtomicU64::new(0),
            loss_write_ops: AtomicU64::new(0),
        }
    }

    /// Registers an application under its [`WebApp::authority`]. A second
    /// registration for the same authority replaces the first.
    pub fn register(&self, app: Arc<dyn WebApp>) {
        self.update_config(|config| {
            config.apps.insert(app.authority().to_owned(), app);
        });
    }

    /// Removes the application registered under `authority`.
    pub fn unregister(&self, authority: &str) {
        self.update_config(|config| {
            config.apps.remove(authority);
        });
    }

    /// Returns the shared simulated clock.
    #[must_use]
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Returns the shared protocol trace recorder.
    #[must_use]
    pub fn trace(&self) -> &TraceRecorder {
        &self.trace
    }

    /// Replaces the latency model.
    pub fn set_latency(&self, model: LatencyModel) {
        self.update_config(|config| config.latency = model);
    }

    /// Injects deterministic message loss: every `period`-th dispatch
    /// (counting from the `offset`-th) fails with `503 Unavailable`
    /// without reaching the application. Pass `period = 0` to disable.
    ///
    /// # Panics
    ///
    /// Panics when `offset >= period` (for a non-zero period).
    pub fn set_loss_every(&self, period: u64, offset: u64) {
        if period == 0 {
            self.loss_period.store(0, Ordering::Release);
            return;
        }
        assert!(offset < period, "offset must be below period");
        self.loss_dispatched.store(0, Ordering::Relaxed);
        self.loss_offset.store(offset, Ordering::Relaxed);
        // Published last, so a dispatch that observes the new period also
        // observes the reset counter and offset.
        self.loss_period.store(period, Ordering::Release);
    }

    /// Injects seeded burst loss: dispatches are grouped into consecutive
    /// windows of `window` dispatches, and each window is dropped in its
    /// entirety with probability `prob_pct`% — decided by a deterministic
    /// draw from `seed` and the window index, so a given seed always drops
    /// the same windows. Models correlated outages (a congested queue, a
    /// dying link) rather than independent per-message loss. Pass
    /// `window = 0` to disable.
    ///
    /// # Panics
    ///
    /// Panics when `prob_pct > 100`.
    pub fn set_burst_loss(&self, window: u64, prob_pct: u64, seed: u64) {
        if window == 0 {
            self.burst_window.store(0, Ordering::Release);
            return;
        }
        assert!(prob_pct <= 100, "prob_pct must be at most 100");
        self.loss_dispatched.store(0, Ordering::Relaxed);
        self.burst_prob_pct.store(prob_pct, Ordering::Relaxed);
        self.burst_seed.store(seed, Ordering::Relaxed);
        // Published last, so a dispatch that observes the new window also
        // observes the reset counter, probability and seed.
        self.burst_window.store(window, Ordering::Release);
    }

    /// Schedules clock-driven transient outages (flapping) for
    /// `authority`, or clears the schedule with `None`. While the shared
    /// clock sits inside a down-phase of the schedule, dispatches to the
    /// authority fail exactly like [`SimNet::set_offline`] — `503` with an
    /// [`TransportError::Unreachable`] classification.
    pub fn set_flap(&self, authority: &str, schedule: Option<FlapSchedule>) {
        self.update_config(|config| match schedule {
            Some(s) => {
                config.flaps.insert(authority.to_owned(), s);
            }
            None => {
                config.flaps.remove(authority);
            }
        });
    }

    /// Number of read-modify-write operations dispatches have performed on
    /// the loss-injection state. Stays at zero while no loss model is
    /// configured — the no-loss fast path is read-only (regression guard
    /// for the old behaviour of taking a write lock on every dispatch).
    #[must_use]
    pub fn loss_write_ops(&self) -> u64 {
        self.loss_write_ops.load(Ordering::Relaxed)
    }

    /// Marks `authority` unreachable (`offline = true`) or reachable again.
    pub fn set_offline(&self, authority: &str, offline: bool) {
        self.update_config(|config| {
            if offline {
                config.offline.insert(authority.to_owned());
            } else {
                config.offline.remove(authority);
            }
        });
    }

    /// Returns a snapshot of the message statistics.
    ///
    /// The snapshot is internally consistent in one direction: it never
    /// reports modelled latency for a round trip it does not count (each
    /// dispatch commits its round trip before its latency, and the
    /// snapshot reads them in the opposite order).
    #[must_use]
    pub fn stats(&self) -> NetStats {
        let mut out = NetStats::default();
        for shard in &self.shards {
            // Acquire on latency pairs with the Release in the dispatch
            // commit: everything committed before the latency we read —
            // in particular the matching round trips — is visible below.
            out.modelled_latency_ms += shard.modelled_latency_ms.load(Ordering::Acquire);
            out.round_trips += shard.round_trips.load(Ordering::Relaxed);
            out.payload_bytes += shard.payload_bytes.load(Ordering::Relaxed);
            out.bytes_on_wire += shard.bytes_on_wire.load(Ordering::Relaxed);
            for (from, inner) in shard.per_edge.lock().iter() {
                for (to, count) in inner {
                    *out.per_edge.entry((from.clone(), to.clone())).or_insert(0) += count;
                }
            }
        }
        out
    }

    /// Zeroes the message statistics (the trace and clock are untouched).
    pub fn reset_stats(&self) {
        for shard in &self.shards {
            shard.per_edge.lock().clear();
            shard.round_trips.store(0, Ordering::Relaxed);
            shard.payload_bytes.store(0, Ordering::Relaxed);
            shard.bytes_on_wire.store(0, Ordering::Relaxed);
            shard.modelled_latency_ms.store(0, Ordering::Release);
        }
    }

    /// Dispatches `req` from the party labelled `from` to the application
    /// registered under the request URL's authority.
    ///
    /// Unknown or offline authorities yield `503 Unavailable` — the caller
    /// sees the same signal a browser would see for an unreachable site.
    pub fn dispatch(&self, from: &str, req: Request) -> Response {
        let to = req.url.authority();
        self.trace.record_with(from, to, TraceKind::Request, || {
            format!(
                "{} {}{}",
                req.method,
                req.url.path(),
                summarize_params(&req)
            )
        });
        let config = self.config();
        let mut latency_ms = self.charge(&config, from, to);

        let request_bytes = message_bytes(&req.body, req.headers.values())
            + req.form.values().map(String::len).sum::<usize>();

        let app = config.apps.get(to).cloned();
        let offline = (!config.offline.is_empty() && config.offline.contains(to))
            || (!config.flaps.is_empty()
                && config
                    .flaps
                    .get(to)
                    .is_some_and(|f| f.is_down_at(self.clock.now_ms())));
        let dropped = self.loss_draw();

        let resp = match app {
            _ if dropped => Response::with_status(Status::Unavailable)
                .with_body("message lost in transit".to_owned())
                .with_transport_error(TransportError::Timeout),
            Some(app) if !offline => app.handle(self, &req),
            _ => Response::with_status(Status::Unavailable)
                .with_body(format!("unreachable authority: {to}"))
                .with_transport_error(TransportError::Unreachable),
        };

        latency_ms += self.charge(&config, to, from);
        self.trace
            .record_with(from, to, TraceKind::Response, || match resp.location() {
                Some(loc) => format!("{} -> {}", resp.status, loc.authority()),
                None => resp.status.to_string(),
            });

        // Single per-dispatch commit into this thread's stat shard. The
        // round trip is published before its latency so a concurrent
        // `stats()` snapshot never sees latency lead the trip count.
        let response_bytes = message_bytes(&resp.body, resp.headers.values());
        let shard = &self.shards[shard_index()];
        shard.bump_edge(from, to);
        shard
            .payload_bytes
            .fetch_add((request_bytes + response_bytes) as u64, Ordering::Relaxed);
        if resp.transport_error().is_none() {
            // Arithmetic twins of the codec encoders — the exact bytes
            // this round trip would occupy (does occupy, on the HTTP
            // backend) on the wire, without serializing anything.
            let wire =
                crate::codec::request_wire_len(from, &req) + crate::codec::response_wire_len(&resp);
            shard
                .bytes_on_wire
                .fetch_add(wire as u64, Ordering::Relaxed);
        }
        shard.round_trips.fetch_add(1, Ordering::Relaxed);
        if latency_ms > 0 {
            shard
                .modelled_latency_ms
                .fetch_add(latency_ms, Ordering::Release);
        }

        resp
    }

    /// Advances the clock by the modelled latency of one hop and returns
    /// the charged milliseconds (accumulated into the dispatch commit).
    fn charge(&self, config: &ConfigSnapshot, from: &str, to: &str) -> u64 {
        let ms = config.latency.latency_ms(from, to);
        if ms > 0 {
            self.clock.advance_ms(ms);
        }
        ms
    }

    /// Draws the loss decision for this dispatch. Read-only (two atomic
    /// loads, no read-modify-write) while no loss model is configured.
    fn loss_draw(&self) -> bool {
        let period = self.loss_period.load(Ordering::Acquire);
        let window = self.burst_window.load(Ordering::Acquire);
        if period == 0 && window == 0 {
            return false;
        }
        self.loss_write_ops.fetch_add(1, Ordering::Relaxed);
        let n = self.loss_dispatched.fetch_add(1, Ordering::Relaxed);
        if period != 0 && n % period == self.loss_offset.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(burst) = n.checked_div(window) {
            let prob = self.burst_prob_pct.load(Ordering::Relaxed);
            let seed = self.burst_seed.load(Ordering::Relaxed);
            return splitmix64(seed ^ burst) % 100 < prob;
        }
        false
    }

    /// Returns the current configuration snapshot, revalidating this
    /// thread's cached copy with one atomic generation load. Only a
    /// generation mismatch (or a cold cache) touches the config lock.
    fn config(&self) -> Arc<ConfigSnapshot> {
        let gen = self.config_gen.load(Ordering::Acquire);
        CONFIG_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some(slot) = cache.iter_mut().find(|(id, _, _)| *id == self.id) {
                if slot.1 != gen {
                    let (fresh_gen, snapshot) = self.load_config();
                    slot.1 = fresh_gen;
                    slot.2 = snapshot;
                }
                return slot.2.clone();
            }
            let (fresh_gen, snapshot) = self.load_config();
            if cache.len() >= CONFIG_CACHE_SLOTS {
                cache.remove(0);
            }
            cache.push((self.id, fresh_gen, snapshot.clone()));
            snapshot
        })
    }

    /// Reads the `(generation, snapshot)` pair consistently (the
    /// generation only changes under the config lock).
    fn load_config(&self) -> (u64, Arc<ConfigSnapshot>) {
        let guard = self.config.lock();
        (self.config_gen.load(Ordering::Relaxed), Arc::clone(&guard))
    }

    /// Applies a configuration change by swapping in a fresh snapshot and
    /// bumping the generation, so readers revalidate on their next
    /// dispatch without ever blocking on this lock.
    fn update_config(&self, f: impl FnOnce(&mut ConfigSnapshot)) {
        let mut guard = self.config.lock();
        let mut next = ConfigSnapshot::clone(&guard);
        f(&mut next);
        *guard = Arc::new(next);
        self.config_gen.fetch_add(1, Ordering::Release);
    }
}

/// [`SimNet`] is the deterministic [`Transport`] backend: the trait
/// methods forward to the inherent ones, so existing call sites keep
/// their concrete types while protocol code takes `&dyn Transport`.
impl Transport for SimNet {
    fn name(&self) -> &'static str {
        "sim"
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn register(&self, app: Arc<dyn WebApp>) {
        SimNet::register(self, app);
    }
    fn unregister(&self, authority: &str) {
        SimNet::unregister(self, authority);
    }
    fn dispatch(&self, from: &str, req: Request) -> Response {
        SimNet::dispatch(self, from, req)
    }
    fn clock(&self) -> &SimClock {
        SimNet::clock(self)
    }
    fn trace(&self) -> &TraceRecorder {
        SimNet::trace(self)
    }
    fn stats(&self) -> NetStats {
        SimNet::stats(self)
    }
    fn reset_stats(&self) {
        SimNet::reset_stats(self);
    }
}

/// Sums the modelled size of a message: body plus header values.
pub(crate) fn message_bytes<'a>(body: &str, headers: impl Iterator<Item = &'a String>) -> usize {
    body.len() + headers.map(String::len).sum::<usize>()
}

/// Summarizes interesting request parameters for trace labels. Only ever
/// called from inside a lazy trace label, so a trace-off dispatch never
/// pays for these allocations.
pub(crate) fn summarize_params(req: &Request) -> String {
    const INTERESTING: [&str; 6] = ["realm", "resource", "requester", "am", "action", "decision"];
    let mut parts = Vec::new();
    for key in INTERESTING {
        if let Some(v) = req.param(key) {
            parts.push(format!("{key}={v}"));
        }
    }
    if req.bearer_token().is_some() {
        parts.push("bearer".to_owned());
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!(" [{}]", parts.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Method;

    struct Echo {
        authority: String,
    }

    impl WebApp for Echo {
        fn authority(&self) -> &str {
            &self.authority
        }
        fn handle(&self, _net: &dyn Transport, req: &Request) -> Response {
            Response::ok().with_body(req.url.path().to_owned())
        }
    }

    /// An app that calls another app while handling a request — exercises
    /// nested dispatch (Host -> AM decision query of Fig. 6).
    struct Proxy;

    impl WebApp for Proxy {
        fn authority(&self) -> &str {
            "proxy.example"
        }
        fn handle(&self, net: &dyn Transport, _req: &Request) -> Response {
            net.dispatch(
                self.authority(),
                Request::new(Method::Get, "https://echo.example/inner"),
            )
        }
    }

    fn echo_net() -> SimNet {
        let net = SimNet::new();
        net.register(Arc::new(Echo {
            authority: "echo.example".to_owned(),
        }));
        net
    }

    #[test]
    fn dispatch_reaches_app() {
        let net = echo_net();
        let resp = net.dispatch(
            "tester",
            Request::new(Method::Get, "https://echo.example/p"),
        );
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.body, "/p");
    }

    #[test]
    fn unknown_authority_is_unavailable() {
        let net = SimNet::new();
        let resp = net.dispatch(
            "tester",
            Request::new(Method::Get, "https://ghost.example/"),
        );
        assert_eq!(resp.status, Status::Unavailable);
        assert!(resp.body.contains("ghost.example"));
    }

    #[test]
    fn offline_authority_is_unavailable() {
        let net = echo_net();
        net.set_offline("echo.example", true);
        let resp = net.dispatch(
            "tester",
            Request::new(Method::Get, "https://echo.example/p"),
        );
        assert_eq!(resp.status, Status::Unavailable);
        net.set_offline("echo.example", false);
        let resp = net.dispatch(
            "tester",
            Request::new(Method::Get, "https://echo.example/p"),
        );
        assert_eq!(resp.status, Status::Ok);
    }

    #[test]
    fn nested_dispatch_works() {
        let net = echo_net();
        net.register(Arc::new(Proxy));
        let resp = net.dispatch(
            "tester",
            Request::new(Method::Get, "https://proxy.example/"),
        );
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.body, "/inner");
        // Two round trips: tester->proxy and proxy->echo.
        assert_eq!(net.stats().round_trips, 2);
        assert_eq!(net.stats().edge("proxy.example", "echo.example"), 1);
    }

    #[test]
    fn stats_count_messages_and_edges() {
        let net = echo_net();
        for _ in 0..3 {
            net.dispatch(
                "tester",
                Request::new(Method::Get, "https://echo.example/p"),
            );
        }
        let stats = net.stats();
        assert_eq!(stats.round_trips, 3);
        assert_eq!(stats.messages(), 6);
        assert_eq!(stats.edge("tester", "echo.example"), 3);
        assert_eq!(stats.edge("echo.example", "tester"), 0);
    }

    #[test]
    fn loss_injection_is_deterministic_and_clearable() {
        let net = echo_net();
        // Drop every 3rd dispatch starting with the first (offset 0).
        net.set_loss_every(3, 0);
        let statuses: Vec<u16> = (0..6)
            .map(|_| {
                net.dispatch(
                    "tester",
                    Request::new(Method::Get, "https://echo.example/p"),
                )
                .status
                .code()
            })
            .collect();
        assert_eq!(statuses, vec![503, 200, 200, 503, 200, 200]);
        net.set_loss_every(0, 0);
        let resp = net.dispatch(
            "tester",
            Request::new(Method::Get, "https://echo.example/p"),
        );
        assert_eq!(resp.status, Status::Ok);
    }

    #[test]
    fn disabled_loss_model_is_read_only() {
        let net = echo_net();
        for _ in 0..10 {
            net.dispatch(
                "tester",
                Request::new(Method::Get, "https://echo.example/p"),
            );
        }
        assert_eq!(
            net.loss_write_ops(),
            0,
            "the no-loss fast path must not write loss state"
        );
        // With a model configured, dispatches do write the counter…
        net.set_loss_every(5, 1);
        net.dispatch(
            "tester",
            Request::new(Method::Get, "https://echo.example/p"),
        );
        assert_eq!(net.loss_write_ops(), 1);
        // …and disabling makes the path read-only again.
        net.set_loss_every(0, 0);
        for _ in 0..10 {
            net.dispatch(
                "tester",
                Request::new(Method::Get, "https://echo.example/p"),
            );
        }
        assert_eq!(net.loss_write_ops(), 1);
    }

    #[test]
    #[should_panic(expected = "offset must be below period")]
    fn loss_offset_validated() {
        SimNet::new().set_loss_every(2, 2);
    }

    #[test]
    fn fabric_failures_carry_transport_classification() {
        let net = echo_net();
        // Unknown authority: detected immediately -> Unreachable.
        let resp = net.dispatch(
            "tester",
            Request::new(Method::Get, "https://ghost.example/"),
        );
        assert_eq!(resp.transport_error(), Some(TransportError::Unreachable));
        // Offline (partitioned) authority: Unreachable.
        net.set_offline("echo.example", true);
        let resp = net.dispatch(
            "tester",
            Request::new(Method::Get, "https://echo.example/p"),
        );
        assert_eq!(resp.transport_error(), Some(TransportError::Unreachable));
        net.set_offline("echo.example", false);
        // Lost message: only detectable by waiting -> Timeout.
        net.set_loss_every(1, 0);
        let resp = net.dispatch(
            "tester",
            Request::new(Method::Get, "https://echo.example/p"),
        );
        assert_eq!(resp.transport_error(), Some(TransportError::Timeout));
        net.set_loss_every(0, 0);
        // A healthy application response carries no classification.
        let resp = net.dispatch(
            "tester",
            Request::new(Method::Get, "https://echo.example/p"),
        );
        assert_eq!(resp.transport_error(), None);
    }

    #[test]
    fn flap_schedule_follows_the_clock() {
        let net = echo_net();
        net.set_flap(
            "echo.example",
            Some(FlapSchedule {
                period_ms: 100,
                down_ms: 30,
                phase_ms: 0,
            }),
        );
        let get = || {
            net.dispatch(
                "tester",
                Request::new(Method::Get, "https://echo.example/p"),
            )
        };
        // Clock at 0: inside the down phase.
        let resp = get();
        assert_eq!(resp.status, Status::Unavailable);
        assert_eq!(resp.transport_error(), Some(TransportError::Unreachable));
        // Advance past the down phase: reachable again, no config change.
        net.clock().advance_ms(50);
        assert_eq!(get().status, Status::Ok);
        // Next cycle: down again.
        net.clock().advance_ms(60); // now at 110
        assert_eq!(get().status, Status::Unavailable);
        // Clearing the schedule heals immediately.
        net.set_flap("echo.example", None);
        assert_eq!(get().status, Status::Ok);
    }

    #[test]
    fn burst_loss_is_windowed_seeded_and_deterministic() {
        let run = |seed: u64| -> Vec<u16> {
            let net = echo_net();
            net.set_burst_loss(4, 50, seed);
            (0..32)
                .map(|_| {
                    net.dispatch(
                        "tester",
                        Request::new(Method::Get, "https://echo.example/p"),
                    )
                    .status
                    .code()
                })
                .collect()
        };
        let a = run(7);
        assert_eq!(a, run(7), "same seed must replay the same drops");
        assert!(a.contains(&503), "seed 7 should drop at least one window");
        assert!(a.contains(&200), "seed 7 should pass at least one window");
        // Losses come in whole windows of 4: every window is uniform.
        for w in a.chunks(4) {
            assert!(w.iter().all(|&s| s == w[0]), "window not uniform: {w:?}");
        }
        // Disabling restores service.
        let net = echo_net();
        net.set_burst_loss(4, 100, 1);
        assert_eq!(
            net.dispatch(
                "tester",
                Request::new(Method::Get, "https://echo.example/p")
            )
            .status,
            Status::Unavailable
        );
        net.set_burst_loss(0, 0, 0);
        assert_eq!(
            net.dispatch(
                "tester",
                Request::new(Method::Get, "https://echo.example/p")
            )
            .status,
            Status::Ok
        );
    }

    #[test]
    fn payload_bytes_accounted() {
        let net = echo_net();
        net.dispatch(
            "tester",
            Request::new(Method::Post, "https://echo.example/path").with_body("12345"),
        );
        let stats = net.stats();
        // Request body (5) + response body ("/path" = 5) at minimum.
        assert!(stats.payload_bytes >= 10, "{}", stats.payload_bytes);
    }

    #[test]
    fn latency_charged_both_ways() {
        let net = echo_net();
        net.set_latency(LatencyModel::constant(10));
        net.dispatch(
            "tester",
            Request::new(Method::Get, "https://echo.example/p"),
        );
        assert_eq!(net.clock().now_ms(), 20);
        assert_eq!(net.stats().modelled_latency_ms, 20);
    }

    #[test]
    fn trace_records_request_and_response() {
        let net = echo_net();
        net.dispatch(
            "tester",
            Request::new(Method::Get, "https://echo.example/p"),
        );
        let events = net.trace().events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, TraceKind::Request);
        assert!(events[0].label.contains("GET /p"));
        assert_eq!(events[1].kind, TraceKind::Response);
    }

    #[test]
    fn trace_label_includes_interesting_params() {
        let net = echo_net();
        net.dispatch(
            "tester",
            Request::new(Method::Get, "https://echo.example/p")
                .with_param("realm", "r1")
                .with_bearer("tok"),
        );
        let label = &net.trace().events()[0].label;
        assert!(label.contains("realm=r1"), "{label}");
        assert!(label.contains("bearer"), "{label}");
    }

    #[test]
    fn disabled_trace_records_nothing_on_dispatch() {
        let net = echo_net();
        net.trace().set_enabled(false);
        net.dispatch(
            "tester",
            Request::new(Method::Get, "https://echo.example/p"),
        );
        assert!(net.trace().is_empty());
        net.trace().set_enabled(true);
        net.dispatch(
            "tester",
            Request::new(Method::Get, "https://echo.example/p"),
        );
        assert_eq!(net.trace().len(), 2);
    }

    #[test]
    fn reset_stats_clears_counts() {
        let net = echo_net();
        net.dispatch(
            "tester",
            Request::new(Method::Get, "https://echo.example/p"),
        );
        net.reset_stats();
        assert_eq!(net.stats(), NetStats::default());
    }

    #[test]
    fn reregistration_replaces() {
        let net = echo_net();
        net.register(Arc::new(Echo {
            authority: "echo.example".to_owned(),
        }));
        let resp = net.dispatch(
            "tester",
            Request::new(Method::Get, "https://echo.example/x"),
        );
        assert_eq!(resp.status, Status::Ok);
        net.unregister("echo.example");
        let resp = net.dispatch(
            "tester",
            Request::new(Method::Get, "https://echo.example/x"),
        );
        assert_eq!(resp.status, Status::Unavailable);
    }

    #[test]
    fn registration_churn_is_visible_to_cached_readers() {
        // The same thread's cached snapshot must be revalidated across
        // register/unregister/set_offline/set_latency mutations.
        let net = echo_net();
        for round in 0..5 {
            let resp = net.dispatch(
                "tester",
                Request::new(Method::Get, "https://echo.example/p"),
            );
            assert_eq!(resp.status, Status::Ok, "round {round}");
            net.unregister("echo.example");
            let resp = net.dispatch(
                "tester",
                Request::new(Method::Get, "https://echo.example/p"),
            );
            assert_eq!(resp.status, Status::Unavailable, "round {round}");
            net.register(Arc::new(Echo {
                authority: "echo.example".to_owned(),
            }));
        }
    }

    #[test]
    fn many_nets_on_one_thread_stay_isolated() {
        // More nets than snapshot-cache slots: eviction must not leak
        // routing between networks.
        let nets: Vec<SimNet> = (0..CONFIG_CACHE_SLOTS + 3)
            .map(|i| {
                let net = SimNet::new();
                net.register(Arc::new(Echo {
                    authority: format!("echo-{i}.example"),
                }));
                net
            })
            .collect();
        for (i, net) in nets.iter().enumerate() {
            let resp = net.dispatch(
                "tester",
                Request::new(Method::Get, &format!("https://echo-{i}.example/p")),
            );
            assert_eq!(resp.status, Status::Ok, "net {i}");
            let other = (i + 1) % nets.len();
            let resp = net.dispatch(
                "tester",
                Request::new(Method::Get, &format!("https://echo-{other}.example/p")),
            );
            assert_eq!(
                resp.status,
                Status::Unavailable,
                "net {i} must not route {other}"
            );
        }
    }

    #[test]
    fn multithreaded_stats_are_exact() {
        const THREADS: usize = 8;
        const DISPATCHES: usize = 200;
        let net = Arc::new(echo_net());
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let net = Arc::clone(&net);
            handles.push(std::thread::spawn(move || {
                for _ in 0..DISPATCHES {
                    let resp = net.dispatch(
                        "tester",
                        Request::new(Method::Post, "https://echo.example/pp").with_body("xyz"),
                    );
                    assert_eq!(resp.status, Status::Ok);
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        let stats = net.stats();
        let total = (THREADS * DISPATCHES) as u64;
        assert_eq!(stats.round_trips, total);
        assert_eq!(stats.edge("tester", "echo.example"), total);
        // Body "xyz" (3) + response body "/pp" (3) per dispatch.
        assert_eq!(stats.payload_bytes, total * 6);
    }

    #[test]
    fn snapshot_latency_never_leads_round_trips() {
        const THREADS: usize = 4;
        const DISPATCHES: usize = 300;
        const HOP_MS: u64 = 7;
        let net = Arc::new(echo_net());
        net.set_latency(LatencyModel::constant(HOP_MS));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let net = Arc::clone(&net);
            handles.push(std::thread::spawn(move || {
                for _ in 0..DISPATCHES {
                    net.dispatch(
                        "tester",
                        Request::new(Method::Get, "https://echo.example/p"),
                    );
                }
            }));
        }
        // Snapshot storm: latency charged may lag the counted trips (one
        // in-flight dispatch per thread) but must never lead them.
        let snapshotter = {
            let net = Arc::clone(&net);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let stats = net.stats();
                    assert!(
                        stats.modelled_latency_ms <= stats.round_trips * 2 * HOP_MS,
                        "latency {} leads round trips {}",
                        stats.modelled_latency_ms,
                        stats.round_trips
                    );
                }
            })
        };
        for handle in handles {
            handle.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        snapshotter.join().unwrap();

        let stats = net.stats();
        let total = (THREADS * DISPATCHES) as u64;
        assert_eq!(stats.round_trips, total);
        assert_eq!(stats.modelled_latency_ms, total * 2 * HOP_MS);
    }
}
