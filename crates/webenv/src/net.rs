//! The in-memory network connecting all simulated Web applications.
//!
//! `SimNet` is the workspace's substitute for the public Internet of the
//! paper's deployment (Java prototype on Google App Engine). Applications
//! register under an authority; any party dispatches [`Request`]s to an
//! authority and receives a [`Response`] synchronously. Each dispatch:
//!
//! 1. records the request and response in the shared [`TraceRecorder`],
//! 2. increments per-edge message counters in [`NetStats`],
//! 3. charges the configured [`LatencyModel`] (one hop each way) to the
//!    shared [`SimClock`].
//!
//! Applications may themselves call back into the network while handling a
//! request (e.g. a Host querying its Authorization Manager for a decision,
//! Fig. 6) — nested dispatch is explicitly supported.
//!
//! Failure injection: [`SimNet::set_offline`] makes an authority unreachable
//! (responses become `503 Unavailable`), which the test suite uses to probe
//! Host behaviour when the AM is down.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::clock::SimClock;
use crate::http::{Request, Response, Status};
use crate::latency::LatencyModel;
use crate::trace::{TraceKind, TraceRecorder};

/// A simulated Web application addressable on the [`SimNet`].
pub trait WebApp: Send + Sync {
    /// The authority (host name) this application is registered under,
    /// e.g. `"webpics.example"`.
    fn authority(&self) -> &str;

    /// Handles one request. Implementations may dispatch further requests
    /// through `net` (nested calls are supported).
    fn handle(&self, net: &SimNet, req: &Request) -> Response;
}

/// Aggregate message statistics collected by the network.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Number of request/response round trips dispatched.
    pub round_trips: u64,
    /// Round trips per directed (from, to) edge.
    pub per_edge: BTreeMap<(String, String), u64>,
    /// Total modelled latency charged to the clock, in milliseconds.
    pub modelled_latency_ms: u64,
    /// Total payload bytes carried (request bodies + response bodies +
    /// header values) — the modelled bandwidth cost.
    pub payload_bytes: u64,
}

impl NetStats {
    /// Total messages on the wire (each round trip is two messages).
    #[must_use]
    pub fn messages(&self) -> u64 {
        self.round_trips * 2
    }

    /// Round trips sent from `from` to `to`.
    #[must_use]
    pub fn edge(&self, from: &str, to: &str) -> u64 {
        self.per_edge
            .get(&(from.to_owned(), to.to_owned()))
            .copied()
            .unwrap_or(0)
    }
}

/// The in-memory network. See the [module documentation](self).
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use ucam_webenv::{Method, Request, Response, SimNet, Status, WebApp};
///
/// struct Ping;
/// impl WebApp for Ping {
///     fn authority(&self) -> &str { "ping.example" }
///     fn handle(&self, _net: &SimNet, _req: &Request) -> Response {
///         Response::ok().with_body("pong")
///     }
/// }
///
/// let net = SimNet::new();
/// net.register(Arc::new(Ping));
/// let resp = net.dispatch("tester", Request::new(Method::Get, "https://ping.example/"));
/// assert_eq!(resp.status, Status::Ok);
/// assert_eq!(net.stats().round_trips, 1);
/// ```
pub struct SimNet {
    apps: RwLock<HashMap<String, Arc<dyn WebApp>>>,
    clock: SimClock,
    latency: RwLock<LatencyModel>,
    trace: TraceRecorder,
    stats: Mutex<NetStats>,
    offline: RwLock<HashSet<String>>,
    /// Deterministic message-loss injection: every n-th dispatch fails.
    loss: RwLock<Option<LossModel>>,
}

/// Deterministic loss: drops one request out of every `period`, starting
/// with the `offset`-th. Deterministic so failure tests are reproducible.
#[derive(Debug, Clone, Copy)]
struct LossModel {
    period: u64,
    offset: u64,
    dispatched: u64,
}

impl std::fmt::Debug for SimNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimNet")
            .field("apps", &self.apps.read().keys().collect::<Vec<_>>())
            .field("clock_ms", &self.clock.now_ms())
            .finish_non_exhaustive()
    }
}

impl Default for SimNet {
    fn default() -> Self {
        SimNet::new()
    }
}

impl SimNet {
    /// Creates an empty network with a zero-latency model and a fresh clock.
    #[must_use]
    pub fn new() -> Self {
        SimNet {
            apps: RwLock::new(HashMap::new()),
            clock: SimClock::new(),
            latency: RwLock::new(LatencyModel::zero()),
            trace: TraceRecorder::new(),
            stats: Mutex::new(NetStats::default()),
            offline: RwLock::new(HashSet::new()),
            loss: RwLock::new(None),
        }
    }

    /// Registers an application under its [`WebApp::authority`]. A second
    /// registration for the same authority replaces the first.
    pub fn register(&self, app: Arc<dyn WebApp>) {
        self.apps.write().insert(app.authority().to_owned(), app);
    }

    /// Removes the application registered under `authority`.
    pub fn unregister(&self, authority: &str) {
        self.apps.write().remove(authority);
    }

    /// Returns the shared simulated clock.
    #[must_use]
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Returns the shared protocol trace recorder.
    #[must_use]
    pub fn trace(&self) -> &TraceRecorder {
        &self.trace
    }

    /// Replaces the latency model.
    pub fn set_latency(&self, model: LatencyModel) {
        *self.latency.write() = model;
    }

    /// Injects deterministic message loss: every `period`-th dispatch
    /// (counting from the `offset`-th) fails with `503 Unavailable`
    /// without reaching the application. Pass `period = 0` to disable.
    ///
    /// # Panics
    ///
    /// Panics when `offset >= period` (for a non-zero period).
    pub fn set_loss_every(&self, period: u64, offset: u64) {
        if period == 0 {
            *self.loss.write() = None;
            return;
        }
        assert!(offset < period, "offset must be below period");
        *self.loss.write() = Some(LossModel {
            period,
            offset,
            dispatched: 0,
        });
    }

    /// Marks `authority` unreachable (`offline = true`) or reachable again.
    pub fn set_offline(&self, authority: &str, offline: bool) {
        let mut set = self.offline.write();
        if offline {
            set.insert(authority.to_owned());
        } else {
            set.remove(authority);
        }
    }

    /// Returns a snapshot of the message statistics.
    #[must_use]
    pub fn stats(&self) -> NetStats {
        self.stats.lock().clone()
    }

    /// Zeroes the message statistics (the trace and clock are untouched).
    pub fn reset_stats(&self) {
        *self.stats.lock() = NetStats::default();
    }

    /// Dispatches `req` from the party labelled `from` to the application
    /// registered under the request URL's authority.
    ///
    /// Unknown or offline authorities yield `503 Unavailable` — the caller
    /// sees the same signal a browser would see for an unreachable site.
    pub fn dispatch(&self, from: &str, req: Request) -> Response {
        let to = req.url.authority().to_owned();
        let label = format!(
            "{} {}{}",
            req.method,
            req.url.path(),
            summarize_params(&req)
        );
        self.trace.record(from, &to, &label, TraceKind::Request);
        self.charge(from, &to);

        let request_bytes = message_bytes(&req.body, req.headers.values())
            + req.form.values().map(String::len).sum::<usize>();

        let app = {
            let apps = self.apps.read();
            apps.get(&to).cloned()
        };
        let offline = self.offline.read().contains(&to);
        let dropped = {
            let mut loss = self.loss.write();
            match loss.as_mut() {
                Some(model) => {
                    let n = model.dispatched;
                    model.dispatched += 1;
                    n % model.period == model.offset
                }
                None => false,
            }
        };

        let resp = match app {
            _ if dropped => Response::with_status(Status::Unavailable)
                .with_body("message lost in transit".to_owned()),
            Some(app) if !offline => app.handle(self, &req),
            _ => Response::with_status(Status::Unavailable)
                .with_body(format!("unreachable authority: {to}")),
        };

        self.charge(&to, from);
        let resp_label = match resp.location() {
            Some(loc) => format!("{} -> {}", resp.status, loc.authority()),
            None => resp.status.to_string(),
        };
        self.trace
            .record(from, &to, &resp_label, TraceKind::Response);

        let response_bytes = message_bytes(&resp.body, resp.headers.values());
        let mut stats = self.stats.lock();
        stats.round_trips += 1;
        stats.payload_bytes += (request_bytes + response_bytes) as u64;
        *stats.per_edge.entry((from.to_owned(), to)).or_insert(0) += 1;

        resp
    }

    fn charge(&self, from: &str, to: &str) {
        let ms = self.latency.read().latency_ms(from, to);
        if ms > 0 {
            self.clock.advance_ms(ms);
            self.stats.lock().modelled_latency_ms += ms;
        }
    }
}

/// Sums the modelled size of a message: body plus header values.
fn message_bytes<'a>(body: &str, headers: impl Iterator<Item = &'a String>) -> usize {
    body.len() + headers.map(String::len).sum::<usize>()
}

/// Summarizes interesting request parameters for trace labels.
fn summarize_params(req: &Request) -> String {
    const INTERESTING: [&str; 6] = ["realm", "resource", "requester", "am", "action", "decision"];
    let mut parts = Vec::new();
    for key in INTERESTING {
        if let Some(v) = req.param(key) {
            parts.push(format!("{key}={v}"));
        }
    }
    if req.bearer_token().is_some() {
        parts.push("bearer".to_owned());
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!(" [{}]", parts.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Method;

    struct Echo {
        authority: String,
    }

    impl WebApp for Echo {
        fn authority(&self) -> &str {
            &self.authority
        }
        fn handle(&self, _net: &SimNet, req: &Request) -> Response {
            Response::ok().with_body(req.url.path().to_owned())
        }
    }

    /// An app that calls another app while handling a request — exercises
    /// nested dispatch (Host -> AM decision query of Fig. 6).
    struct Proxy;

    impl WebApp for Proxy {
        fn authority(&self) -> &str {
            "proxy.example"
        }
        fn handle(&self, net: &SimNet, _req: &Request) -> Response {
            net.dispatch(
                self.authority(),
                Request::new(Method::Get, "https://echo.example/inner"),
            )
        }
    }

    fn echo_net() -> SimNet {
        let net = SimNet::new();
        net.register(Arc::new(Echo {
            authority: "echo.example".to_owned(),
        }));
        net
    }

    #[test]
    fn dispatch_reaches_app() {
        let net = echo_net();
        let resp = net.dispatch(
            "tester",
            Request::new(Method::Get, "https://echo.example/p"),
        );
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.body, "/p");
    }

    #[test]
    fn unknown_authority_is_unavailable() {
        let net = SimNet::new();
        let resp = net.dispatch(
            "tester",
            Request::new(Method::Get, "https://ghost.example/"),
        );
        assert_eq!(resp.status, Status::Unavailable);
        assert!(resp.body.contains("ghost.example"));
    }

    #[test]
    fn offline_authority_is_unavailable() {
        let net = echo_net();
        net.set_offline("echo.example", true);
        let resp = net.dispatch(
            "tester",
            Request::new(Method::Get, "https://echo.example/p"),
        );
        assert_eq!(resp.status, Status::Unavailable);
        net.set_offline("echo.example", false);
        let resp = net.dispatch(
            "tester",
            Request::new(Method::Get, "https://echo.example/p"),
        );
        assert_eq!(resp.status, Status::Ok);
    }

    #[test]
    fn nested_dispatch_works() {
        let net = echo_net();
        net.register(Arc::new(Proxy));
        let resp = net.dispatch(
            "tester",
            Request::new(Method::Get, "https://proxy.example/"),
        );
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.body, "/inner");
        // Two round trips: tester->proxy and proxy->echo.
        assert_eq!(net.stats().round_trips, 2);
        assert_eq!(net.stats().edge("proxy.example", "echo.example"), 1);
    }

    #[test]
    fn stats_count_messages_and_edges() {
        let net = echo_net();
        for _ in 0..3 {
            net.dispatch(
                "tester",
                Request::new(Method::Get, "https://echo.example/p"),
            );
        }
        let stats = net.stats();
        assert_eq!(stats.round_trips, 3);
        assert_eq!(stats.messages(), 6);
        assert_eq!(stats.edge("tester", "echo.example"), 3);
        assert_eq!(stats.edge("echo.example", "tester"), 0);
    }

    #[test]
    fn loss_injection_is_deterministic_and_clearable() {
        let net = echo_net();
        // Drop every 3rd dispatch starting with the first (offset 0).
        net.set_loss_every(3, 0);
        let statuses: Vec<u16> = (0..6)
            .map(|_| {
                net.dispatch(
                    "tester",
                    Request::new(Method::Get, "https://echo.example/p"),
                )
                .status
                .code()
            })
            .collect();
        assert_eq!(statuses, vec![503, 200, 200, 503, 200, 200]);
        net.set_loss_every(0, 0);
        let resp = net.dispatch(
            "tester",
            Request::new(Method::Get, "https://echo.example/p"),
        );
        assert_eq!(resp.status, Status::Ok);
    }

    #[test]
    #[should_panic(expected = "offset must be below period")]
    fn loss_offset_validated() {
        SimNet::new().set_loss_every(2, 2);
    }

    #[test]
    fn payload_bytes_accounted() {
        let net = echo_net();
        net.dispatch(
            "tester",
            Request::new(Method::Post, "https://echo.example/path").with_body("12345"),
        );
        let stats = net.stats();
        // Request body (5) + response body ("/path" = 5) at minimum.
        assert!(stats.payload_bytes >= 10, "{}", stats.payload_bytes);
    }

    #[test]
    fn latency_charged_both_ways() {
        let net = echo_net();
        net.set_latency(LatencyModel::constant(10));
        net.dispatch(
            "tester",
            Request::new(Method::Get, "https://echo.example/p"),
        );
        assert_eq!(net.clock().now_ms(), 20);
        assert_eq!(net.stats().modelled_latency_ms, 20);
    }

    #[test]
    fn trace_records_request_and_response() {
        let net = echo_net();
        net.dispatch(
            "tester",
            Request::new(Method::Get, "https://echo.example/p"),
        );
        let events = net.trace().events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, TraceKind::Request);
        assert!(events[0].label.contains("GET /p"));
        assert_eq!(events[1].kind, TraceKind::Response);
    }

    #[test]
    fn trace_label_includes_interesting_params() {
        let net = echo_net();
        net.dispatch(
            "tester",
            Request::new(Method::Get, "https://echo.example/p")
                .with_param("realm", "r1")
                .with_bearer("tok"),
        );
        let label = &net.trace().events()[0].label;
        assert!(label.contains("realm=r1"), "{label}");
        assert!(label.contains("bearer"), "{label}");
    }

    #[test]
    fn reset_stats_clears_counts() {
        let net = echo_net();
        net.dispatch(
            "tester",
            Request::new(Method::Get, "https://echo.example/p"),
        );
        net.reset_stats();
        assert_eq!(net.stats(), NetStats::default());
    }

    #[test]
    fn reregistration_replaces() {
        let net = echo_net();
        net.register(Arc::new(Echo {
            authority: "echo.example".to_owned(),
        }));
        let resp = net.dispatch(
            "tester",
            Request::new(Method::Get, "https://echo.example/x"),
        );
        assert_eq!(resp.status, Status::Ok);
        net.unregister("echo.example");
        let resp = net.dispatch(
            "tester",
            Request::new(Method::Get, "https://echo.example/x"),
        );
        assert_eq!(resp.status, Status::Unavailable);
    }
}
