//! A real-socket [`Transport`] backend: loopback TCP + HTTP/1.1.
//!
//! `HttpTransport` serves the same [`WebApp`] handlers that run on
//! [`SimNet`](crate::net::SimNet), but over actual sockets. The wire
//! format is owned by the canonical [`codec`](crate::codec) module
//! (DESIGN.md §14); this module is the fast path that moves those bytes
//! (DESIGN.md §15):
//!
//! * **Server**: every registered authority gets its own `127.0.0.1:0`
//!   listener served by a *fixed worker pool* (sized to the machine,
//!   clamped to at most 4 workers) rather than a thread per connection.
//!   Each worker owns the connections it accepted and sweeps them with
//!   non-blocking reads: all complete requests already buffered on a
//!   connection are served back-to-back in one sweep, so a pipelining
//!   client costs one scheduling quantum for N requests instead of N
//!   wake-ups. Idle workers spin down from `yield_now` to capped sleeps,
//!   staying hot under load without burning an idle core.
//! * **Client**: one persistent connection per `(thread, transport,
//!   authority)`, found by a linear scan of a thread-local vector (no
//!   locks, no hashing, no allocation on the warm path), with the read
//!   timeout applied only when it changes. Requests serialize into a
//!   reused thread-local buffer; responses parse out of a reused read
//!   buffer via the codec's borrowed-slice head parser.
//! * **Pipelining**: [`Transport::dispatch_pipelined`] groups a batch by
//!   authority and writes each group's requests as one buffered block on
//!   the persistent connection, then reads the N responses back. Message
//!   accounting and trace events are committed per request, in input
//!   order, exactly as N sequential dispatches would have — batching is
//!   invisible to everything but the wall clock.
//!
//! No external HTTP stack, no async runtime, no new dependencies.
//!
//! # Failure classification
//!
//! The transport maps socket-level failures onto the same
//! `x-error-kind` taxonomy the simulated fabric uses:
//!
//! * connection refused, connection reset, malformed frames, or any
//!   other immediate I/O failure → `503` + [`TransportError::Unreachable`];
//! * a read timeout waiting for the response (hung server) → `503` +
//!   [`TransportError::Timeout`].
//!
//! The server side fails closed: a connection that sends an oversized,
//! malformed, or unparseable message is dropped on the floor, which the
//! client observes (and classifies) as a reset. A worker never panics
//! and never parks itself on a poisoned connection.
//!
//! [`kill_listener`](HttpTransport::kill_listener) and
//! [`set_stall`](HttpTransport::set_stall) exist so tests can produce
//! the two failure kinds deliberately (a dead authority and a hung one)
//! and prove the resilience layer behaves identically over both
//! backends.
//!
//! # What stays deterministic, and what does not
//!
//! Protocol outcomes (decisions, status sequences, epoch visibility,
//! sieve installs) and exact message counts — including the codec-exact
//! `bytes_on_wire` cell — are identical to `SimNet` for failure-free
//! runs; the conformance suite diffs them. Wall-clock timing, thread
//! interleavings and therefore req/s are **not** deterministic; the
//! shared [`SimClock`] is never advanced by this transport, so
//! virtual-time behaviour (token lifetimes, grace windows) stays
//! harness-driven exactly as on `SimNet`.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::clock::SimClock;
use crate::codec;
use crate::http::{Request, Response, Status, TransportError};
use crate::net::{message_bytes, summarize_params, NetStats, WebApp};
use crate::trace::{TraceKind, TraceRecorder};
use crate::transport::Transport;

pub use crate::codec::MAX_MESSAGE_BYTES;

/// How long the client waits for a TCP connect to complete.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(1);

/// Deep-idle poll interval: the longest a worker sleeps between sweeps,
/// and the cadence of the stall-hold loop.
const POLL_INTERVAL: Duration = Duration::from_millis(10);

/// Server-side patience for the *rest* of a message once its first byte
/// has arrived (loopback peers send whole messages at once), and for a
/// back-pressured response write to drain.
const SERVER_READ_TIMEOUT: Duration = Duration::from_secs(5);

/// Most connections a single listener will serve concurrently. Client
/// connections are persistent and bounded by `threads x authorities`,
/// so this is a misbehaving-peer backstop, not a tuning knob.
const MAX_CONNS_PER_LISTENER: usize = 256;

/// Under load a worker only polls for new connections every this many
/// sweeps; an idle worker polls every sweep.
const ACCEPT_EVERY: u64 = 16;

/// How many empty sweeps a worker spends yielding (staying runnable, so
/// the next request is picked up within a scheduler quantum) before it
/// starts sleeping.
const IDLE_YIELD_SWEEPS: u32 = 64;

/// Read granularity for both halves; large enough that every protocol
/// message (epoch sieve pushes aside) arrives in one read.
const READ_CHUNK: usize = 16 * 1024;

/// Most persistent connections one client thread keeps before the cache
/// is reset (a backstop for pathological authority churn).
const CONN_CACHE_CAP: usize = 64;

/// Number of stat shards. A power of two so a thread's slot is a mask.
const STAT_SHARDS: usize = 16;

/// Source of unique transport ids for the per-thread connection cache.
static NEXT_HTTP_ID: AtomicU64 = AtomicU64::new(1);
/// Round-robin source of per-thread stat-shard slots.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

/// A fixed pool bounds server threads regardless of connection count:
/// one worker per available core, at most four per authority. On a
/// single-core host this degenerates to one worker, which is also the
/// best batching configuration there (every ready connection is served
/// back-to-back in one quantum).
fn pool_size() -> usize {
    std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .clamp(1, 4)
}

// ---------------------------------------------------------------------------
// Client state (thread-local; no locks on the warm path)
// ---------------------------------------------------------------------------

/// One persistent client connection. The stream stays in blocking mode
/// with `SO_RCVTIMEO` applied lazily (`set_read_timeout` is a syscall;
/// the timeout rarely changes, so it is re-applied only when it does).
struct ClientConn {
    transport_id: u64,
    authority: String,
    stream: TcpStream,
    applied_timeout_ms: u64,
    /// Read-side reassembly buffer (response bytes accumulate here
    /// until a full message is parsed out and drained).
    buf: Vec<u8>,
}

/// Per-thread client scratch: the connection cache plus the reusable
/// encode/read buffers that make the steady state allocation-free.
struct ClientState {
    conns: Vec<ClientConn>,
    /// One encoded request (reused per dispatch).
    wire: Vec<u8>,
    /// A pipelined group's worth of encoded requests.
    batch: Vec<u8>,
    /// Fixed read chunk (boxed so the thread-local stays small).
    chunk: Box<[u8]>,
}

thread_local! {
    /// This thread's stat-shard slot (assigned on first dispatch).
    static SHARD_IDX: Cell<usize> = const { Cell::new(usize::MAX) };
    /// This thread's persistent connections and codec scratch buffers.
    static CLIENT: RefCell<ClientState> = RefCell::new(ClientState {
        conns: Vec::new(),
        wire: Vec::new(),
        batch: Vec::new(),
        chunk: vec![0u8; READ_CHUNK].into_boxed_slice(),
    });
}

fn shard_index() -> usize {
    SHARD_IDX.with(|slot| {
        let mut idx = slot.get();
        if idx == usize::MAX {
            idx = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) & (STAT_SHARDS - 1);
            slot.set(idx);
        }
        idx
    })
}

// ---------------------------------------------------------------------------
// Sharded statistics (same shape as SimNet's)
// ---------------------------------------------------------------------------

/// One cell of the sharded statistics. Threads are assigned a shard
/// round-robin on first dispatch, so under up to [`STAT_SHARDS`] threads
/// every cell — including its edge-map mutex — is effectively
/// thread-private and a dispatch commit never contends.
#[derive(Default)]
struct StatShard {
    round_trips: AtomicU64,
    payload_bytes: AtomicU64,
    bytes_on_wire: AtomicU64,
    /// Measured wall-clock dispatch time, in microseconds. Surfaced via
    /// [`NetStats::modelled_latency_ms`] — on this backend the
    /// "modelled" latency *is* the measured loopback latency. Committed
    /// *after* `round_trips` (Release) and read *before* it (Acquire),
    /// mirroring `SimNet`'s snapshot ordering.
    wall_us: AtomicU64,
    /// Two-level `from -> to -> count` map so the warm path can bump an
    /// existing edge with borrowed keys (no per-dispatch allocation).
    per_edge: Mutex<HashMap<String, HashMap<String, u64>>>,
}

impl StatShard {
    /// Increments the `(from, to)` edge counter, allocating owned keys
    /// only the first time an edge is seen.
    fn bump_edge(&self, from: &str, to: &str) {
        let mut per_edge = self.per_edge.lock();
        if let Some(inner) = per_edge.get_mut(from) {
            if let Some(count) = inner.get_mut(to) {
                *count += 1;
                return;
            }
            inner.insert(to.to_owned(), 1);
            return;
        }
        let mut inner = HashMap::new();
        inner.insert(to.to_owned(), 1);
        per_edge.insert(from.to_owned(), inner);
    }
}

// ---------------------------------------------------------------------------
// Routes and shutdown
// ---------------------------------------------------------------------------

/// One registered authority: its listener address, its worker pool, and
/// the fault-injection flags the conformance tests flip.
struct Route {
    addr: SocketAddr,
    /// When set, the workers exit (dropping the shared listener, so new
    /// connects are refused) after resetting their connections.
    dead: Arc<AtomicBool>,
    /// When set, workers hold every response until the flag clears —
    /// the client observes a read timeout.
    stall: Arc<AtomicBool>,
    /// Live accepted connections, tracked so a kill can reset them.
    conns: Arc<Mutex<Vec<TcpStream>>>,
    workers: Vec<JoinHandle<()>>,
}

/// The pieces of a [`Route`] needed to tear it down, extracted under
/// the routes lock and completed *after* it is released. Workers take
/// the routes lock themselves while serving nested dispatches, so
/// joining them while holding it would deadlock.
struct RouteShutdown {
    dead: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    workers: Vec<JoinHandle<()>>,
}

fn extract_shutdown(route: &mut Route) -> RouteShutdown {
    RouteShutdown {
        dead: Arc::clone(&route.dead),
        conns: Arc::clone(&route.conns),
        workers: std::mem::take(&mut route.workers),
    }
}

/// Signals the route's workers to exit, resets its live connections and
/// joins the workers. Must be called with the routes lock released.
fn complete_shutdown(shutdown: RouteShutdown) {
    shutdown.dead.store(true, Ordering::Release);
    for conn in shutdown.conns.lock().drain(..) {
        let _ = conn.shutdown(Shutdown::Both);
    }
    let me = std::thread::current().id();
    for worker in shutdown.workers {
        // A worker can itself drop the last transport handle (its nested
        // dispatch clone), running this teardown on a worker thread; it
        // must not join itself — it exits on its own right after.
        if worker.thread().id() != me {
            let _ = worker.join();
        }
    }
}

struct HttpInner {
    id: u64,
    clock: SimClock,
    trace: TraceRecorder,
    routes: Mutex<HashMap<String, Route>>,
    shards: [StatShard; STAT_SHARDS],
    /// How long the client waits for a response before classifying the
    /// authority as hung ([`TransportError::Timeout`]).
    client_timeout_ms: AtomicU64,
}

impl Drop for HttpInner {
    fn drop(&mut self) {
        let routes = std::mem::take(self.routes.get_mut());
        for (_, mut route) in routes {
            complete_shutdown(extract_shutdown(&mut route));
        }
    }
}

/// The loopback-TCP transport. See the [module documentation](self).
///
/// Cloning is cheap and shares the listeners, clock, trace and stats —
/// worker threads clone it to serve nested dispatches.
#[derive(Clone)]
pub struct HttpTransport {
    inner: Arc<HttpInner>,
}

impl Default for HttpTransport {
    fn default() -> Self {
        HttpTransport::new()
    }
}

impl std::fmt::Debug for HttpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpTransport")
            .field(
                "authorities",
                &self.inner.routes.lock().keys().collect::<Vec<_>>(),
            )
            .finish_non_exhaustive()
    }
}

impl HttpTransport {
    /// Creates an empty transport with a fresh clock and no listeners.
    #[must_use]
    pub fn new() -> Self {
        HttpTransport {
            inner: Arc::new(HttpInner {
                id: NEXT_HTTP_ID.fetch_add(1, Ordering::Relaxed),
                clock: SimClock::new(),
                trace: TraceRecorder::new(),
                routes: Mutex::new(HashMap::new()),
                shards: std::array::from_fn(|_| StatShard::default()),
                client_timeout_ms: AtomicU64::new(2000),
            }),
        }
    }

    /// Sets how long a dispatch waits for a response before giving up
    /// with [`TransportError::Timeout`]. Tests that hang a listener
    /// lower this so the failure is observed quickly.
    pub fn set_client_timeout_ms(&self, ms: u64) {
        self.inner
            .client_timeout_ms
            .store(ms.max(1), Ordering::Relaxed);
    }

    /// The socket address `authority`'s listener is bound to, if it is
    /// registered (and not killed).
    #[must_use]
    pub fn listener_addr(&self, authority: &str) -> Option<SocketAddr> {
        let routes = self.inner.routes.lock();
        let route = routes.get(authority)?;
        (!route.dead.load(Ordering::Acquire)).then_some(route.addr)
    }

    /// Kills `authority`'s listener *without* unregistering it: the
    /// worker pool exits (so new connections are refused by the kernel)
    /// and every live connection is reset. Subsequent dispatches fail
    /// with [`TransportError::Unreachable`] — the real-socket
    /// equivalent of [`SimNet::set_offline`](crate::net::SimNet::set_offline).
    pub fn kill_listener(&self, authority: &str) {
        let pending = {
            let mut routes = self.inner.routes.lock();
            routes.get_mut(authority).map(extract_shutdown)
        };
        if let Some(shutdown) = pending {
            complete_shutdown(shutdown);
        }
    }

    /// Makes `authority`'s workers hold (`true`) or release (`false`)
    /// their responses. While stalled, dispatches burn the full client
    /// timeout and fail with [`TransportError::Timeout`] — the
    /// real-socket equivalent of a lost message.
    pub fn set_stall(&self, authority: &str, stalled: bool) {
        let routes = self.inner.routes.lock();
        if let Some(route) = routes.get(authority) {
            route.stall.store(stalled, Ordering::Release);
        }
    }

    /// The registered address for `to`, dead or alive — a killed route
    /// keeps its address so dispatches attempt a real connect and take
    /// the kernel's refusal, exactly like contacting a crashed server.
    fn listener_known_addr(&self, to: &str) -> Option<SocketAddr> {
        self.inner.routes.lock().get(to).map(|r| r.addr)
    }

    /// Opens, configures and caches-or-uses a fresh connection to `to`.
    fn connect_fresh(&self, to: &str, timeout_ms: u64) -> Result<ClientConn, Response> {
        let Some(addr) = self.listener_known_addr(to) else {
            return Err(transport_failure(
                TransportError::Unreachable,
                &format!("unreachable authority: {to}"),
            ));
        };
        let stream = match TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT) {
            Ok(stream) => stream,
            Err(_) => {
                return Err(transport_failure(
                    TransportError::Unreachable,
                    &format!("connection to {to} refused"),
                ));
            }
        };
        let _ = stream.set_nodelay(true);
        let mut conn = ClientConn {
            transport_id: self.inner.id,
            authority: to.to_owned(),
            stream,
            applied_timeout_ms: 0,
            buf: Vec::new(),
        };
        if apply_timeout(&mut conn, timeout_ms).is_err() {
            return Err(transport_failure(
                TransportError::Unreachable,
                &format!("connection to {to} reset"),
            ));
        }
        Ok(conn)
    }

    /// Sends one request to `to`, classifying socket failures. The warm
    /// path — a cached healthy connection — touches no locks at all: it
    /// never consults the route table, and a stale cached connection
    /// (idle-reaped, killed, replaced) falls back to one fresh connect
    /// before a failure is reported.
    fn send(&self, from: &str, to: &str, req: &Request) -> Response {
        CLIENT.with(|state| {
            let mut state = state.borrow_mut();
            let state = &mut *state;
            codec::encode_request_into(&mut state.wire, from, req);
            let timeout_ms = self.inner.client_timeout_ms.load(Ordering::Relaxed);

            if let Some(ix) = cached_ix(&state.conns, self.inner.id, to) {
                let mut conn = state.conns.swap_remove(ix);
                if apply_timeout(&mut conn, timeout_ms).is_ok() {
                    if let Ok(resp) = exchange_one(&mut conn, &state.wire, &mut state.chunk) {
                        cache_conn(&mut state.conns, conn);
                        return resp;
                    }
                }
            }

            let mut conn = match self.connect_fresh(to, timeout_ms) {
                Ok(conn) => conn,
                Err(failure) => return failure,
            };
            match exchange_one(&mut conn, &state.wire, &mut state.chunk) {
                Ok(resp) => {
                    cache_conn(&mut state.conns, conn);
                    resp
                }
                Err(err) if is_timeout(&err) => transport_failure(
                    TransportError::Timeout,
                    &format!("timed out waiting for {to}"),
                ),
                Err(_) => transport_failure(
                    TransportError::Unreachable,
                    &format!("connection to {to} reset"),
                ),
            }
        })
    }

    /// Sends one authority's slice of a pipelined batch: every request
    /// encoded back-to-back into one buffered write, then the responses
    /// read back in order. Returns exactly `ixs.len()` responses.
    ///
    /// Retry rule: a failure on the *cached* connection with **zero**
    /// responses received means a stale keep-alive — the server
    /// processed nothing, so the whole group is retried once on a fresh
    /// connection. Any partial failure (k > 0 responses in) classifies
    /// the remainder without resending: those requests may already have
    /// executed, and the transport never double-dispatches.
    fn send_group(&self, from: &str, to: &str, reqs: &[Request], ixs: &[usize]) -> Vec<Response> {
        CLIENT.with(|state| {
            let mut state = state.borrow_mut();
            let state = &mut *state;
            state.batch.clear();
            for &i in ixs {
                codec::encode_request_into(&mut state.wire, from, &reqs[i]);
                state.batch.extend_from_slice(&state.wire);
            }
            let timeout_ms = self.inner.client_timeout_ms.load(Ordering::Relaxed);
            let n = ixs.len();

            if let Some(ix) = cached_ix(&state.conns, self.inner.id, to) {
                let mut conn = state.conns.swap_remove(ix);
                if apply_timeout(&mut conn, timeout_ms).is_ok() {
                    let (resps, err) = exchange_group(&mut conn, &state.batch, n, &mut state.chunk);
                    match err {
                        None => {
                            cache_conn(&mut state.conns, conn);
                            return resps;
                        }
                        Some(err) if !resps.is_empty() => {
                            return fill_group_failures(resps, &err, to, n);
                        }
                        Some(_) => {} // stale keep-alive: retry the whole group fresh
                    }
                }
            }

            let mut conn = match self.connect_fresh(to, timeout_ms) {
                Ok(conn) => conn,
                Err(failure) => return vec![failure; n],
            };
            let (resps, err) = exchange_group(&mut conn, &state.batch, n, &mut state.chunk);
            match err {
                None => {
                    cache_conn(&mut state.conns, conn);
                    resps
                }
                Some(err) => fill_group_failures(resps, &err, to, n),
            }
        })
    }

    /// Commits one round trip's trace events and statistics, exactly as
    /// both backends account them.
    fn record_round_trip(&self, from: &str, req: &Request, resp: &Response) {
        let to = req.url.authority();
        self.inner
            .trace
            .record_with(from, to, TraceKind::Request, || {
                format!("{} {}{}", req.method, req.url.path(), summarize_params(req))
            });
        self.inner
            .trace
            .record_with(from, to, TraceKind::Response, || match resp.location() {
                Some(loc) => format!("{} -> {}", resp.status, loc.authority()),
                None => resp.status.to_string(),
            });

        let payload = message_bytes(&req.body, req.headers.values())
            + req.form.values().map(String::len).sum::<usize>()
            + message_bytes(&resp.body, resp.headers.values());
        let shard = &self.inner.shards[shard_index()];
        shard.bump_edge(from, to);
        shard
            .payload_bytes
            .fetch_add(payload as u64, Ordering::Relaxed);
        if resp.transport_error().is_none() {
            // Arithmetic twins of the codec encoders — the exact bytes
            // this round trip occupied on the wire, identical to what
            // SimNet accounts for the same messages.
            let wire = codec::request_wire_len(from, req) + codec::response_wire_len(resp);
            shard
                .bytes_on_wire
                .fetch_add(wire as u64, Ordering::Relaxed);
        }
        shard.round_trips.fetch_add(1, Ordering::Relaxed);
    }
}

impl Transport for HttpTransport {
    fn name(&self) -> &'static str {
        "http"
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn register(&self, app: Arc<dyn WebApp>) {
        let authority = app.authority().to_owned();
        let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind loopback listener");
        listener
            .set_nonblocking(true)
            .expect("nonblocking listener");
        let addr = listener.local_addr().expect("listener address");
        let listener = Arc::new(listener);

        let dead = Arc::new(AtomicBool::new(false));
        let stall = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));

        let workers = (0..pool_size())
            .map(|_| {
                let ctx = WorkerCtx {
                    listener: Arc::clone(&listener),
                    app: Arc::clone(&app),
                    inner: Arc::downgrade(&self.inner),
                    dead: Arc::clone(&dead),
                    stall: Arc::clone(&stall),
                    conns: Arc::clone(&conns),
                };
                std::thread::spawn(move || worker_loop(&ctx))
            })
            .collect();

        let old = {
            let mut routes = self.inner.routes.lock();
            routes.insert(
                authority,
                Route {
                    addr,
                    dead,
                    stall,
                    conns,
                    workers,
                },
            )
        };
        if let Some(mut old) = old {
            complete_shutdown(extract_shutdown(&mut old));
        }
    }

    fn unregister(&self, authority: &str) {
        let removed = self.inner.routes.lock().remove(authority);
        if let Some(mut route) = removed {
            complete_shutdown(extract_shutdown(&mut route));
        }
    }

    fn dispatch(&self, from: &str, req: Request) -> Response {
        let to = req.url.authority().to_owned();

        let started = Instant::now();
        let resp = self.send(from, &to, &req);
        let wall_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);

        self.record_round_trip(from, &req, &resp);
        self.inner.shards[shard_index()]
            .wall_us
            .fetch_add(wall_us, Ordering::Release);
        resp
    }

    fn dispatch_pipelined(&self, from: &str, reqs: Vec<Request>) -> Vec<Response> {
        if reqs.len() <= 1 {
            return reqs
                .into_iter()
                .map(|req| self.dispatch(from, req))
                .collect();
        }

        // Group request indices by authority, first-seen order. Batches
        // are small (a flush's worth), so a linear scan beats hashing.
        let mut groups: Vec<(&str, Vec<usize>)> = Vec::new();
        for (i, req) in reqs.iter().enumerate() {
            let to = req.url.authority();
            match groups.iter_mut().find(|(a, _)| *a == to) {
                Some((_, ixs)) => ixs.push(i),
                None => groups.push((to, vec![i])),
            }
        }

        let started = Instant::now();
        let mut slots: Vec<Option<Response>> = Vec::with_capacity(reqs.len());
        slots.resize_with(reqs.len(), || None);
        for (to, ixs) in &groups {
            let resps = self.send_group(from, to, &reqs, ixs);
            for (resp, &i) in resps.into_iter().zip(ixs) {
                slots[i] = Some(resp);
            }
        }
        let wall_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);

        // Trace and account in *input* order — request/response pairs
        // exactly as N sequential dispatches would have emitted them, so
        // the conformance logs and every work-count cell stay identical.
        let mut responses = Vec::with_capacity(reqs.len());
        for (req, slot) in reqs.iter().zip(slots) {
            let resp = slot.expect("one response per pipelined request");
            self.record_round_trip(from, req, &resp);
            responses.push(resp);
        }
        self.inner.shards[shard_index()]
            .wall_us
            .fetch_add(wall_us, Ordering::Release);
        responses
    }

    fn clock(&self) -> &SimClock {
        &self.inner.clock
    }

    fn trace(&self) -> &TraceRecorder {
        &self.inner.trace
    }

    fn stats(&self) -> NetStats {
        let mut out = NetStats::default();
        let mut wall_us = 0u64;
        for shard in &self.inner.shards {
            // Acquire on the wall clock pairs with the Release in the
            // dispatch commit: the matching round trips are visible.
            wall_us += shard.wall_us.load(Ordering::Acquire);
            out.round_trips += shard.round_trips.load(Ordering::Relaxed);
            out.payload_bytes += shard.payload_bytes.load(Ordering::Relaxed);
            out.bytes_on_wire += shard.bytes_on_wire.load(Ordering::Relaxed);
            for (from, inner) in shard.per_edge.lock().iter() {
                for (to, count) in inner {
                    *out.per_edge.entry((from.clone(), to.clone())).or_insert(0) += count;
                }
            }
        }
        out.modelled_latency_ms = wall_us / 1000;
        out
    }

    fn reset_stats(&self) {
        for shard in &self.inner.shards {
            shard.per_edge.lock().clear();
            shard.round_trips.store(0, Ordering::Relaxed);
            shard.payload_bytes.store(0, Ordering::Relaxed);
            shard.bytes_on_wire.store(0, Ordering::Relaxed);
            shard.wall_us.store(0, Ordering::Release);
        }
    }
}

// ---------------------------------------------------------------------------
// Client helpers
// ---------------------------------------------------------------------------

/// Builds the classified `503` for a transport-level failure.
fn transport_failure(kind: TransportError, why: &str) -> Response {
    Response::with_status(Status::Unavailable)
        .with_body(why.to_owned())
        .with_transport_error(kind)
}

fn is_timeout(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn malformed(why: &'static str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, why)
}

/// Position of this thread's cached connection for `(transport, to)`.
fn cached_ix(conns: &[ClientConn], transport_id: u64, to: &str) -> Option<usize> {
    conns
        .iter()
        .position(|c| c.transport_id == transport_id && c.authority == to)
}

/// Returns a healthy connection to the cache. A connection with bytes
/// left in its reassembly buffer is out of sync (the server sent more
/// than was asked for) and is dropped instead.
fn cache_conn(conns: &mut Vec<ClientConn>, conn: ClientConn) {
    if !conn.buf.is_empty() {
        return;
    }
    if conns.len() >= CONN_CACHE_CAP {
        conns.clear();
    }
    conns.push(conn);
}

/// Applies the client read timeout, skipping the syscall when the
/// currently-applied value already matches.
fn apply_timeout(conn: &mut ClientConn, timeout_ms: u64) -> io::Result<()> {
    if conn.applied_timeout_ms != timeout_ms {
        conn.stream
            .set_read_timeout(Some(Duration::from_millis(timeout_ms.max(1))))?;
        conn.applied_timeout_ms = timeout_ms;
    }
    Ok(())
}

/// One blocking read into the reassembly buffer. EOF before a complete
/// response is an error (the peer hung up mid-message).
fn read_more(conn: &mut ClientConn, chunk: &mut [u8]) -> io::Result<()> {
    loop {
        match conn.stream.read(chunk) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed before response",
                ))
            }
            Ok(n) => {
                conn.buf.extend_from_slice(&chunk[..n]);
                return Ok(());
            }
            Err(ref err) if err.kind() == io::ErrorKind::Interrupted => {}
            Err(err) => return Err(err),
        }
    }
}

/// Reads one complete response out of the connection's reassembly
/// buffer, pulling more bytes off the socket as needed, and drains the
/// consumed bytes so pipelined successors parse from a clean front.
fn read_response(conn: &mut ClientConn, chunk: &mut [u8]) -> io::Result<Response> {
    let mut scan_from = 0;
    let head_end = loop {
        if let Some(end) = codec::find_head_end(&conn.buf, scan_from) {
            break end;
        }
        scan_from = conn.buf.len().saturating_sub(3);
        if conn.buf.len() > MAX_MESSAGE_BYTES {
            return Err(malformed("response head too large"));
        }
        read_more(conn, chunk)?;
    };
    // Fast path: head and body already buffered (the usual case when a
    // pipelined peer coalesces its responses) — one parse does it all.
    // Only a body still in flight forces the re-parse after `read_more`
    // invalidates the borrowed head.
    let (resp, consumed) = loop {
        let head = codec::parse_head(&conn.buf[..head_end]).map_err(malformed)?;
        let body_len = head.content_length().map_err(malformed)?;
        if conn.buf.len() < head_end + body_len {
            read_more(conn, chunk)?;
            continue;
        }
        let resp = codec::build_response(&head, &conn.buf[head_end..head_end + body_len])
            .map_err(malformed)?;
        break (resp, head_end + body_len);
    };
    conn.buf.drain(..consumed);
    Ok(resp)
}

/// Writes one encoded request and reads its response.
fn exchange_one(conn: &mut ClientConn, wire: &[u8], chunk: &mut [u8]) -> io::Result<Response> {
    conn.stream.write_all(wire)?;
    read_response(conn, chunk)
}

/// Writes a pipelined group (one buffered block of `n` requests) and
/// reads the `n` responses back. On error, returns every response that
/// made it in before the failure alongside the error.
fn exchange_group(
    conn: &mut ClientConn,
    batch: &[u8],
    n: usize,
    chunk: &mut [u8],
) -> (Vec<Response>, Option<io::Error>) {
    if let Err(err) = conn.stream.write_all(batch) {
        return (Vec::new(), Some(err));
    }
    let mut resps = Vec::with_capacity(n);
    for _ in 0..n {
        match read_response(conn, chunk) {
            Ok(resp) => resps.push(resp),
            Err(err) => return (resps, Some(err)),
        }
    }
    (resps, None)
}

/// Pads a partially-completed group out to `n` responses, classifying
/// the requests that never got an answer from the group's error.
fn fill_group_failures(
    mut resps: Vec<Response>,
    err: &io::Error,
    to: &str,
    n: usize,
) -> Vec<Response> {
    let failure = if is_timeout(err) {
        transport_failure(
            TransportError::Timeout,
            &format!("timed out waiting for {to}"),
        )
    } else {
        transport_failure(
            TransportError::Unreachable,
            &format!("connection to {to} reset"),
        )
    };
    while resps.len() < n {
        resps.push(failure.clone());
    }
    resps
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Everything one worker needs, bundled for the spawn.
struct WorkerCtx {
    listener: Arc<TcpListener>,
    app: Arc<dyn WebApp>,
    inner: Weak<HttpInner>,
    dead: Arc<AtomicBool>,
    stall: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
}

/// One accepted connection as a worker tracks it between sweeps.
struct ServedConn {
    stream: TcpStream,
    /// Request reassembly buffer; complete messages are drained off the
    /// front as they are served.
    buf: Vec<u8>,
    /// Where head scanning resumes (incremental `find_head_end`).
    scan_from: usize,
    /// When a partial message must complete by; `None` while the buffer
    /// is empty (an idle keep-alive connection can sit forever).
    deadline: Option<Instant>,
}

/// Per-worker reusable buffers.
struct WorkerScratch {
    /// Encoded head of the response currently being serialized.
    head: Vec<u8>,
    /// Coalesced response bytes for one sweep: every response the sweep
    /// produces is appended here and flushed in a single write, so a
    /// pipelining client is woken once per stride instead of once per
    /// response. On a loaded single core each server write can preempt
    /// the blocked client into a read that immediately blocks again —
    /// one write per sweep turns that N-switch ping-pong into one
    /// wake-up.
    out: Vec<u8>,
    chunk: Box<[u8]>,
}

enum Sweep {
    /// Bytes moved or requests served this sweep.
    Progress,
    /// Nothing to do on this connection right now.
    Idle,
    /// Hang-up, framing violation, oversize, write failure or deadline:
    /// the connection is dropped (fail closed — the client classifies
    /// the reset).
    Closed,
}

/// The worker: accepts connections from the shared listener and sweeps
/// the ones it owns with non-blocking reads, serving every complete
/// request already buffered back-to-back. Busy workers stay runnable by
/// yielding; idle workers escalate to capped sleeps.
fn worker_loop(ctx: &WorkerCtx) {
    let mut conns: Vec<ServedConn> = Vec::new();
    let mut scratch = WorkerScratch {
        head: Vec::new(),
        out: Vec::new(),
        chunk: vec![0u8; READ_CHUNK].into_boxed_slice(),
    };
    let mut sweep: u64 = 0;
    let mut idle_sweeps: u32 = 0;

    loop {
        if ctx.dead.load(Ordering::Acquire) || ctx.inner.strong_count() == 0 {
            for conn in conns.drain(..) {
                let _ = conn.stream.shutdown(Shutdown::Both);
            }
            return;
        }

        let mut progressed = false;

        // Poll for new connections: every sweep while anything is idle,
        // every ACCEPT_EVERY-th sweep under full load.
        if idle_sweeps > 0 || conns.is_empty() || sweep.is_multiple_of(ACCEPT_EVERY) {
            while let Ok((stream, _peer)) = ctx.listener.accept() {
                if accept_conn(ctx, &mut conns, stream) {
                    progressed = true;
                }
            }
        }
        sweep = sweep.wrapping_add(1);

        let mut i = 0;
        while i < conns.len() {
            match sweep_conn(ctx, &mut conns[i], &mut scratch) {
                Sweep::Progress => {
                    progressed = true;
                    i += 1;
                }
                Sweep::Idle => i += 1,
                Sweep::Closed => {
                    let conn = conns.swap_remove(i);
                    let _ = conn.stream.shutdown(Shutdown::Both);
                }
            }
        }

        if progressed {
            idle_sweeps = 0;
        } else {
            idle_sweeps = idle_sweeps.saturating_add(1);
            if idle_sweeps <= IDLE_YIELD_SWEEPS {
                std::thread::yield_now();
            } else {
                // Escalate 100µs → POLL_INTERVAL, doubling per sweep.
                let over = idle_sweeps - IDLE_YIELD_SWEEPS;
                let us = 100u64 << over.min(7);
                std::thread::sleep(Duration::from_micros(
                    us.min(u64::try_from(POLL_INTERVAL.as_micros()).unwrap_or(u64::MAX)),
                ));
            }
        }
    }
}

/// Admits one accepted connection: non-blocking + NODELAY, tracked on
/// the route's kill list, bounded by [`MAX_CONNS_PER_LISTENER`].
fn accept_conn(ctx: &WorkerCtx, conns: &mut Vec<ServedConn>, stream: TcpStream) -> bool {
    let _ = stream.set_nodelay(true);
    if stream.set_nonblocking(true).is_err() {
        return false;
    }
    {
        let mut live = ctx.conns.lock();
        if live.len() >= MAX_CONNS_PER_LISTENER {
            let _ = stream.shutdown(Shutdown::Both);
            return false;
        }
        if let Ok(clone) = stream.try_clone() {
            live.push(clone);
        }
    }
    conns.push(ServedConn {
        stream,
        buf: Vec::new(),
        scan_from: 0,
        deadline: None,
    });
    true
}

/// One sweep over one connection: drain readable bytes, then serve every
/// complete request sitting in the buffer (a pipelining client's whole
/// group is answered in this one pass).
fn sweep_conn(ctx: &WorkerCtx, conn: &mut ServedConn, scratch: &mut WorkerScratch) -> Sweep {
    let mut read_any = false;
    loop {
        match conn.stream.read(&mut scratch.chunk) {
            Ok(0) => return Sweep::Closed,
            Ok(n) => {
                conn.buf.extend_from_slice(&scratch.chunk[..n]);
                read_any = true;
                if conn.buf.len() > MAX_MESSAGE_BYTES {
                    return Sweep::Closed;
                }
                if n < scratch.chunk.len() {
                    break;
                }
            }
            Err(ref err) if err.kind() == io::ErrorKind::WouldBlock => break,
            Err(ref err) if err.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Sweep::Closed,
        }
    }

    let mut served = false;
    scratch.out.clear();
    loop {
        let Some(head_end) = codec::find_head_end(&conn.buf, conn.scan_from) else {
            conn.scan_from = conn.buf.len().saturating_sub(3);
            break;
        };
        let (from_label, req, body_len) = {
            let Ok(head) = codec::parse_head(&conn.buf[..head_end]) else {
                return Sweep::Closed;
            };
            let Ok(body_len) = head.content_length() else {
                return Sweep::Closed;
            };
            if conn.buf.len() < head_end + body_len {
                // Head complete, body still in flight: scanning may
                // resume from where it stands (the head is re-found in
                // one cheap pass once the body lands).
                break;
            }
            match codec::build_request(&head, &conn.buf[head_end..head_end + body_len]) {
                Ok((from, req)) => (from, req, body_len),
                Err(_) => return Sweep::Closed,
            }
        };
        let _ = from_label; // the envelope label; handlers don't see it
        conn.buf.drain(..head_end + body_len);
        conn.scan_from = 0;
        served = true;

        // Hold the response while stalled (hung-server fault injection).
        while ctx.stall.load(Ordering::Acquire) {
            if ctx.dead.load(Ordering::Acquire) || ctx.inner.strong_count() == 0 {
                return Sweep::Closed;
            }
            std::thread::sleep(POLL_INTERVAL);
        }
        let Some(strong) = ctx.inner.upgrade() else {
            return Sweep::Closed;
        };
        let transport = HttpTransport { inner: strong };
        let resp = ctx.app.handle(&transport, &req);
        drop(transport);
        codec::encode_response_head_into(&mut scratch.head, &resp);
        scratch.out.extend_from_slice(&scratch.head);
        scratch.out.extend_from_slice(resp.body.as_bytes());
    }
    if !scratch.out.is_empty() && write_coalesced(ctx, &mut conn.stream, &scratch.out).is_err() {
        return Sweep::Closed;
    }

    // Partial-message patience: a connection with half a message gets
    // SERVER_READ_TIMEOUT from its last byte, then is dropped.
    if conn.buf.is_empty() {
        conn.deadline = None;
    } else if read_any || conn.deadline.is_none() {
        conn.deadline = Some(Instant::now() + SERVER_READ_TIMEOUT);
    } else if conn
        .deadline
        .is_some_and(|deadline| Instant::now() > deadline)
    {
        return Sweep::Closed;
    }

    if read_any || served {
        Sweep::Progress
    } else {
        Sweep::Idle
    }
}

/// Flushes one sweep's coalesced response bytes in a single write,
/// riding out `WouldBlock` on the non-blocking socket (bounded by
/// [`SERVER_READ_TIMEOUT`]).
fn write_coalesced(ctx: &WorkerCtx, stream: &mut TcpStream, out: &[u8]) -> io::Result<()> {
    let mut off = 0;
    let deadline = Instant::now() + SERVER_READ_TIMEOUT;
    while off < out.len() {
        match stream.write(&out[off..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => off += n,
            Err(ref err) if err.kind() == io::ErrorKind::WouldBlock => {
                if ctx.dead.load(Ordering::Acquire)
                    || ctx.inner.strong_count() == 0
                    || Instant::now() > deadline
                {
                    return Err(io::ErrorKind::TimedOut.into());
                }
                std::thread::yield_now();
            }
            Err(ref err) if err.kind() == io::ErrorKind::Interrupted => {}
            Err(err) => return Err(err),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Method;

    struct Echo;

    impl WebApp for Echo {
        fn authority(&self) -> &str {
            "echo.example"
        }
        fn handle(&self, _net: &dyn Transport, req: &Request) -> Response {
            let mut resp = Response::ok().with_body(format!(
                "{} {} body={} p={}",
                req.method,
                req.url.path(),
                req.body,
                req.param("p").unwrap_or("-"),
            ));
            if let Some(echo) = req.header("x-echo") {
                resp = resp.with_header("x-echoed", echo);
            }
            resp
        }
    }

    struct Proxy;

    impl WebApp for Proxy {
        fn authority(&self) -> &str {
            "proxy.example"
        }
        fn handle(&self, net: &dyn Transport, _req: &Request) -> Response {
            net.dispatch(
                self.authority(),
                Request::new(Method::Get, "https://echo.example/inner"),
            )
        }
    }

    fn echo_transport() -> HttpTransport {
        let t = HttpTransport::new();
        t.register(Arc::new(Echo));
        t
    }

    #[test]
    fn roundtrip_over_real_sockets() {
        let t = echo_transport();
        let resp = t.dispatch(
            "tester",
            Request::new(Method::Post, "https://echo.example/pics?p=1")
                .with_body("hello")
                .with_header("x-echo", "marco"),
        );
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.body, "POST /pics body=hello p=1");
        assert_eq!(resp.header("x-echoed"), Some("marco"));
        assert_eq!(resp.transport_error(), None);
    }

    #[test]
    fn form_and_query_survive_the_wire() {
        let t = echo_transport();
        // Form beats query (Request::param semantics), special chars survive.
        let resp = t.dispatch(
            "tester",
            Request::new(Method::Post, "https://echo.example/x?p=from%20query")
                .with_param("p", "a&b=c d"),
        );
        assert_eq!(resp.body, "POST /x body= p=a&b=c d");
    }

    #[test]
    fn keep_alive_reuses_one_connection() {
        let t = echo_transport();
        for _ in 0..5 {
            let resp = t.dispatch(
                "tester",
                Request::new(Method::Get, "https://echo.example/k"),
            );
            assert_eq!(resp.status, Status::Ok);
        }
        let stats = t.stats();
        assert_eq!(stats.round_trips, 5);
        assert_eq!(stats.edge("tester", "echo.example"), 5);
        assert!(stats.payload_bytes > 0);
        assert!(stats.bytes_on_wire > 0);
    }

    #[test]
    fn nested_dispatch_over_sockets() {
        let t = echo_transport();
        t.register(Arc::new(Proxy));
        let resp = t.dispatch(
            "tester",
            Request::new(Method::Get, "https://proxy.example/"),
        );
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.body, "GET /inner body= p=-");
        assert_eq!(t.stats().round_trips, 2);
        assert_eq!(t.stats().edge("proxy.example", "echo.example"), 1);
    }

    #[test]
    fn unknown_authority_is_unreachable() {
        let t = HttpTransport::new();
        let resp = t.dispatch(
            "tester",
            Request::new(Method::Get, "https://ghost.example/"),
        );
        assert_eq!(resp.status, Status::Unavailable);
        assert_eq!(resp.transport_error(), Some(TransportError::Unreachable));
    }

    #[test]
    fn killed_listener_is_unreachable_then_recovers() {
        let t = echo_transport();
        assert_eq!(
            t.dispatch(
                "tester",
                Request::new(Method::Get, "https://echo.example/a")
            )
            .status,
            Status::Ok
        );
        t.kill_listener("echo.example");
        let resp = t.dispatch(
            "tester",
            Request::new(Method::Get, "https://echo.example/a"),
        );
        assert_eq!(resp.status, Status::Unavailable);
        assert_eq!(resp.transport_error(), Some(TransportError::Unreachable));
        // Re-registering restarts the authority on a fresh listener.
        t.register(Arc::new(Echo));
        let resp = t.dispatch(
            "tester",
            Request::new(Method::Get, "https://echo.example/a"),
        );
        assert_eq!(resp.status, Status::Ok);
    }

    #[test]
    fn stalled_listener_times_out() {
        let t = echo_transport();
        t.set_client_timeout_ms(100);
        t.set_stall("echo.example", true);
        let started = Instant::now();
        let resp = t.dispatch(
            "tester",
            Request::new(Method::Get, "https://echo.example/s"),
        );
        assert_eq!(resp.status, Status::Unavailable);
        assert_eq!(resp.transport_error(), Some(TransportError::Timeout));
        assert!(started.elapsed() >= Duration::from_millis(100));
        t.set_stall("echo.example", false);
        let resp = t.dispatch(
            "tester",
            Request::new(Method::Get, "https://echo.example/s"),
        );
        assert_eq!(resp.status, Status::Ok);
    }

    #[test]
    fn unregistered_authority_is_unreachable() {
        let t = echo_transport();
        t.unregister("echo.example");
        let resp = t.dispatch(
            "tester",
            Request::new(Method::Get, "https://echo.example/a"),
        );
        assert_eq!(resp.status, Status::Unavailable);
        assert_eq!(resp.transport_error(), Some(TransportError::Unreachable));
    }

    #[test]
    fn concurrent_dispatches_are_counted_exactly() {
        const THREADS: usize = 8;
        const EACH: usize = 50;
        let t = echo_transport();
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..EACH {
                    let resp = t.dispatch(
                        "tester",
                        Request::new(Method::Post, "https://echo.example/c").with_body("xyz"),
                    );
                    assert_eq!(resp.status, Status::Ok);
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        let stats = t.stats();
        assert_eq!(stats.round_trips, (THREADS * EACH) as u64);
        assert_eq!(
            stats.edge("tester", "echo.example"),
            (THREADS * EACH) as u64
        );
    }

    #[test]
    fn trace_matches_simnet_labels() {
        let t = echo_transport();
        t.dispatch(
            "tester",
            Request::new(Method::Get, "https://echo.example/p")
                .with_param("realm", "r1")
                .with_bearer("tok"),
        );
        let events = t.trace().events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, TraceKind::Request);
        assert!(events[0].label.contains("GET /p"), "{}", events[0].label);
        assert!(events[0].label.contains("realm=r1"), "{}", events[0].label);
        assert!(events[0].label.contains("bearer"), "{}", events[0].label);
        assert_eq!(events[1].kind, TraceKind::Response);
    }

    #[test]
    fn clock_is_never_advanced_by_dispatch() {
        let t = echo_transport();
        t.dispatch(
            "tester",
            Request::new(Method::Get, "https://echo.example/p"),
        );
        assert_eq!(t.clock().now_ms(), 0);
    }

    #[test]
    fn pipelined_batch_matches_sequential_accounting() {
        // Run the same 6-request batch sequentially and pipelined on two
        // transports; responses, stats and trace labels must agree.
        let make_reqs = || -> Vec<Request> {
            (0..6)
                .map(|i| {
                    Request::new(Method::Post, &format!("https://echo.example/b?p={i}"))
                        .with_body(format!("body-{i}"))
                })
                .collect()
        };

        let seq = echo_transport();
        let seq_resps: Vec<Response> = make_reqs()
            .into_iter()
            .map(|req| seq.dispatch("tester", req))
            .collect();

        let piped = echo_transport();
        let piped_resps = piped.dispatch_pipelined("tester", make_reqs());

        assert_eq!(seq_resps, piped_resps);
        for (i, resp) in piped_resps.iter().enumerate() {
            assert_eq!(resp.body, format!("POST /b body=body-{i} p={i}"));
        }

        let (a, b) = (seq.stats(), piped.stats());
        assert_eq!(a.round_trips, b.round_trips);
        assert_eq!(a.payload_bytes, b.payload_bytes);
        assert_eq!(a.bytes_on_wire, b.bytes_on_wire);
        assert_eq!(a.per_edge, b.per_edge);

        let labels = |t: &HttpTransport| -> Vec<String> {
            t.trace().events().iter().map(|e| e.label.clone()).collect()
        };
        assert_eq!(labels(&seq), labels(&piped));
    }

    #[test]
    fn pipelined_batch_spans_authorities_in_input_order() {
        let t = echo_transport();
        t.register(Arc::new(Proxy));
        let reqs = vec![
            Request::new(Method::Get, "https://echo.example/a?p=0"),
            Request::new(Method::Get, "https://proxy.example/"),
            Request::new(Method::Get, "https://echo.example/a?p=2"),
        ];
        let resps = t.dispatch_pipelined("tester", reqs);
        assert_eq!(resps.len(), 3);
        assert_eq!(resps[0].body, "GET /a body= p=0");
        assert_eq!(resps[1].body, "GET /inner body= p=-");
        assert_eq!(resps[2].body, "GET /a body= p=2");
        // 3 batched + 1 nested (proxy -> echo).
        assert_eq!(t.stats().round_trips, 4);
        assert_eq!(t.stats().edge("tester", "echo.example"), 2);
        assert_eq!(t.stats().edge("tester", "proxy.example"), 1);
    }

    #[test]
    fn pipelined_batch_to_unknown_authority_fails_every_request() {
        let t = echo_transport();
        let reqs = vec![
            Request::new(Method::Get, "https://echo.example/ok"),
            Request::new(Method::Get, "https://ghost.example/x"),
            Request::new(Method::Get, "https://ghost.example/y"),
        ];
        let resps = t.dispatch_pipelined("tester", reqs);
        assert_eq!(resps[0].status, Status::Ok);
        for resp in &resps[1..] {
            assert_eq!(resp.status, Status::Unavailable);
            assert_eq!(resp.transport_error(), Some(TransportError::Unreachable));
        }
        // Failed round trips still count as trips, but contribute no
        // wire bytes (same rule as SimNet).
        assert_eq!(t.stats().round_trips, 3);
        assert_eq!(t.stats().edge("tester", "ghost.example"), 2);
    }

    #[test]
    fn bytes_on_wire_matches_simnet_exactly() {
        use crate::net::SimNet;
        let http = echo_transport();
        let sim = SimNet::new();
        sim.register(Arc::new(Echo));
        let make = || {
            Request::new(Method::Post, "https://echo.example/w?p=zed")
                .with_param("realm", "r")
                .with_header("x-echo", "polo")
                .with_body("payload")
        };
        let a = http.dispatch("tester", make());
        let b = sim.dispatch("tester", make());
        assert_eq!(a, b);
        assert_eq!(http.stats().bytes_on_wire, sim.stats().bytes_on_wire);
        assert!(http.stats().bytes_on_wire > 0);
    }
}
