//! A real-socket [`Transport`] backend: loopback TCP + HTTP/1.1.
//!
//! `HttpTransport` serves the same [`WebApp`] handlers that run on
//! [`SimNet`](crate::net::SimNet), but over actual sockets: every
//! registered authority gets its own `127.0.0.1:0` listener with an
//! accept loop, each accepted connection is handled by its own thread
//! (connections are bounded by the number of client threads — the
//! client keeps one persistent connection per `(thread, authority)`
//! pair), and a hand-rolled HTTP/1.1 codec carries [`Request`] and
//! [`Response`] over the wire. No external HTTP stack, no async
//! runtime, no new dependencies.
//!
//! # Codec bounds (DESIGN.md §14)
//!
//! The codec implements exactly the subset of HTTP/1.1 this protocol
//! needs, and nothing more:
//!
//! * origin-form request targets (`/path?query`, query percent-encoded
//!   by the shared [`Url`] escaper); no absolute-form, no `*`;
//! * `content-length` framing only — no chunked transfer encoding, no
//!   trailers, no `100-continue`;
//! * single-valued headers (lower-case names), UTF-8 bodies (lossily
//!   decoded on receipt), messages capped at [`MAX_MESSAGE_BYTES`];
//! * persistent connections (keep-alive) with at most one in-flight
//!   request per connection — no pipelining;
//! * form parameters ride in an `x-ucam-form` header (percent-encoded
//!   pairs) and the dispatching party's label in `x-ucam-from`, so the
//!   server can rebuild the exact [`Request`] the client dispatched.
//!
//! # Failure classification
//!
//! The transport maps socket-level failures onto the same
//! `x-error-kind` taxonomy the simulated fabric uses:
//!
//! * connection refused, connection reset, or any other immediate I/O
//!   failure → `503` + [`TransportError::Unreachable`];
//! * a read timeout waiting for the response (hung server) → `503` +
//!   [`TransportError::Timeout`].
//!
//! [`kill_listener`](HttpTransport::kill_listener) and
//! [`set_stall`](HttpTransport::set_stall) exist so tests can produce
//! those two failures deliberately (a dead authority and a hung one)
//! and prove the resilience layer behaves identically over both
//! backends.
//!
//! # What stays deterministic, and what does not
//!
//! Protocol outcomes (decisions, status sequences, epoch visibility,
//! sieve installs) and exact message counts are identical to `SimNet`
//! for failure-free runs — the conformance suite diffs them. Wall-clock
//! timing, thread interleavings and therefore req/s are **not**
//! deterministic; the shared [`SimClock`] is never advanced by this
//! transport, so virtual-time behaviour (token lifetimes, grace
//! windows) stays harness-driven exactly as on `SimNet`.

use std::collections::{BTreeMap, HashMap};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::clock::SimClock;
use crate::http::{Method, Request, Response, Status, TransportError};
use crate::net::{message_bytes, summarize_params, NetStats, WebApp};
use crate::trace::{TraceKind, TraceRecorder};
use crate::transport::Transport;
use crate::url::{decode_component, encode_component, Url};

/// Upper bound on one HTTP message (start line + headers + body). The
/// protocol's largest real messages are epoch sieve pushes at a few
/// hundred kilobytes; 16 MiB leaves headroom while bounding a
/// misbehaving peer.
pub const MAX_MESSAGE_BYTES: usize = 16 * 1024 * 1024;

/// How long the client waits for a TCP connect to complete.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(1);

/// Server-side idle poll interval: how often a connection handler (and
/// the accept loop) re-checks its shutdown flags while waiting.
const POLL_INTERVAL: Duration = Duration::from_millis(10);

/// Server-side patience for the *rest* of a request once its first byte
/// has arrived (loopback peers send whole requests at once).
const SERVER_READ_TIMEOUT: Duration = Duration::from_secs(5);

/// Most connections a single listener will serve concurrently. Client
/// connections are persistent and bounded by `threads x authorities`,
/// so this is a misbehaving-peer backstop, not a tuning knob.
const MAX_CONNS_PER_LISTENER: usize = 256;

/// Headers the codec itself owns; they carry envelope data and are
/// stripped when the wire message is rebuilt into a [`Request`].
const RESERVED_REQUEST_HEADERS: [&str; 5] = [
    "host",
    "x-ucam-from",
    "x-ucam-form",
    "content-length",
    "connection",
];

/// Source of unique transport ids for the per-thread connection cache.
static NEXT_HTTP_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's persistent client connections, keyed by
    /// `(transport id, authority)`. One connection per key — the client
    /// never pipelines, so a cached connection is always quiescent.
    static CONN_CACHE: std::cell::RefCell<HashMap<(u64, String), TcpStream>> =
        std::cell::RefCell::new(HashMap::new());
}

/// One registered authority: its listener address, its accept loop, and
/// the fault-injection flags the conformance tests flip.
struct Route {
    addr: SocketAddr,
    /// When set, the accept loop exits (dropping the listener, so new
    /// connects are refused) and connection handlers hang up.
    dead: Arc<AtomicBool>,
    /// When set, connection handlers hold every response until the flag
    /// clears — the client observes a read timeout.
    stall: Arc<AtomicBool>,
    /// Live accepted connections, tracked so a kill can reset them.
    conns: Arc<Mutex<Vec<TcpStream>>>,
    accept_thread: Option<JoinHandle<()>>,
}

/// Aggregate message statistics (a single cell — the HTTP path is
/// socket-bound, so one short lock per dispatch is noise).
#[derive(Default)]
struct StatsCell {
    round_trips: u64,
    payload_bytes: u64,
    /// Measured wall-clock dispatch time, in microseconds. Surfaced via
    /// [`NetStats::modelled_latency_ms`] — on this backend the
    /// "modelled" latency *is* the measured loopback latency.
    wall_us: u64,
    per_edge: BTreeMap<(String, String), u64>,
}

struct HttpInner {
    id: u64,
    clock: SimClock,
    trace: TraceRecorder,
    routes: Mutex<HashMap<String, Route>>,
    stats: Mutex<StatsCell>,
    /// How long the client waits for a response before classifying the
    /// authority as hung ([`TransportError::Timeout`]).
    client_timeout_ms: AtomicU64,
}

impl Drop for HttpInner {
    fn drop(&mut self) {
        let mut routes = std::mem::take(&mut *self.routes.lock());
        for route in routes.values_mut() {
            shut_down_route(route);
        }
    }
}

/// Signals a route's threads to exit and resets its live connections.
fn shut_down_route(route: &mut Route) {
    route.dead.store(true, Ordering::Release);
    for conn in route.conns.lock().drain(..) {
        let _ = conn.shutdown(Shutdown::Both);
    }
    if let Some(handle) = route.accept_thread.take() {
        let _ = handle.join();
    }
}

/// The loopback-TCP transport. See the [module documentation](self).
///
/// Cloning is cheap and shares the listeners, clock, trace and stats —
/// handler threads clone it to serve nested dispatches.
#[derive(Clone)]
pub struct HttpTransport {
    inner: Arc<HttpInner>,
}

impl Default for HttpTransport {
    fn default() -> Self {
        HttpTransport::new()
    }
}

impl std::fmt::Debug for HttpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpTransport")
            .field(
                "authorities",
                &self.inner.routes.lock().keys().collect::<Vec<_>>(),
            )
            .finish_non_exhaustive()
    }
}

impl HttpTransport {
    /// Creates an empty transport with a fresh clock and no listeners.
    #[must_use]
    pub fn new() -> Self {
        HttpTransport {
            inner: Arc::new(HttpInner {
                id: NEXT_HTTP_ID.fetch_add(1, Ordering::Relaxed),
                clock: SimClock::new(),
                trace: TraceRecorder::new(),
                routes: Mutex::new(HashMap::new()),
                stats: Mutex::new(StatsCell::default()),
                client_timeout_ms: AtomicU64::new(2000),
            }),
        }
    }

    /// Sets how long a dispatch waits for a response before giving up
    /// with [`TransportError::Timeout`]. Tests that hang a listener
    /// lower this so the failure is observed quickly.
    pub fn set_client_timeout_ms(&self, ms: u64) {
        self.inner
            .client_timeout_ms
            .store(ms.max(1), Ordering::Relaxed);
    }

    /// The socket address `authority`'s listener is bound to, if it is
    /// registered (and not killed).
    #[must_use]
    pub fn listener_addr(&self, authority: &str) -> Option<SocketAddr> {
        let routes = self.inner.routes.lock();
        let route = routes.get(authority)?;
        (!route.dead.load(Ordering::Acquire)).then_some(route.addr)
    }

    /// Kills `authority`'s listener *without* unregistering it: the
    /// accept loop exits (so new connections are refused by the kernel)
    /// and every live connection is reset. Subsequent dispatches fail
    /// with [`TransportError::Unreachable`] — the real-socket
    /// equivalent of [`SimNet::set_offline`](crate::net::SimNet::set_offline).
    pub fn kill_listener(&self, authority: &str) {
        let mut routes = self.inner.routes.lock();
        if let Some(route) = routes.get_mut(authority) {
            shut_down_route(route);
        }
    }

    /// Makes `authority`'s handlers hold (`true`) or release (`false`)
    /// their responses. While stalled, dispatches burn the full client
    /// timeout and fail with [`TransportError::Timeout`] — the
    /// real-socket equivalent of a lost message.
    pub fn set_stall(&self, authority: &str, stalled: bool) {
        let routes = self.inner.routes.lock();
        if let Some(route) = routes.get(authority) {
            route.stall.store(stalled, Ordering::Release);
        }
    }

    fn client_timeout(&self) -> Duration {
        Duration::from_millis(self.inner.client_timeout_ms.load(Ordering::Relaxed))
    }

    /// Sends one request to `to`, classifying socket failures. Reuses
    /// this thread's cached connection when possible; a failure on a
    /// cached (possibly idle-reaped) connection falls back to one fresh
    /// connect before the failure is reported.
    fn send(&self, from: &str, to: &str, req: &Request) -> Response {
        let Some(addr) = self.listener_known_addr(to) else {
            return transport_failure(
                TransportError::Unreachable,
                &format!("unreachable authority: {to}"),
            );
        };
        let wire = encode_request(from, to, req);
        let timeout = self.client_timeout();

        let cached =
            CONN_CACHE.with(|cache| cache.borrow_mut().remove(&(self.inner.id, to.to_owned())));
        if let Some(stream) = cached {
            if let Ok(resp) = roundtrip(&stream, &wire, timeout) {
                self.cache_conn(to, stream);
                return resp;
            }
        }

        let stream = match TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT) {
            Ok(stream) => stream,
            Err(_) => {
                return transport_failure(
                    TransportError::Unreachable,
                    &format!("connection to {to} refused"),
                );
            }
        };
        let _ = stream.set_nodelay(true);
        match roundtrip(&stream, &wire, timeout) {
            Ok(resp) => {
                self.cache_conn(to, stream);
                resp
            }
            Err(err) if is_timeout(&err) => transport_failure(
                TransportError::Timeout,
                &format!("timed out waiting for {to}"),
            ),
            Err(_) => transport_failure(
                TransportError::Unreachable,
                &format!("connection to {to} reset"),
            ),
        }
    }

    /// The registered address for `to`, dead or alive — a killed route
    /// keeps its address so dispatches attempt a real connect and take
    /// the kernel's refusal, exactly like contacting a crashed server.
    fn listener_known_addr(&self, to: &str) -> Option<SocketAddr> {
        self.inner.routes.lock().get(to).map(|r| r.addr)
    }

    fn cache_conn(&self, to: &str, stream: TcpStream) {
        CONN_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            if cache.len() >= 64 {
                cache.clear();
            }
            cache.insert((self.inner.id, to.to_owned()), stream);
        });
    }
}

impl Transport for HttpTransport {
    fn name(&self) -> &'static str {
        "http"
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn register(&self, app: Arc<dyn WebApp>) {
        let authority = app.authority().to_owned();
        let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind loopback listener");
        listener
            .set_nonblocking(true)
            .expect("nonblocking listener");
        let addr = listener.local_addr().expect("listener address");

        let dead = Arc::new(AtomicBool::new(false));
        let stall = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));

        let accept_thread = spawn_accept_loop(
            listener,
            app,
            Arc::downgrade(&self.inner),
            Arc::clone(&dead),
            Arc::clone(&stall),
            Arc::clone(&conns),
        );

        let mut routes = self.inner.routes.lock();
        if let Some(mut old) = routes.insert(
            authority,
            Route {
                addr,
                dead,
                stall,
                conns,
                accept_thread: Some(accept_thread),
            },
        ) {
            shut_down_route(&mut old);
        }
    }

    fn unregister(&self, authority: &str) {
        let removed = self.inner.routes.lock().remove(authority);
        if let Some(mut route) = removed {
            shut_down_route(&mut route);
        }
    }

    fn dispatch(&self, from: &str, req: Request) -> Response {
        let to = req.url.authority().to_owned();
        self.inner
            .trace
            .record_with(from, &to, TraceKind::Request, || {
                format!(
                    "{} {}{}",
                    req.method,
                    req.url.path(),
                    summarize_params(&req)
                )
            });
        let request_bytes = message_bytes(&req.body, req.headers.values())
            + req.form.values().map(String::len).sum::<usize>();

        let started = Instant::now();
        let resp = self.send(from, &to, &req);
        let wall_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);

        self.inner
            .trace
            .record_with(from, &to, TraceKind::Response, || match resp.location() {
                Some(loc) => format!("{} -> {}", resp.status, loc.authority()),
                None => resp.status.to_string(),
            });

        let response_bytes = message_bytes(&resp.body, resp.headers.values());
        let mut stats = self.inner.stats.lock();
        stats.round_trips += 1;
        stats.payload_bytes += (request_bytes + response_bytes) as u64;
        stats.wall_us += wall_us;
        *stats.per_edge.entry((from.to_owned(), to)).or_insert(0) += 1;

        resp
    }

    fn clock(&self) -> &SimClock {
        &self.inner.clock
    }

    fn trace(&self) -> &TraceRecorder {
        &self.inner.trace
    }

    fn stats(&self) -> NetStats {
        let cell = self.inner.stats.lock();
        NetStats {
            round_trips: cell.round_trips,
            per_edge: cell.per_edge.clone(),
            modelled_latency_ms: cell.wall_us / 1000,
            payload_bytes: cell.payload_bytes,
        }
    }

    fn reset_stats(&self) {
        *self.inner.stats.lock() = StatsCell::default();
    }
}

/// Builds the classified `503` for a transport-level failure.
fn transport_failure(kind: TransportError, why: &str) -> Response {
    Response::with_status(Status::Unavailable)
        .with_body(why.to_owned())
        .with_transport_error(kind)
}

fn is_timeout(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Spawns the accept loop for one listener. The loop polls a
/// non-blocking accept so it can observe its `dead` flag (and the
/// transport being dropped) within [`POLL_INTERVAL`] without needing a
/// wake-up connection.
fn spawn_accept_loop(
    listener: TcpListener,
    app: Arc<dyn WebApp>,
    inner: Weak<HttpInner>,
    dead: Arc<AtomicBool>,
    stall: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
) -> JoinHandle<()> {
    std::thread::spawn(move || loop {
        if dead.load(Ordering::Acquire) || inner.strong_count() == 0 {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                {
                    let mut live = conns.lock();
                    // Drop closed sockets from the kill list opportunistically.
                    if live.len() >= MAX_CONNS_PER_LISTENER {
                        let _ = stream.shutdown(Shutdown::Both);
                        continue;
                    }
                    if let Ok(clone) = stream.try_clone() {
                        live.push(clone);
                    }
                }
                let app = Arc::clone(&app);
                let inner = inner.clone();
                let dead = Arc::clone(&dead);
                let stall = Arc::clone(&stall);
                std::thread::spawn(move || serve_connection(stream, &app, &inner, &dead, &stall));
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => return,
        }
    })
}

/// Serves one accepted connection: reads requests, runs the handler
/// (with nested-dispatch access to the transport), writes responses.
/// Exits on peer hang-up, malformed input, kill, or transport drop.
fn serve_connection(
    stream: TcpStream,
    app: &Arc<dyn WebApp>,
    inner: &Weak<HttpInner>,
    dead: &AtomicBool,
    stall: &AtomicBool,
) {
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let Ok(clone) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(clone);
    let mut write_half = stream;

    loop {
        // Idle wait: peek (without consuming) until a request starts, a
        // shutdown flag flips, or the peer hangs up. The read timeout on
        // the socket bounds each peek, giving the poll cadence.
        match write_half.peek(&mut [0u8; 1]) {
            Ok(0) => return,
            Ok(_) => {}
            Err(ref err) if is_timeout(err) => {
                if dead.load(Ordering::Acquire) || inner.strong_count() == 0 {
                    let _ = write_half.shutdown(Shutdown::Both);
                    return;
                }
                continue;
            }
            Err(_) => return,
        }

        // A request has started: give the rest of it a generous window.
        let _ = write_half.set_read_timeout(Some(SERVER_READ_TIMEOUT));
        let parsed = read_request(&mut reader);
        let _ = write_half.set_read_timeout(Some(POLL_INTERVAL));
        let Ok(Some((_from, req))) = parsed else {
            return;
        };

        // Hold the response while stalled (hung-server fault injection).
        while stall.load(Ordering::Acquire) {
            if dead.load(Ordering::Acquire) || inner.strong_count() == 0 {
                let _ = write_half.shutdown(Shutdown::Both);
                return;
            }
            std::thread::sleep(POLL_INTERVAL);
        }
        let Some(strong) = inner.upgrade() else {
            return;
        };
        let transport = HttpTransport { inner: strong };
        let resp = app.handle(&transport, &req);
        drop(transport);
        if write_response(&mut write_half, &resp).is_err() {
            return;
        }
    }
}

/// Serializes a [`Request`] into one HTTP/1.1 message. Form pairs ride
/// in `x-ucam-form` (percent-encoded), the dispatcher's label in
/// `x-ucam-from`.
fn encode_request(from: &str, authority: &str, req: &Request) -> Vec<u8> {
    let mut out = Vec::with_capacity(256 + req.body.len());
    out.extend_from_slice(
        format!("{} {} HTTP/1.1\r\n", req.method, req.url.path_and_query()).as_bytes(),
    );
    push_header(&mut out, "host", authority);
    push_header(&mut out, "x-ucam-from", from);
    if !req.form.is_empty() {
        let encoded: Vec<String> = req
            .form
            .iter()
            .map(|(k, v)| format!("{}={}", encode_component(k), encode_component(v)))
            .collect();
        push_header(&mut out, "x-ucam-form", &encoded.join("&"));
    }
    for (name, value) in &req.headers {
        push_header(&mut out, name, value);
    }
    push_header(&mut out, "content-length", &req.body.len().to_string());
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(req.body.as_bytes());
    out
}

fn push_header(out: &mut Vec<u8>, name: &str, value: &str) {
    out.extend_from_slice(sanitize(name).as_bytes());
    out.extend_from_slice(b": ");
    out.extend_from_slice(sanitize(value).as_bytes());
    out.extend_from_slice(b"\r\n");
}

/// Keeps header names/values from breaking HTTP framing.
fn sanitize(s: &str) -> std::borrow::Cow<'_, str> {
    if s.contains(['\r', '\n']) {
        std::borrow::Cow::Owned(s.replace(['\r', '\n'], " "))
    } else {
        std::borrow::Cow::Borrowed(s)
    }
}

/// Reads one request off the wire. `Ok(None)` is a clean hang-up before
/// the next request; any framing violation is an error (the connection
/// is dropped — the client will fail over to a fresh one).
fn read_request(reader: &mut BufReader<TcpStream>) -> io::Result<Option<(String, Request)>> {
    let Some(start_line) = read_line(reader)? else {
        return Ok(None);
    };
    let mut parts = start_line.split_whitespace();
    let method = match parts.next() {
        Some("GET") => Method::Get,
        Some("POST") => Method::Post,
        Some("PUT") => Method::Put,
        Some("DELETE") => Method::Delete,
        _ => return Err(malformed("unsupported method")),
    };
    let target = parts.next().ok_or_else(|| malformed("missing target"))?;
    if parts.next() != Some("HTTP/1.1") {
        return Err(malformed("not HTTP/1.1"));
    }

    let headers = read_headers(reader)?;
    let host = headers
        .get("host")
        .ok_or_else(|| malformed("missing host header"))?
        .clone();
    let from = headers
        .get("x-ucam-from")
        .cloned()
        .unwrap_or_else(|| "unknown".to_owned());
    let body = read_body(reader, &headers)?;

    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    if !path.starts_with('/') {
        return Err(malformed("target not origin-form"));
    }
    let mut url = Url::new(&host, path);
    if let Some(qs) = query_str {
        for pair in qs.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            url = url.with_query(&decode_component(k), &decode_component(v));
        }
    }

    let mut req = Request::to_url(method, url).with_body(body);
    if let Some(form) = headers.get("x-ucam-form") {
        for pair in form.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            req.form.insert(decode_component(k), decode_component(v));
        }
    }
    for (name, value) in headers {
        if !RESERVED_REQUEST_HEADERS.contains(&name.as_str()) {
            req.headers.insert(name, value);
        }
    }
    Ok(Some((from, req)))
}

/// Serializes and writes a [`Response`].
fn write_response(stream: &mut TcpStream, resp: &Response) -> io::Result<()> {
    let mut out = Vec::with_capacity(128 + resp.body.len());
    out.extend_from_slice(
        format!(
            "HTTP/1.1 {} {}\r\n",
            resp.status.code(),
            resp.status.reason()
        )
        .as_bytes(),
    );
    for (name, value) in &resp.headers {
        push_header(&mut out, name, value);
    }
    push_header(&mut out, "content-length", &resp.body.len().to_string());
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(resp.body.as_bytes());
    stream.write_all(&out)?;
    stream.flush()
}

/// Writes `wire` and reads one response, within `timeout` per read.
fn roundtrip(stream: &TcpStream, wire: &[u8], timeout: Duration) -> io::Result<Response> {
    stream.set_read_timeout(Some(timeout))?;
    let mut write_half = stream;
    write_half.write_all(wire)?;
    write_half.flush()?;
    let mut reader = BufReader::new(stream);
    read_response(&mut reader)
}

/// Reads one response off the wire.
fn read_response(reader: &mut BufReader<&TcpStream>) -> io::Result<Response> {
    let status_line = read_line(reader)?.ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before response",
        )
    })?;
    let mut parts = status_line.split_whitespace();
    if parts.next() != Some("HTTP/1.1") {
        return Err(malformed("bad status line"));
    }
    let code: u16 = parts
        .next()
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| malformed("bad status code"))?;
    let status = Status::from_code(code).ok_or_else(|| malformed("unknown status code"))?;

    let headers = read_headers(reader)?;
    let body = read_body(reader, &headers)?;

    let mut resp = Response::with_status(status).with_body(body);
    for (name, value) in headers {
        if name != "content-length" && name != "connection" {
            resp.headers.insert(name, value);
        }
    }
    Ok(resp)
}

/// Reads one CRLF-terminated line; `Ok(None)` on immediate EOF.
fn read_line<R: BufRead>(reader: &mut R) -> io::Result<Option<String>> {
    let mut line = String::new();
    let mut n = reader.read_line(&mut line)?;
    if n == 0 {
        return Ok(None);
    }
    // `read_line` can return a partial line if the read timeout fires
    // mid-line; keep reading until the terminator (or EOF) arrives.
    while !line.ends_with('\n') {
        n = reader.read_line(&mut line)?;
        if n == 0 {
            return Err(malformed("truncated line"));
        }
        if line.len() > MAX_MESSAGE_BYTES {
            return Err(malformed("line too long"));
        }
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

/// Reads headers up to the blank separator line.
fn read_headers<R: BufRead>(reader: &mut R) -> io::Result<BTreeMap<String, String>> {
    let mut headers = BTreeMap::new();
    loop {
        let line = read_line(reader)?.ok_or_else(|| malformed("truncated headers"))?;
        if line.is_empty() {
            return Ok(headers);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| malformed("bad header"))?;
        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_owned());
        if headers.len() > 512 {
            return Err(malformed("too many headers"));
        }
    }
}

/// Reads a `content-length`-framed body (UTF-8, lossily decoded).
fn read_body<R: BufRead>(reader: &mut R, headers: &BTreeMap<String, String>) -> io::Result<String> {
    let len: usize = headers.get("content-length").map_or(Ok(0), |v| {
        v.parse().map_err(|_| malformed("bad content-length"))
    })?;
    if len > MAX_MESSAGE_BYTES {
        return Err(malformed("body too large"));
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    Ok(String::from_utf8_lossy(&body).into_owned())
}

fn malformed(why: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, why.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;

    impl WebApp for Echo {
        fn authority(&self) -> &str {
            "echo.example"
        }
        fn handle(&self, _net: &dyn Transport, req: &Request) -> Response {
            let mut resp = Response::ok().with_body(format!(
                "{} {} body={} p={}",
                req.method,
                req.url.path(),
                req.body,
                req.param("p").unwrap_or("-"),
            ));
            if let Some(echo) = req.header("x-echo") {
                resp = resp.with_header("x-echoed", echo);
            }
            resp
        }
    }

    struct Proxy;

    impl WebApp for Proxy {
        fn authority(&self) -> &str {
            "proxy.example"
        }
        fn handle(&self, net: &dyn Transport, _req: &Request) -> Response {
            net.dispatch(
                self.authority(),
                Request::new(Method::Get, "https://echo.example/inner"),
            )
        }
    }

    fn echo_transport() -> HttpTransport {
        let t = HttpTransport::new();
        t.register(Arc::new(Echo));
        t
    }

    #[test]
    fn roundtrip_over_real_sockets() {
        let t = echo_transport();
        let resp = t.dispatch(
            "tester",
            Request::new(Method::Post, "https://echo.example/pics?p=1")
                .with_body("hello")
                .with_header("x-echo", "marco"),
        );
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.body, "POST /pics body=hello p=1");
        assert_eq!(resp.header("x-echoed"), Some("marco"));
        assert_eq!(resp.transport_error(), None);
    }

    #[test]
    fn form_and_query_survive_the_wire() {
        let t = echo_transport();
        // Form beats query (Request::param semantics), special chars survive.
        let resp = t.dispatch(
            "tester",
            Request::new(Method::Post, "https://echo.example/x?p=from%20query")
                .with_param("p", "a&b=c d"),
        );
        assert_eq!(resp.body, "POST /x body= p=a&b=c d");
    }

    #[test]
    fn keep_alive_reuses_one_connection() {
        let t = echo_transport();
        for _ in 0..5 {
            let resp = t.dispatch(
                "tester",
                Request::new(Method::Get, "https://echo.example/k"),
            );
            assert_eq!(resp.status, Status::Ok);
        }
        let stats = t.stats();
        assert_eq!(stats.round_trips, 5);
        assert_eq!(stats.edge("tester", "echo.example"), 5);
        assert!(stats.payload_bytes > 0);
    }

    #[test]
    fn nested_dispatch_over_sockets() {
        let t = echo_transport();
        t.register(Arc::new(Proxy));
        let resp = t.dispatch(
            "tester",
            Request::new(Method::Get, "https://proxy.example/"),
        );
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.body, "GET /inner body= p=-");
        assert_eq!(t.stats().round_trips, 2);
        assert_eq!(t.stats().edge("proxy.example", "echo.example"), 1);
    }

    #[test]
    fn unknown_authority_is_unreachable() {
        let t = HttpTransport::new();
        let resp = t.dispatch(
            "tester",
            Request::new(Method::Get, "https://ghost.example/"),
        );
        assert_eq!(resp.status, Status::Unavailable);
        assert_eq!(resp.transport_error(), Some(TransportError::Unreachable));
    }

    #[test]
    fn killed_listener_is_unreachable_then_recovers() {
        let t = echo_transport();
        assert_eq!(
            t.dispatch(
                "tester",
                Request::new(Method::Get, "https://echo.example/a")
            )
            .status,
            Status::Ok
        );
        t.kill_listener("echo.example");
        let resp = t.dispatch(
            "tester",
            Request::new(Method::Get, "https://echo.example/a"),
        );
        assert_eq!(resp.status, Status::Unavailable);
        assert_eq!(resp.transport_error(), Some(TransportError::Unreachable));
        // Re-registering restarts the authority on a fresh listener.
        t.register(Arc::new(Echo));
        let resp = t.dispatch(
            "tester",
            Request::new(Method::Get, "https://echo.example/a"),
        );
        assert_eq!(resp.status, Status::Ok);
    }

    #[test]
    fn stalled_listener_times_out() {
        let t = echo_transport();
        t.set_client_timeout_ms(100);
        t.set_stall("echo.example", true);
        let started = Instant::now();
        let resp = t.dispatch(
            "tester",
            Request::new(Method::Get, "https://echo.example/s"),
        );
        assert_eq!(resp.status, Status::Unavailable);
        assert_eq!(resp.transport_error(), Some(TransportError::Timeout));
        assert!(started.elapsed() >= Duration::from_millis(100));
        t.set_stall("echo.example", false);
        let resp = t.dispatch(
            "tester",
            Request::new(Method::Get, "https://echo.example/s"),
        );
        assert_eq!(resp.status, Status::Ok);
    }

    #[test]
    fn unregistered_authority_is_unreachable() {
        let t = echo_transport();
        t.unregister("echo.example");
        let resp = t.dispatch(
            "tester",
            Request::new(Method::Get, "https://echo.example/a"),
        );
        assert_eq!(resp.status, Status::Unavailable);
        assert_eq!(resp.transport_error(), Some(TransportError::Unreachable));
    }

    #[test]
    fn concurrent_dispatches_are_counted_exactly() {
        const THREADS: usize = 8;
        const EACH: usize = 50;
        let t = echo_transport();
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..EACH {
                    let resp = t.dispatch(
                        "tester",
                        Request::new(Method::Post, "https://echo.example/c").with_body("xyz"),
                    );
                    assert_eq!(resp.status, Status::Ok);
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        let stats = t.stats();
        assert_eq!(stats.round_trips, (THREADS * EACH) as u64);
        assert_eq!(
            stats.edge("tester", "echo.example"),
            (THREADS * EACH) as u64
        );
    }

    #[test]
    fn trace_matches_simnet_labels() {
        let t = echo_transport();
        t.dispatch(
            "tester",
            Request::new(Method::Get, "https://echo.example/p")
                .with_param("realm", "r1")
                .with_bearer("tok"),
        );
        let events = t.trace().events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, TraceKind::Request);
        assert!(events[0].label.contains("GET /p"), "{}", events[0].label);
        assert!(events[0].label.contains("realm=r1"), "{}", events[0].label);
        assert!(events[0].label.contains("bearer"), "{}", events[0].label);
        assert_eq!(events[1].kind, TraceKind::Response);
    }

    #[test]
    fn clock_is_never_advanced_by_dispatch() {
        let t = echo_transport();
        t.dispatch(
            "tester",
            Request::new(Method::Get, "https://echo.example/p"),
        );
        assert_eq!(t.clock().now_ms(), 0);
    }
}
