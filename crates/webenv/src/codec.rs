//! The canonical HTTP/1.1 codec shared by every transport backend.
//!
//! This module is the single source of truth for how a [`Request`] or
//! [`Response`] looks on the wire. [`HttpTransport`](crate::httpnet::HttpTransport)
//! uses the encoder/parser to move real bytes over loopback TCP;
//! [`SimNet`](crate::net::SimNet) uses the *arithmetic* twins
//! ([`request_wire_len`], [`response_wire_len`]) to account
//! `bytes_on_wire` for messages it never serializes. The two views are
//! pinned together by tests: for every message,
//! `encode(..).len() == wire_len(..)` exactly, which is what makes the
//! cross-backend `bytes_on_wire` work-count gate bit-exact.
//!
//! # Wire format (DESIGN.md §14)
//!
//! * origin-form request targets (`/path?query`, query percent-encoded
//!   by the shared [`Url`] escaper); no absolute-form, no `*`;
//! * `content-length` framing only — no chunked transfer encoding;
//! * single-valued lower-case headers, CRLF line endings, UTF-8 bodies
//!   (lossily decoded on receipt), messages capped at
//!   [`MAX_MESSAGE_BYTES`];
//! * form parameters ride in an `x-ucam-form` header (percent-encoded
//!   pairs) and the dispatching party's label in `x-ucam-from`, so the
//!   server can rebuild the exact [`Request`] the client dispatched.
//!
//! # Performance contract
//!
//! The encoders append into a caller-supplied buffer and perform no
//! allocation of their own; the head parser borrows slices out of the
//! caller's read buffer and allocates nothing. Owned [`Request`] /
//! [`Response`] values are only materialized by [`build_request`] /
//! [`build_response`] (allocation there is inherent — the structs own
//! their strings). The criterion bench `http_codec` pins both the ns/op
//! and the zero-allocation property of the fast path.

use crate::http::{Method, Request, Response, Status};
use crate::url::{decode_component, Url};

/// Upper bound on one HTTP message (start line + headers + body). The
/// protocol's largest real messages are epoch sieve pushes at a few
/// hundred kilobytes; 16 MiB leaves headroom while bounding a
/// misbehaving peer.
pub const MAX_MESSAGE_BYTES: usize = 16 * 1024 * 1024;

/// Most header lines one message head may carry. The protocol itself
/// uses a handful; 64 bounds a misbehaving peer while keeping the
/// borrowed head table stack-friendly.
pub const MAX_HEADERS: usize = 64;

/// Headers the codec itself owns; they carry envelope data and are
/// stripped when the wire message is rebuilt into a [`Request`].
pub const RESERVED_REQUEST_HEADERS: [&str; 5] = [
    "host",
    "x-ucam-from",
    "x-ucam-form",
    "content-length",
    "connection",
];

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn method_str(method: Method) -> &'static str {
    match method {
        Method::Get => "GET",
        Method::Post => "POST",
        Method::Put => "PUT",
        Method::Delete => "DELETE",
    }
}

/// Appends `s` with any CR/LF replaced by a space (1:1, so sanitizing
/// never changes a message's length — the arithmetic twins rely on it).
fn push_sanitized(out: &mut Vec<u8>, s: &str) {
    if s.as_bytes().iter().any(|&b| b == b'\r' || b == b'\n') {
        for b in s.bytes() {
            out.push(if b == b'\r' || b == b'\n' { b' ' } else { b });
        }
    } else {
        out.extend_from_slice(s.as_bytes());
    }
}

fn push_header(out: &mut Vec<u8>, name: &str, value: &str) {
    push_sanitized(out, name);
    out.extend_from_slice(b": ");
    push_sanitized(out, value);
    out.extend_from_slice(b"\r\n");
}

/// `name: value\r\n`
fn header_line_len(name: &str, value: &str) -> usize {
    name.len() + 2 + value.len() + 2
}

/// Appends `n` in decimal without allocating.
fn push_decimal(out: &mut Vec<u8>, n: usize) {
    let mut tmp = [0u8; 20];
    let mut i = tmp.len();
    let mut n = n;
    loop {
        i -= 1;
        tmp[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    out.extend_from_slice(&tmp[i..]);
}

/// Number of decimal digits `n` formats to.
fn decimal_len(n: usize) -> usize {
    let mut digits = 1;
    let mut n = n / 10;
    while n > 0 {
        digits += 1;
        n /= 10;
    }
    digits
}

/// Appends `s` percent-encoded exactly like the shared [`Url`] escaper
/// (unreserved bytes pass, everything else becomes `%XX`).
fn push_encoded(out: &mut Vec<u8>, s: &str) {
    const HEX: &[u8; 16] = b"0123456789ABCDEF";
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => out.push(b),
            _ => {
                out.push(b'%');
                out.push(HEX[usize::from(b >> 4)]);
                out.push(HEX[usize::from(b & 0x0f)]);
            }
        }
    }
}

/// Encoded length of a percent-encoded component (arithmetic twin of
/// [`push_encoded`]).
fn encoded_len(s: &str) -> usize {
    s.bytes()
        .map(|b| match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => 1,
            _ => 3,
        })
        .sum()
}

/// Serializes a [`Request`] into one HTTP/1.1 message, appended to a
/// cleared `out`. Form pairs ride in `x-ucam-form` (percent-encoded),
/// the dispatcher's label in `x-ucam-from`; `content-length` is always
/// the final header. The target authority is the request URL's.
pub fn encode_request_into(out: &mut Vec<u8>, from: &str, req: &Request) {
    out.clear();
    out.extend_from_slice(method_str(req.method).as_bytes());
    out.push(b' ');
    out.extend_from_slice(req.url.path().as_bytes());
    let mut sep = b'?';
    for (k, v) in req.url.query_pairs() {
        out.push(sep);
        push_encoded(out, k);
        out.push(b'=');
        push_encoded(out, v);
        sep = b'&';
    }
    out.extend_from_slice(b" HTTP/1.1\r\n");
    push_header(out, "host", req.url.authority());
    push_header(out, "x-ucam-from", from);
    if !req.form.is_empty() {
        out.extend_from_slice(b"x-ucam-form: ");
        let mut first = true;
        for (k, v) in &req.form {
            if !first {
                out.push(b'&');
            }
            first = false;
            push_encoded(out, k);
            out.push(b'=');
            push_encoded(out, v);
        }
        out.extend_from_slice(b"\r\n");
    }
    for (name, value) in &req.headers {
        push_header(out, name, value);
    }
    out.extend_from_slice(b"content-length: ");
    push_decimal(out, req.body.len());
    out.extend_from_slice(b"\r\n\r\n");
    out.extend_from_slice(req.body.as_bytes());
}

/// Exact number of bytes [`encode_request_into`] produces for this
/// request, computed without serializing anything. This is how `SimNet`
/// accounts `bytes_on_wire` for messages that never touch a socket.
#[must_use]
pub fn request_wire_len(from: &str, req: &Request) -> usize {
    let mut n = method_str(req.method).len() + 1 + req.url.path().len();
    for (k, v) in req.url.query_pairs() {
        n += 2 + encoded_len(k) + encoded_len(v); // separator + '='
    }
    n += " HTTP/1.1\r\n".len();
    n += header_line_len("host", req.url.authority());
    n += header_line_len("x-ucam-from", from);
    if !req.form.is_empty() {
        n += "x-ucam-form: ".len() + 2 + req.form.len() - 1; // prefix, CRLF, '&'s
        for (k, v) in &req.form {
            n += encoded_len(k) + 1 + encoded_len(v);
        }
    }
    for (name, value) in &req.headers {
        n += header_line_len(name, value);
    }
    n += "content-length: ".len() + decimal_len(req.body.len()) + 4; // CRLF CRLF
    n + req.body.len()
}

/// Serializes a [`Response`]'s status line and headers (everything up to
/// and including the blank separator line) into a cleared `out`. The
/// body is *not* appended — the server flushes `[head, body]` with one
/// vectored write.
pub fn encode_response_head_into(out: &mut Vec<u8>, resp: &Response) {
    out.clear();
    out.extend_from_slice(b"HTTP/1.1 ");
    push_decimal(out, usize::from(resp.status.code()));
    out.push(b' ');
    out.extend_from_slice(resp.status.reason().as_bytes());
    out.extend_from_slice(b"\r\n");
    for (name, value) in &resp.headers {
        push_header(out, name, value);
    }
    out.extend_from_slice(b"content-length: ");
    push_decimal(out, resp.body.len());
    out.extend_from_slice(b"\r\n\r\n");
}

/// Serializes a complete [`Response`] (head + body) into a cleared
/// `out`. Tests and benches use this; the server write path prefers
/// [`encode_response_head_into`] plus a vectored write.
pub fn encode_response_into(out: &mut Vec<u8>, resp: &Response) {
    encode_response_head_into(out, resp);
    out.extend_from_slice(resp.body.as_bytes());
}

/// Exact number of bytes the encoded response occupies on the wire
/// (head + body), computed without serializing anything.
#[must_use]
pub fn response_wire_len(resp: &Response) -> usize {
    let mut n = "HTTP/1.1 ".len()
        + decimal_len(usize::from(resp.status.code()))
        + 1
        + resp.status.reason().len()
        + 2;
    for (name, value) in &resp.headers {
        n += header_line_len(name, value);
    }
    n += "content-length: ".len() + decimal_len(resp.body.len()) + 4;
    n + resp.body.len()
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Index just past the `\r\n\r\n` head terminator, if `buf` holds a
/// complete message head. Scanning restarts from `from` (callers pass
/// `previous_len.saturating_sub(3)` so incremental reads re-scan at most
/// three carried-over bytes).
#[must_use]
pub fn find_head_end(buf: &[u8], from: usize) -> Option<usize> {
    let start = from.min(buf.len());
    buf[start..]
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| start + i + 4)
}

/// A parsed message head borrowing straight out of the read buffer:
/// the start line plus up to [`MAX_HEADERS`] name/value slices. No
/// allocation happens until the head is promoted to an owned
/// [`Request`] or [`Response`].
#[derive(Debug)]
pub struct Head<'a> {
    start_line: &'a str,
    headers: [(&'a str, &'a str); MAX_HEADERS],
    len: usize,
}

impl<'a> Head<'a> {
    /// The request or status line (without its CRLF).
    #[must_use]
    pub fn start_line(&self) -> &'a str {
        self.start_line
    }

    /// The header lines, in wire order.
    pub fn headers(&self) -> impl Iterator<Item = (&'a str, &'a str)> + '_ {
        self.headers[..self.len].iter().copied()
    }

    /// Looks up a header by name (ASCII case-insensitive). When a peer
    /// repeats a header the *last* occurrence wins, matching how the
    /// owned header map (a `BTreeMap` filled in wire order) behaves.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&'a str> {
        self.headers()
            .filter(|(n, _)| n.eq_ignore_ascii_case(name))
            .last()
            .map(|(_, v)| v)
    }

    /// The declared `content-length` (0 when absent), rejecting
    /// unparseable values and bodies beyond [`MAX_MESSAGE_BYTES`].
    pub fn content_length(&self) -> Result<usize, &'static str> {
        let len = match self.header("content-length") {
            None => 0,
            Some(v) => v.parse().map_err(|_| "bad content-length")?,
        };
        if len > MAX_MESSAGE_BYTES {
            return Err("body too large");
        }
        Ok(len)
    }
}

/// Parses a complete message head (`head` must end with `\r\n\r\n`, as
/// delimited by [`find_head_end`]) into borrowed slices. Fails closed on
/// non-UTF-8 heads, missing colons, or more than [`MAX_HEADERS`] lines.
pub fn parse_head(head: &[u8]) -> Result<Head<'_>, &'static str> {
    let text = head
        .strip_suffix(b"\r\n\r\n")
        .ok_or("unterminated head")
        .and_then(|t| std::str::from_utf8(t).map_err(|_| "head not utf-8"))?;
    let mut lines = text.split("\r\n");
    let start_line = lines.next().ok_or("empty head")?;
    let mut headers = [("", ""); MAX_HEADERS];
    let mut len = 0;
    for line in lines {
        let (name, value) = line.split_once(':').ok_or("bad header")?;
        if len >= MAX_HEADERS {
            return Err("too many headers");
        }
        headers[len] = (name.trim(), value.trim());
        len += 1;
    }
    Ok(Head {
        start_line,
        headers,
        len,
    })
}

/// Rebuilds the dispatched `(from, Request)` from a parsed head and its
/// body bytes — the inverse of [`encode_request_into`]. Envelope headers
/// ([`RESERVED_REQUEST_HEADERS`]) are consumed, everything else lands in
/// the request's header map under its lower-cased name.
pub fn build_request(head: &Head<'_>, body: &[u8]) -> Result<(String, Request), &'static str> {
    let mut parts = head.start_line().split_whitespace();
    let method = match parts.next() {
        Some("GET") => Method::Get,
        Some("POST") => Method::Post,
        Some("PUT") => Method::Put,
        Some("DELETE") => Method::Delete,
        _ => return Err("unsupported method"),
    };
    let target = parts.next().ok_or("missing target")?;
    if parts.next() != Some("HTTP/1.1") {
        return Err("not HTTP/1.1");
    }
    let host = head.header("host").ok_or("missing host header")?;
    let from = head.header("x-ucam-from").unwrap_or("unknown").to_owned();

    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    if !path.starts_with('/') {
        return Err("target not origin-form");
    }
    let mut url = Url::new(host, path);
    if let Some(qs) = query_str {
        for pair in qs.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            url = url.with_query(&decode_component(k), &decode_component(v));
        }
    }

    let mut req = Request::to_url(method, url).with_body(String::from_utf8_lossy(body));
    if let Some(form) = head.header("x-ucam-form") {
        for pair in form.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            req.form.insert(decode_component(k), decode_component(v));
        }
    }
    for (name, value) in head.headers() {
        if !RESERVED_REQUEST_HEADERS
            .iter()
            .any(|r| name.eq_ignore_ascii_case(r))
        {
            req.headers
                .insert(name.to_ascii_lowercase(), value.to_owned());
        }
    }
    Ok((from, req))
}

/// Rebuilds a [`Response`] from a parsed head and its body bytes — the
/// inverse of [`encode_response_into`]. The framing headers
/// (`content-length`, `connection`) are consumed.
pub fn build_response(head: &Head<'_>, body: &[u8]) -> Result<Response, &'static str> {
    let mut parts = head.start_line().split_whitespace();
    if parts.next() != Some("HTTP/1.1") {
        return Err("bad status line");
    }
    let code: u16 = parts
        .next()
        .and_then(|c| c.parse().ok())
        .ok_or("bad status code")?;
    let status = Status::from_code(code).ok_or("unknown status code")?;

    let mut resp = Response::with_status(status).with_body(String::from_utf8_lossy(body));
    for (name, value) in head.headers() {
        if !name.eq_ignore_ascii_case("content-length") && !name.eq_ignore_ascii_case("connection")
        {
            resp.headers
                .insert(name.to_ascii_lowercase(), value.to_owned());
        }
    }
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_request() -> Request {
        Request::new(Method::Post, "https://h.example/r/pics?p=a%20b&q=2")
            .with_param("scope", "read write")
            .with_param("realm", "photos")
            .with_header("authorization", "Bearer tok.abc")
            .with_header("x-echo", "marco")
            .with_body("{\"k\":1}")
    }

    #[test]
    fn request_encoding_is_byte_stable() {
        let mut out = Vec::new();
        encode_request_into(&mut out, "tester", &sample_request());
        let wire = String::from_utf8(out).unwrap();
        assert_eq!(
            wire,
            "POST /r/pics?p=a%20b&q=2 HTTP/1.1\r\n\
             host: h.example\r\n\
             x-ucam-from: tester\r\n\
             x-ucam-form: realm=photos&scope=read%20write\r\n\
             authorization: Bearer tok.abc\r\n\
             x-echo: marco\r\n\
             content-length: 7\r\n\
             \r\n\
             {\"k\":1}"
        );
    }

    #[test]
    fn response_encoding_is_byte_stable() {
        let resp = Response::ok()
            .with_header("x-token", "abc")
            .with_body("granted");
        let mut out = Vec::new();
        encode_response_into(&mut out, &resp);
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "HTTP/1.1 200 OK\r\nx-token: abc\r\ncontent-length: 7\r\n\r\ngranted"
        );
    }

    #[test]
    fn request_roundtrips_through_parse() {
        let req = sample_request();
        let mut out = Vec::new();
        encode_request_into(&mut out, "tester", &req);
        let head_end = find_head_end(&out, 0).unwrap();
        let head = parse_head(&out[..head_end]).unwrap();
        let body_len = head.content_length().unwrap();
        assert_eq!(out.len(), head_end + body_len);
        let (from, back) = build_request(&head, &out[head_end..]).unwrap();
        assert_eq!(from, "tester");
        assert_eq!(back, req);
    }

    #[test]
    fn response_roundtrips_through_parse() {
        let resp = Response::redirect(&Url::new("am.example", "/authorize").with_query("r", "1"))
            .with_body("see other");
        let mut out = Vec::new();
        encode_response_into(&mut out, &resp);
        let head_end = find_head_end(&out, 0).unwrap();
        let head = parse_head(&out[..head_end]).unwrap();
        let back = build_response(&head, &out[head_end..]).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn sanitized_headers_keep_length() {
        let req =
            Request::new(Method::Get, "https://h.example/r").with_header("x-note", "line\r\nbreak");
        let mut out = Vec::new();
        encode_request_into(&mut out, "t", &req);
        assert_eq!(out.len(), request_wire_len("t", &req));
        assert!(find_head_end(&out, 0).is_some());
    }

    #[test]
    fn find_head_end_is_incremental() {
        let wire = b"HTTP/1.1 200 OK\r\ncontent-length: 0\r\n\r\n";
        for split in 0..wire.len() {
            let partial = &wire[..split];
            assert_eq!(find_head_end(partial, 0), None, "split at {split}");
        }
        // Resuming from (len - 3) after each extension still finds it.
        let mut from = 0;
        let mut buf = Vec::new();
        let mut found = None;
        for &b in wire.iter() {
            buf.push(b);
            found = find_head_end(&buf, from);
            if found.is_some() {
                break;
            }
            from = buf.len().saturating_sub(3);
        }
        assert_eq!(found, Some(wire.len()));
    }

    #[test]
    fn malformed_heads_fail_closed() {
        let cases: &[(&[u8], &str)] = &[
            (
                b"BREW /pot HTTP/1.1\r\nhost: h\r\n\r\n",
                "unsupported method",
            ),
            (b"GET /p HTTP/1.0\r\nhost: h\r\n\r\n", "not HTTP/1.1"),
            (b"GET HTTP/1.1\r\nhost: h\r\n\r\n", "not HTTP/1.1"),
            (b"GET /p HTTP/1.1\r\n\r\n", "missing host header"),
            (
                b"GET p HTTP/1.1\r\nhost: h\r\n\r\n",
                "target not origin-form",
            ),
        ];
        for (wire, want) in cases {
            let head_end = find_head_end(wire, 0).unwrap();
            let head = parse_head(&wire[..head_end]).unwrap();
            let err = build_request(&head, b"").unwrap_err();
            assert_eq!(&err, want);
        }
        assert_eq!(
            parse_head(b"GET / HTTP/1.1\r\nno-colon-line\r\n\r\n").unwrap_err(),
            "bad header"
        );
        assert_eq!(
            parse_head(b"GET / HTTP/1.1\xff\r\n\r\n").unwrap_err(),
            "head not utf-8"
        );
        let mut many = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..=MAX_HEADERS {
            many.extend_from_slice(format!("h{i}: v\r\n").as_bytes());
        }
        many.extend_from_slice(b"\r\n");
        assert_eq!(parse_head(&many).unwrap_err(), "too many headers");
    }

    #[test]
    fn content_length_bounds() {
        let head_of = |s: &'static str| {
            let wire = format!("GET / HTTP/1.1\r\ncontent-length: {s}\r\n\r\n");
            let owned = wire.into_bytes();
            parse_head(Box::leak(owned.into_boxed_slice())).unwrap()
        };
        assert_eq!(head_of("12").content_length(), Ok(12));
        assert_eq!(head_of("nope").content_length(), Err("bad content-length"));
        assert_eq!(
            head_of("999999999999").content_length(),
            Err("body too large")
        );
    }

    proptest! {
        #[test]
        fn encoded_request_len_matches_arithmetic_twin(
            path_seg in "[a-z0-9]{0,12}",
            qk in "[a-zA-Z0-9 &=%/_.:-]{0,10}",
            qv in "[a-zA-Z0-9 &=%/_.:-]{0,16}",
            fk in "[a-zA-Z0-9 &=%/_.:-]{0,10}",
            fv in "[a-zA-Z0-9 &=%/_.:-]{0,16}",
            // No edge whitespace: header values are trimmed on parse.
            hv in "([!-~]([ -~]{0,22}[!-~])?)?",
            body in "[a-zA-Z0-9{}\", :\\n]{0,64}",
            from in "[a-z.]{1,16}",
        ) {
            let mut url = Url::new("h.example", &format!("/{path_seg}"));
            if !qk.is_empty() { url = url.with_query(&qk, &qv); }
            let mut req = Request::to_url(Method::Post, url).with_body(body);
            if !fk.is_empty() { req = req.with_param(&fk, &fv); }
            req = req.with_header("x-app", &hv);

            let mut out = Vec::new();
            encode_request_into(&mut out, &from, &req);
            prop_assert_eq!(out.len(), request_wire_len(&from, &req));

            let head_end = find_head_end(&out, 0).unwrap();
            let head = parse_head(&out[..head_end]).unwrap();
            prop_assert_eq!(head.content_length().unwrap(), out.len() - head_end);
            let (got_from, back) = build_request(&head, &out[head_end..]).unwrap();
            prop_assert_eq!(got_from, from);
            prop_assert_eq!(back, req);
        }

        #[test]
        fn encoded_response_len_matches_arithmetic_twin(
            code_ix in 0usize..12,
            // No edge whitespace: header values are trimmed on parse.
            hv in "([!-~]([ -~]{0,22}[!-~])?)?",
            body in "[a-zA-Z0-9{}\", :\\n]{0,64}",
        ) {
            let codes = [200u16, 201, 202, 204, 302, 400, 401, 402, 403, 404, 409, 503];
            let status = Status::from_code(codes[code_ix]).unwrap();
            let mut resp = Response::with_status(status).with_body(body);
            resp = resp.with_header("x-app", &hv);

            let mut out = Vec::new();
            encode_response_into(&mut out, &resp);
            prop_assert_eq!(out.len(), response_wire_len(&resp));

            let head_end = find_head_end(&out, 0).unwrap();
            let head = parse_head(&out[..head_end]).unwrap();
            let back = build_response(&head, &out[head_end..]).unwrap();
            prop_assert_eq!(back, resp);
        }

        #[test]
        fn parser_never_panics_on_noise(noise in proptest::collection::vec(any::<u8>(), 0..256)) {
            if let Some(head_end) = find_head_end(&noise, 0) {
                if let Ok(head) = parse_head(&noise[..head_end]) {
                    let _ = head.content_length();
                    let _ = build_request(&head, &noise[head_end..]);
                    let _ = build_response(&head, &noise[head_end..]);
                }
            }
        }
    }
}
