//! A minimal URL type sufficient for the simulated Web environment.
//!
//! Every simulated application is addressed by an *authority* (host name,
//! e.g. `webpics.example`); resources live under paths; protocol steps pass
//! parameters in the query string (e.g. the AM location a User supplies when
//! delegating access control, §V.B.1).

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// A parsed URL: `scheme://authority/path?query`.
///
/// Query keys are kept sorted (BTreeMap) so formatting is deterministic —
/// important for reproducible protocol traces.
///
/// # Example
///
/// ```
/// use ucam_webenv::Url;
///
/// let url: Url = "https://am.example/authorize?realm=photos".parse()?;
/// assert_eq!(url.authority(), "am.example");
/// assert_eq!(url.path(), "/authorize");
/// assert_eq!(url.query("realm"), Some("photos"));
/// # Ok::<(), ucam_webenv::ParseUrlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Url {
    scheme: String,
    authority: String,
    path: String,
    query: BTreeMap<String, String>,
}

impl Url {
    /// Builds a URL from an authority and an absolute path.
    ///
    /// # Panics
    ///
    /// Panics if `path` does not start with `/`.
    #[must_use]
    pub fn new(authority: &str, path: &str) -> Self {
        assert!(path.starts_with('/'), "path must be absolute: {path}");
        Url {
            scheme: "https".to_owned(),
            authority: authority.to_owned(),
            path: path.to_owned(),
            query: BTreeMap::new(),
        }
    }

    /// Returns the scheme (always `https` for constructed URLs).
    #[must_use]
    pub fn scheme(&self) -> &str {
        &self.scheme
    }

    /// Returns the authority (host name) component.
    #[must_use]
    pub fn authority(&self) -> &str {
        &self.authority
    }

    /// Returns the absolute path component.
    #[must_use]
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Returns the path split into non-empty segments.
    ///
    /// # Example
    ///
    /// ```
    /// let url = ucam_webenv::Url::new("h.example", "/a/b/c");
    /// assert_eq!(url.segments(), vec!["a", "b", "c"]);
    /// ```
    #[must_use]
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }

    /// Looks up a query parameter.
    #[must_use]
    pub fn query(&self, key: &str) -> Option<&str> {
        self.query.get(key).map(String::as_str)
    }

    /// Returns all query parameters.
    #[must_use]
    pub fn query_pairs(&self) -> &BTreeMap<String, String> {
        &self.query
    }

    /// Returns a copy of this URL with the query parameter set.
    #[must_use]
    pub fn with_query(mut self, key: &str, value: &str) -> Self {
        self.query.insert(key.to_owned(), value.to_owned());
        self
    }

    /// Returns a copy of this URL with a different path.
    ///
    /// # Panics
    ///
    /// Panics if `path` does not start with `/`.
    #[must_use]
    pub fn with_path(mut self, path: &str) -> Self {
        assert!(path.starts_with('/'), "path must be absolute: {path}");
        self.path = path.to_owned();
        self
    }

    /// Returns the origin-form request target for an HTTP/1.1 request
    /// line: the path plus the percent-encoded query string.
    ///
    /// # Example
    ///
    /// ```
    /// let url = ucam_webenv::Url::new("h.example", "/r").with_query("k", "a b");
    /// assert_eq!(url.path_and_query(), "/r?k=a%20b");
    /// ```
    #[must_use]
    pub fn path_and_query(&self) -> String {
        let mut out = self.path.clone();
        let mut sep = '?';
        for (k, v) in &self.query {
            out.push(sep);
            out.push_str(&encode_component(k));
            out.push('=');
            out.push_str(&encode_component(v));
            sep = '&';
        }
        out
    }
}

/// Percent-encodes a query component (space, `&`, `=`, `%`, `?`, `#`, `/`
/// and non-ASCII bytes). Shared with the HTTP/1.1 codec, which uses the
/// same escaping for form pairs on the wire.
pub(crate) fn encode_component(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char);
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Decodes percent-encoding; invalid escapes are passed through literally.
pub(crate) fn decode_component(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            if let Some(hex) = bytes
                .get(i + 1..i + 3)
                .and_then(|h| std::str::from_utf8(h).ok())
                .and_then(|h| u8::from_str_radix(h, 16).ok())
            {
                out.push(hex);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}{}", self.scheme, self.authority, self.path)?;
        let mut sep = '?';
        for (k, v) in &self.query {
            write!(f, "{sep}{}={}", encode_component(k), encode_component(v))?;
            sep = '&';
        }
        Ok(())
    }
}

/// An error produced when parsing a malformed URL string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseUrlError {
    /// The input lacks the `scheme://` separator.
    MissingScheme,
    /// The authority component is empty.
    EmptyAuthority,
}

impl fmt::Display for ParseUrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseUrlError::MissingScheme => write!(f, "url is missing a scheme"),
            ParseUrlError::EmptyAuthority => write!(f, "url authority is empty"),
        }
    }
}

impl std::error::Error for ParseUrlError {}

impl FromStr for Url {
    type Err = ParseUrlError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (scheme, rest) = s.split_once("://").ok_or(ParseUrlError::MissingScheme)?;
        let (authority_path, query_str) = match rest.split_once('?') {
            Some((a, q)) => (a, Some(q)),
            None => (rest, None),
        };
        let (authority, path) = match authority_path.split_once('/') {
            Some((a, p)) => (a, format!("/{p}")),
            None => (authority_path, "/".to_owned()),
        };
        if authority.is_empty() {
            return Err(ParseUrlError::EmptyAuthority);
        }
        let mut query = BTreeMap::new();
        if let Some(qs) = query_str {
            for pair in qs.split('&').filter(|p| !p.is_empty()) {
                let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
                query.insert(decode_component(k), decode_component(v));
            }
        }
        Ok(Url {
            scheme: scheme.to_owned(),
            authority: authority.to_owned(),
            path,
            query,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parse_basic() {
        let u: Url = "https://webpics.example/albums/1".parse().unwrap();
        assert_eq!(u.scheme(), "https");
        assert_eq!(u.authority(), "webpics.example");
        assert_eq!(u.path(), "/albums/1");
        assert!(u.query_pairs().is_empty());
    }

    #[test]
    fn parse_no_path() {
        let u: Url = "https://am.example".parse().unwrap();
        assert_eq!(u.path(), "/");
    }

    #[test]
    fn parse_query() {
        let u: Url = "https://am.example/a?x=1&y=two".parse().unwrap();
        assert_eq!(u.query("x"), Some("1"));
        assert_eq!(u.query("y"), Some("two"));
        assert_eq!(u.query("z"), None);
    }

    #[test]
    fn parse_errors() {
        assert_eq!(
            "no-scheme".parse::<Url>(),
            Err(ParseUrlError::MissingScheme)
        );
        assert_eq!(
            "https:///path".parse::<Url>(),
            Err(ParseUrlError::EmptyAuthority)
        );
    }

    #[test]
    fn display_roundtrip() {
        let u = Url::new("h.example", "/r/1")
            .with_query("realm", "my photos")
            .with_query("tok", "a=b&c");
        let s = u.to_string();
        let back: Url = s.parse().unwrap();
        assert_eq!(back, u);
    }

    #[test]
    fn segments() {
        let u = Url::new("h.example", "/a//b/");
        assert_eq!(u.segments(), vec!["a", "b"]);
    }

    #[test]
    fn with_path_replaces() {
        let u = Url::new("h.example", "/a")
            .with_path("/b")
            .with_query("k", "v");
        assert_eq!(u.path(), "/b");
        assert_eq!(u.to_string(), "https://h.example/b?k=v");
    }

    #[test]
    #[should_panic(expected = "path must be absolute")]
    fn relative_path_panics() {
        let _ = Url::new("h.example", "relative");
    }

    #[test]
    fn percent_encoding_special_chars() {
        let u = Url::new("h.example", "/p").with_query("q", "a&b=c?d#e f");
        let s = u.to_string();
        assert!(!s.contains(' '));
        let back: Url = s.parse().unwrap();
        assert_eq!(back.query("q"), Some("a&b=c?d#e f"));
    }

    proptest! {
        #[test]
        fn query_roundtrip(
            key in "[a-zA-Z0-9 &=%?#/_.:-]{1,20}",
            val in "[a-zA-Z0-9 &=%?#/_.:-]{0,30}",
        ) {
            let u = Url::new("h.example", "/p").with_query(&key, &val);
            let back: Url = u.to_string().parse().unwrap();
            prop_assert_eq!(back.query(&key), Some(val.as_str()));
        }
    }
}
