//! Protocol trace recording.
//!
//! The paper presents its protocol as sequence diagrams (Figs. 2–6). The
//! [`TraceRecorder`] captures every message and annotation flowing through
//! the [`SimNet`](crate::net::SimNet) so tests can assert the exact sequence
//! and examples can render the diagrams as text.

use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// The kind of a trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A request message from one party to another.
    Request,
    /// The response to the most recent request between the parties.
    Response,
    /// A free-form annotation (phase labels, internal decisions).
    Note,
}

/// One recorded protocol event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Sending party (authority or actor label, e.g. `browser:bob`).
    pub from: String,
    /// Receiving party.
    pub to: String,
    /// Human-readable description (`GET /photos/1`, `302 -> am.example`…).
    pub label: String,
    /// Event kind.
    pub kind: TraceKind,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let arrow = match self.kind {
            TraceKind::Request => "->",
            TraceKind::Response => "<-",
            TraceKind::Note => "..",
        };
        match self.kind {
            TraceKind::Response => write!(f, "{} {} {}: {}", self.to, arrow, self.from, self.label),
            _ => write!(f, "{} {} {}: {}", self.from, arrow, self.to, self.label),
        }
    }
}

/// A shared, thread-safe recorder of protocol events.
///
/// Cloning yields a handle to the same underlying buffer.
///
/// # Example
///
/// ```
/// use ucam_webenv::{TraceKind, TraceRecorder};
///
/// let trace = TraceRecorder::new();
/// trace.note("user:bob", "begins delegation");
/// trace.record("host.example", "am.example", "POST /trust", TraceKind::Request);
/// assert_eq!(trace.events().len(), 2);
/// assert!(trace.render().contains("POST /trust"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        TraceRecorder::default()
    }

    /// Records an event.
    pub fn record(&self, from: &str, to: &str, label: &str, kind: TraceKind) {
        self.events.lock().push(TraceEvent {
            from: from.to_owned(),
            to: to.to_owned(),
            label: label.to_owned(),
            kind,
        });
    }

    /// Records a free-form annotation attributed to `who`.
    pub fn note(&self, who: &str, label: &str) {
        self.record(who, who, label, TraceKind::Note);
    }

    /// Returns a snapshot of all recorded events.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    /// Clears the buffer.
    pub fn clear(&self) {
        self.events.lock().clear();
    }

    /// Returns the number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Returns `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Renders the trace as a text sequence diagram, one event per line.
    #[must_use]
    pub fn render(&self) -> String {
        let events = self.events.lock();
        let mut out = String::new();
        for e in events.iter() {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }

    /// Returns the labels of all [`TraceKind::Request`] events — the message
    /// sequence used to assert protocol figures in tests.
    #[must_use]
    pub fn request_labels(&self) -> Vec<String> {
        self.events
            .lock()
            .iter()
            .filter(|e| e.kind == TraceKind::Request)
            .map(|e| e.label.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let t = TraceRecorder::new();
        assert!(t.is_empty());
        t.record("a", "b", "GET /x", TraceKind::Request);
        t.record("a", "b", "200", TraceKind::Response);
        assert_eq!(t.len(), 2);
        let events = t.events();
        assert_eq!(events[0].kind, TraceKind::Request);
        assert_eq!(events[1].kind, TraceKind::Response);
    }

    #[test]
    fn clones_share_buffer() {
        let t = TraceRecorder::new();
        let t2 = t.clone();
        t2.note("x", "hello");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn render_formats_arrows() {
        let t = TraceRecorder::new();
        t.record("a", "b", "GET /x", TraceKind::Request);
        t.record("a", "b", "200", TraceKind::Response);
        t.note("a", "thinking");
        let text = t.render();
        assert!(text.contains("a -> b: GET /x"));
        assert!(text.contains("b <- a: 200"));
        assert!(text.contains("a .. a: thinking"));
    }

    #[test]
    fn request_labels_filters() {
        let t = TraceRecorder::new();
        t.record("a", "b", "GET /x", TraceKind::Request);
        t.record("a", "b", "200", TraceKind::Response);
        t.record("b", "c", "POST /y", TraceKind::Request);
        assert_eq!(t.request_labels(), vec!["GET /x", "POST /y"]);
    }

    #[test]
    fn clear_empties() {
        let t = TraceRecorder::new();
        t.note("a", "x");
        t.clear();
        assert!(t.is_empty());
    }
}
