//! Protocol trace recording.
//!
//! The paper presents its protocol as sequence diagrams (Figs. 2–6). The
//! [`TraceRecorder`] captures every message and annotation flowing through
//! the [`SimNet`](crate::net::SimNet) so tests can assert the exact sequence
//! and examples can render the diagrams as text.
//!
//! Recording is designed to cost nothing on the dispatch hot path when it
//! is not wanted (DESIGN.md §9):
//!
//! * an atomic **enable flag** is checked before any label is built — the
//!   lazy [`TraceRecorder::record_with`] form takes the label as a closure
//!   that is never invoked while recording is disabled, so a trace-off
//!   dispatch performs no label `format!` and touches no lock;
//! * when enabled, events land in a **bounded ring buffer**: once
//!   capacity is reached the oldest event is dropped and counted in
//!   [`TraceRecorder::dropped`], so a long soak cannot grow memory without
//!   bound (the old recorder pushed into an unbounded `Vec`).

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Default bound on retained events. Large enough for every protocol
/// figure and example in the repo; small enough that an accidentally
/// trace-on soak stays bounded.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// The kind of a trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A request message from one party to another.
    Request,
    /// The response to the most recent request between the parties.
    Response,
    /// A free-form annotation (phase labels, internal decisions).
    Note,
}

/// One recorded protocol event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Sending party (authority or actor label, e.g. `browser:bob`).
    pub from: String,
    /// Receiving party.
    pub to: String,
    /// Human-readable description (`GET /photos/1`, `302 -> am.example`…).
    pub label: String,
    /// Event kind.
    pub kind: TraceKind,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let arrow = match self.kind {
            TraceKind::Request => "->",
            TraceKind::Response => "<-",
            TraceKind::Note => "..",
        };
        match self.kind {
            TraceKind::Response => write!(f, "{} {} {}: {}", self.to, arrow, self.from, self.label),
            _ => write!(f, "{} {} {}: {}", self.from, arrow, self.to, self.label),
        }
    }
}

/// Shared recorder state behind every cloned handle.
#[derive(Debug)]
struct Inner {
    enabled: AtomicBool,
    events: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
    dropped: AtomicU64,
}

/// A shared, thread-safe recorder of protocol events.
///
/// Cloning yields a handle to the same underlying buffer. Recording is
/// enabled by default; hot loops (experiments, benches, soaks) call
/// [`TraceRecorder::set_enabled`]`(false)` to make every record call a
/// single relaxed atomic load.
///
/// # Example
///
/// ```
/// use ucam_webenv::{TraceKind, TraceRecorder};
///
/// let trace = TraceRecorder::new();
/// trace.note("user:bob", "begins delegation");
/// trace.record("host.example", "am.example", "POST /trust", TraceKind::Request);
/// assert_eq!(trace.events().len(), 2);
/// assert!(trace.render().contains("POST /trust"));
///
/// trace.set_enabled(false);
/// trace.record_with("a", "b", TraceKind::Request, || unreachable!("label not built"));
/// assert_eq!(trace.events().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    inner: Arc<Inner>,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceRecorder {
    /// Creates an empty, enabled recorder with the default capacity.
    #[must_use]
    pub fn new() -> Self {
        TraceRecorder::default()
    }

    /// Creates an empty, enabled recorder retaining at most `capacity`
    /// events (the oldest are dropped first once full).
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero — disable recording instead.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "zero capacity: use set_enabled(false)");
        TraceRecorder {
            inner: Arc::new(Inner {
                enabled: AtomicBool::new(true),
                events: Mutex::new(VecDeque::new()),
                capacity,
                dropped: AtomicU64::new(0),
            }),
        }
    }

    /// Turns recording on or off. While off, every record call returns
    /// after one relaxed atomic load: labels are not built, no lock is
    /// touched.
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether events are currently being recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// The maximum number of retained events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Number of events evicted from the ring because it was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Records an event with an eagerly built label. Prefer
    /// [`TraceRecorder::record_with`] on hot paths so the label is not
    /// allocated while recording is disabled.
    pub fn record(&self, from: &str, to: &str, label: &str, kind: TraceKind) {
        self.record_with(from, to, kind, || label.to_owned());
    }

    /// Records an event whose label is built lazily: `label` runs only
    /// when recording is enabled, so a disabled recorder costs one atomic
    /// load and zero allocations.
    pub fn record_with(
        &self,
        from: &str,
        to: &str,
        kind: TraceKind,
        label: impl FnOnce() -> String,
    ) {
        if !self.is_enabled() {
            return;
        }
        let event = TraceEvent {
            from: from.to_owned(),
            to: to.to_owned(),
            label: label(),
            kind,
        };
        let mut events = self.inner.events.lock();
        if events.len() >= self.inner.capacity {
            events.pop_front();
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(event);
    }

    /// Records a free-form annotation attributed to `who`.
    pub fn note(&self, who: &str, label: &str) {
        self.record(who, who, label, TraceKind::Note);
    }

    /// Lazy-label form of [`TraceRecorder::note`].
    pub fn note_with(&self, who: &str, label: impl FnOnce() -> String) {
        self.record_with(who, who, TraceKind::Note, label);
    }

    /// Returns a snapshot of all retained events.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.events.lock().iter().cloned().collect()
    }

    /// Clears the buffer and the dropped-events counter.
    pub fn clear(&self) {
        self.inner.events.lock().clear();
        self.inner.dropped.store(0, Ordering::Relaxed);
    }

    /// Returns the number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.events.lock().len()
    }

    /// Returns `true` when nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.events.lock().is_empty()
    }

    /// Renders the trace as a text sequence diagram, one event per line.
    #[must_use]
    pub fn render(&self) -> String {
        let events = self.inner.events.lock();
        let mut out = String::new();
        for e in events.iter() {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }

    /// Returns the labels of all [`TraceKind::Request`] events — the message
    /// sequence used to assert protocol figures in tests.
    #[must_use]
    pub fn request_labels(&self) -> Vec<String> {
        self.inner
            .events
            .lock()
            .iter()
            .filter(|e| e.kind == TraceKind::Request)
            .map(|e| e.label.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let t = TraceRecorder::new();
        assert!(t.is_empty());
        t.record("a", "b", "GET /x", TraceKind::Request);
        t.record("a", "b", "200", TraceKind::Response);
        assert_eq!(t.len(), 2);
        let events = t.events();
        assert_eq!(events[0].kind, TraceKind::Request);
        assert_eq!(events[1].kind, TraceKind::Response);
    }

    #[test]
    fn clones_share_buffer() {
        let t = TraceRecorder::new();
        let t2 = t.clone();
        t2.note("x", "hello");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn clones_share_enable_flag() {
        let t = TraceRecorder::new();
        let t2 = t.clone();
        t2.set_enabled(false);
        t.note("x", "invisible");
        assert!(t.is_empty());
        t2.set_enabled(true);
        t.note("x", "visible");
        assert_eq!(t2.len(), 1);
    }

    #[test]
    fn render_formats_arrows() {
        let t = TraceRecorder::new();
        t.record("a", "b", "GET /x", TraceKind::Request);
        t.record("a", "b", "200", TraceKind::Response);
        t.note("a", "thinking");
        let text = t.render();
        assert!(text.contains("a -> b: GET /x"));
        assert!(text.contains("b <- a: 200"));
        assert!(text.contains("a .. a: thinking"));
    }

    #[test]
    fn request_labels_filters() {
        let t = TraceRecorder::new();
        t.record("a", "b", "GET /x", TraceKind::Request);
        t.record("a", "b", "200", TraceKind::Response);
        t.record("b", "c", "POST /y", TraceKind::Request);
        assert_eq!(t.request_labels(), vec!["GET /x", "POST /y"]);
    }

    #[test]
    fn clear_empties_and_resets_dropped() {
        let t = TraceRecorder::with_capacity(2);
        t.note("a", "x");
        t.note("a", "y");
        t.note("a", "z"); // evicts "x"
        assert_eq!(t.dropped(), 1);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn disabled_recorder_never_builds_labels() {
        let t = TraceRecorder::new();
        t.set_enabled(false);
        t.record_with("a", "b", TraceKind::Request, || {
            panic!("label must not be built while disabled")
        });
        t.note_with("a", || {
            panic!("note label must not be built while disabled")
        });
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let t = TraceRecorder::with_capacity(3);
        for i in 0..5 {
            t.note("a", &format!("e{i}"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let labels: Vec<String> = t.events().into_iter().map(|e| e.label).collect();
        assert_eq!(labels, vec!["e2", "e3", "e4"]);
        assert!(t.render().contains("e4"));
    }

    #[test]
    #[should_panic(expected = "zero capacity")]
    fn zero_capacity_rejected() {
        let _ = TraceRecorder::with_capacity(0);
    }
}
