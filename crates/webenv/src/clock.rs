//! A shared simulated clock.
//!
//! All token lifetimes, decision-cache TTLs and modelled network latencies in
//! the workspace are expressed against this logical clock, which makes every
//! experiment deterministic and lets benches report modelled WAN time
//! independently of wall-clock CPU time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically advancing logical clock, in milliseconds.
///
/// Cloning a `SimClock` yields a handle to the *same* underlying clock.
///
/// # Example
///
/// ```
/// use ucam_webenv::SimClock;
///
/// let clock = SimClock::new();
/// assert_eq!(clock.now_ms(), 0);
/// clock.advance_ms(150);
/// assert_eq!(clock.now_ms(), 150);
/// let handle = clock.clone();
/// handle.advance_ms(50);
/// assert_eq!(clock.now_ms(), 200);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    millis: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock at time zero.
    #[must_use]
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Returns the current simulated time in milliseconds.
    #[must_use]
    pub fn now_ms(&self) -> u64 {
        self.millis.load(Ordering::SeqCst)
    }

    /// Advances the clock by `delta` milliseconds and returns the new time.
    pub fn advance_ms(&self, delta: u64) -> u64 {
        self.millis.fetch_add(delta, Ordering::SeqCst) + delta
    }

    /// Resets the clock to zero (used between benchmark iterations).
    pub fn reset(&self) {
        self.millis.store(0, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(SimClock::new().now_ms(), 0);
    }

    #[test]
    fn advance_accumulates() {
        let c = SimClock::new();
        assert_eq!(c.advance_ms(10), 10);
        assert_eq!(c.advance_ms(5), 15);
        assert_eq!(c.now_ms(), 15);
    }

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance_ms(7);
        assert_eq!(b.now_ms(), 7);
    }

    #[test]
    fn reset_returns_to_zero() {
        let c = SimClock::new();
        c.advance_ms(42);
        c.reset();
        assert_eq!(c.now_ms(), 0);
    }

    #[test]
    fn threads_observe_advances() {
        let c = SimClock::new();
        let c2 = c.clone();
        let t = std::thread::spawn(move || {
            for _ in 0..1000 {
                c2.advance_ms(1);
            }
        });
        for _ in 0..1000 {
            c.advance_ms(1);
        }
        t.join().unwrap();
        assert_eq!(c.now_ms(), 2000);
    }
}
