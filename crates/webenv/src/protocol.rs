//! Shared Host↔AM wire protocol — the versioned `/protection/v1` surface.
//!
//! The paper's phase-5/6 exchange (Fig. 6) is a Host asking an AM for an
//! access decision. Three crates speak this wire format: the AM serializes
//! decisions, the Host parses them fail-closed, and the baselines mimic the
//! same shape for apples-to-apples byte accounting. Historically each side
//! hand-rolled its half (the Host held a private `DecisionBody`, the AM
//! format-stringed JSON); this module is the single shared definition.
//!
//! Everything here is dependency-free by design: the JSON encoder and the
//! fail-closed parser are hand-written so that crates without `serde_json`
//! (this one, baselines) can still speak the protocol. The parser is strict
//! where it matters for safety — a body that does not parse as a JSON
//! object with `"decision":"permit"` is **never** treated as a permit.
//!
//! # Routes
//!
//! | constant | path | purpose |
//! |---|---|---|
//! | [`DECISION_PATH`] | `/protection/v1/decision` | single decision query (Fig. 6) |
//! | [`BATCH_DECISIONS_PATH`] | `/protection/v1/decisions` | batched decision queries |
//! | [`EPOCH_PUSH_PATH`] | `/protection/v1/epoch` | AM→Host async policy-epoch push |
//! | [`LEGACY_DECISION_PATH`] | `/decision` | pre-versioning alias, kept for old Hosts |

/// Versioned single-decision route (Fig. 6, phase 5/6).
pub const DECISION_PATH: &str = "/protection/v1/decision";
/// Versioned batch-decision route: the body is a JSON array of
/// [`BatchItem`]s, the response a JSON array of [`DecisionBody`]s in the
/// same order.
pub const BATCH_DECISIONS_PATH: &str = "/protection/v1/decisions";
/// Versioned AM→Host policy-epoch push route (params: `owner`, `epoch`).
pub const EPOCH_PUSH_PATH: &str = "/protection/v1/epoch";
/// The unversioned decision route kept as a compatibility alias.
pub const LEGACY_DECISION_PATH: &str = "/decision";

/// Maximum number of queries an AM accepts in one batch request. Requests
/// above the cap are rejected with a 400 rather than silently truncated.
pub const MAX_BATCH: usize = 32;

/// The decision body a Host receives from an AM (Fig. 6 step 6).
///
/// `decision` is the verdict string (`"permit"` or `"deny"`); only an
/// exact `"permit"` grants. `cacheable_ms` and `policy_epoch` accompany
/// permits so the Host can cache the decision and later invalidate it on
/// epoch advance (DESIGN.md §8). `reason` accompanies denies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionBody {
    /// Verdict: `"permit"` grants, anything else denies.
    pub decision: String,
    /// How long (ms) the Host may cache a permit; absent or 0 means
    /// do not cache.
    pub cacheable_ms: Option<u64>,
    /// The owner's policy epoch the decision was evaluated under.
    pub policy_epoch: Option<u64>,
    /// Human-readable denial reason, if any.
    pub reason: Option<String>,
}

impl DecisionBody {
    /// A permit valid for `cacheable_ms`, stamped with `policy_epoch`.
    #[must_use]
    pub fn permit(cacheable_ms: u64, policy_epoch: u64) -> Self {
        Self {
            decision: "permit".into(),
            cacheable_ms: Some(cacheable_ms),
            policy_epoch: Some(policy_epoch),
            reason: None,
        }
    }

    /// A deny carrying a human-readable `reason`.
    #[must_use]
    pub fn deny(reason: &str) -> Self {
        Self {
            decision: "deny".into(),
            cacheable_ms: None,
            policy_epoch: None,
            reason: Some(reason.to_owned()),
        }
    }

    /// A per-item protocol failure inside a batch response (e.g. an
    /// expired token). Distinct from [`DecisionBody::deny`] — a deny is a
    /// policy verdict, an error means the query never reached policy
    /// evaluation; Hosts map errors to their single-query 401 handling.
    #[must_use]
    pub fn error(reason: &str) -> Self {
        Self {
            decision: "error".into(),
            cacheable_ms: None,
            policy_epoch: None,
            reason: Some(reason.to_owned()),
        }
    }

    /// Whether this batch item is a protocol-level failure (see
    /// [`DecisionBody::error`]).
    #[must_use]
    pub fn is_error(&self) -> bool {
        self.decision == "error"
    }

    /// Whether the verdict is exactly `"permit"`. A deny whose *reason*
    /// merely contains the word "permit" stays a deny.
    #[must_use]
    pub fn is_permit(&self) -> bool {
        self.decision == "permit"
    }

    /// Serializes to the canonical wire JSON. Field order is fixed
    /// (decision, cacheable_ms, policy_epoch, reason; absent fields are
    /// omitted) so byte counts are deterministic across runs.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push_str("{\"decision\":");
        push_json_string(&mut out, &self.decision);
        if let Some(ms) = self.cacheable_ms {
            out.push_str(",\"cacheable_ms\":");
            out.push_str(&ms.to_string());
        }
        if let Some(epoch) = self.policy_epoch {
            out.push_str(",\"policy_epoch\":");
            out.push_str(&epoch.to_string());
        }
        if let Some(reason) = &self.reason {
            out.push_str(",\"reason\":");
            push_json_string(&mut out, reason);
        }
        out.push('}');
        out
    }

    /// Parses a decision body, fail-closed: anything that is not a JSON
    /// object with a string `decision` field is an error, and the caller
    /// must treat errors as a refusal, never a permit.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on malformed JSON, a missing or non-string
    /// `decision`, or ill-typed optional fields.
    pub fn from_json(body: &str) -> Result<Self, WireError> {
        let value = parse_json(body)?;
        Self::from_value(&value)
    }

    fn from_value(value: &Json) -> Result<Self, WireError> {
        let Json::Object(fields) = value else {
            return Err(WireError::new("decision body is not a JSON object"));
        };
        let decision = match find(fields, "decision") {
            Some(Json::String(s)) => s.clone(),
            Some(_) => return Err(WireError::new("decision field is not a string")),
            None => return Err(WireError::new("decision field missing")),
        };
        Ok(Self {
            decision,
            cacheable_ms: opt_u64(fields, "cacheable_ms")?,
            policy_epoch: opt_u64(fields, "policy_epoch")?,
            reason: opt_string(fields, "reason")?,
        })
    }

    /// Historical convenience: the cacheable window of a body, where
    /// anything other than a well-formed permit yields 0 (uncacheable).
    /// This is the fail-closed projection Hosts used before the full
    /// parse result was public.
    #[must_use]
    pub fn parse_cacheable_ms(body: &str) -> u64 {
        match Self::from_json(body) {
            Ok(parsed) if parsed.is_permit() => parsed.cacheable_ms.unwrap_or(0),
            _ => 0,
        }
    }
}

/// One query inside a batch decision request: the per-item fields of the
/// paper's Fig. 6 query (the `host_token` rides on the request itself,
/// since a batch is scoped to one Host↔AM delegation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchItem {
    /// The requester's authorization token (phase 4 artifact).
    pub token: String,
    /// Resource identifier at the Host.
    pub resource: String,
    /// Action name (`read`, `write`, …).
    pub action: String,
    /// Requester label.
    pub requester: String,
}

impl BatchItem {
    fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"token\":");
        push_json_string(&mut out, &self.token);
        out.push_str(",\"resource\":");
        push_json_string(&mut out, &self.resource);
        out.push_str(",\"action\":");
        push_json_string(&mut out, &self.action);
        out.push_str(",\"requester\":");
        push_json_string(&mut out, &self.requester);
        out.push('}');
        out
    }

    fn from_value(value: &Json) -> Result<Self, WireError> {
        let Json::Object(fields) = value else {
            return Err(WireError::new("batch item is not a JSON object"));
        };
        let get = |key: &str| -> Result<String, WireError> {
            match find(fields, key) {
                Some(Json::String(s)) => Ok(s.clone()),
                _ => Err(WireError::new(&format!(
                    "batch item field {key} missing or not a string"
                ))),
            }
        };
        Ok(Self {
            token: get("token")?,
            resource: get("resource")?,
            action: get("action")?,
            requester: get("requester")?,
        })
    }
}

/// Encodes a batch request body: a JSON array of [`BatchItem`]s.
#[must_use]
pub fn encode_batch_request(items: &[BatchItem]) -> String {
    encode_array(items.iter().map(BatchItem::to_json))
}

/// Parses a batch request body.
///
/// # Errors
///
/// Returns [`WireError`] on malformed JSON, a non-array body, ill-typed
/// items, or more than [`MAX_BATCH`] items.
pub fn parse_batch_request(body: &str) -> Result<Vec<BatchItem>, WireError> {
    let Json::Array(values) = parse_json(body)? else {
        return Err(WireError::new("batch request is not a JSON array"));
    };
    if values.len() > MAX_BATCH {
        return Err(WireError::new(&format!(
            "batch of {} exceeds the cap of {MAX_BATCH}",
            values.len()
        )));
    }
    values.iter().map(BatchItem::from_value).collect()
}

/// Encodes a batch response body: a JSON array of [`DecisionBody`]s in
/// request order.
#[must_use]
pub fn encode_batch_response(decisions: &[DecisionBody]) -> String {
    encode_array(decisions.iter().map(DecisionBody::to_json))
}

/// Parses a batch response body, fail-closed per item (an unparseable
/// array poisons the whole batch, which the Host must treat as a refusal
/// of every item).
///
/// # Errors
///
/// Returns [`WireError`] on malformed JSON, a non-array body, or any
/// ill-typed decision element.
pub fn parse_batch_response(body: &str) -> Result<Vec<DecisionBody>, WireError> {
    let Json::Array(values) = parse_json(body)? else {
        return Err(WireError::new("batch response is not a JSON array"));
    };
    values.iter().map(DecisionBody::from_value).collect()
}

fn encode_array(items: impl Iterator<Item = String>) -> String {
    let mut out = String::from("[");
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

/// A wire-format violation. Carries a human-readable message; the only
/// safe reaction on the Host side is to refuse the access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    message: String,
}

impl WireError {
    fn new(message: &str) -> Self {
        Self {
            message: message.to_owned(),
        }
    }
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "wire error: {}", self.message)
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Minimal JSON machinery (no serde_json dependency)
// ---------------------------------------------------------------------------

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The subset of JSON values the protocol uses. Numbers keep their raw
/// text so integer fields parse losslessly.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(String),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

fn find<'a>(fields: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn opt_u64(fields: &[(String, Json)], key: &str) -> Result<Option<u64>, WireError> {
    match find(fields, key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Number(raw)) => raw
            .parse::<u64>()
            .map(Some)
            .map_err(|_| WireError::new(&format!("{key} is not an unsigned integer"))),
        Some(_) => Err(WireError::new(&format!("{key} is not a number"))),
    }
}

fn opt_string(fields: &[(String, Json)], key: &str) -> Result<Option<String>, WireError> {
    match find(fields, key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::String(s)) => Ok(Some(s.clone())),
        Some(_) => Err(WireError::new(&format!("{key} is not a string"))),
    }
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
fn parse_json(input: &str) -> Result<Json, WireError> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(WireError::new("trailing characters after JSON value"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, WireError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::String),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        _ => Err(WireError::new("unexpected character in JSON")),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, WireError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(WireError::new("invalid JSON literal"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, WireError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    if *pos == start {
        return Err(WireError::new("empty number"));
    }
    let raw = core::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| WireError::new("invalid number bytes"))?;
    // Validate it is at least float-shaped; raw text is kept for
    // lossless integer extraction later.
    raw.parse::<f64>()
        .map_err(|_| WireError::new("malformed number"))?;
    Ok(Json::Number(raw.to_owned()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, WireError> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(WireError::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| WireError::new("truncated \\u escape"))?;
                        let hex = core::str::from_utf8(hex)
                            .map_err(|_| WireError::new("invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| WireError::new("invalid \\u escape"))?;
                        // Surrogates are not paired here: the encoder never
                        // emits them and the protocol carries no astral
                        // escapes, so a lone surrogate is simply an error.
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| WireError::new("invalid \\u code point"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(WireError::new("invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance over one UTF-8 scalar (input is &str, so the
                // byte stream is valid UTF-8 by construction).
                let s = core::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| WireError::new("invalid UTF-8"))?;
                let c = s.chars().next().ok_or_else(|| WireError::new("empty"))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, WireError> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'{'));
    *pos += 1;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(WireError::new("expected object key"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(WireError::new("expected ':' after key"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            _ => return Err(WireError::new("expected ',' or '}'")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, WireError> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'['));
    *pos += 1;
    let mut values = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(values));
    }
    loop {
        let value = parse_value(bytes, pos)?;
        values.push(value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(values));
            }
            _ => return Err(WireError::new("expected ',' or ']'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permit_round_trips() {
        let body = DecisionBody::permit(60_000, 3);
        let json = body.to_json();
        assert_eq!(
            json,
            "{\"decision\":\"permit\",\"cacheable_ms\":60000,\"policy_epoch\":3}"
        );
        assert_eq!(DecisionBody::from_json(&json).unwrap(), body);
        assert!(body.is_permit());
    }

    #[test]
    fn deny_round_trips_with_escaped_reason() {
        let body = DecisionBody::deny("no \"permit\" for you\nline two");
        let json = body.to_json();
        let parsed = DecisionBody::from_json(&json).unwrap();
        assert_eq!(parsed, body);
        assert!(!parsed.is_permit());
    }

    #[test]
    fn deny_containing_permit_text_is_not_a_permit() {
        let body = "{\"decision\":\"deny\",\"reason\":\"would permit if consented\"}";
        let parsed = DecisionBody::from_json(body).unwrap();
        assert!(!parsed.is_permit());
        assert_eq!(DecisionBody::parse_cacheable_ms(body), 0);
    }

    #[test]
    fn malformed_bodies_fail_closed() {
        for body in [
            "certainly! \"permit\" granted",
            "{\"decision\":",
            "{\"decision\":42}",
            "{}",
            "[\"permit\"]",
            "{\"decision\":\"permit\"} trailing",
            "{\"decision\":\"permit\",\"cacheable_ms\":-5}",
            "{\"decision\":\"permit\",\"cacheable_ms\":\"60000\"}",
        ] {
            assert!(DecisionBody::from_json(body).is_err(), "{body}");
            assert_eq!(DecisionBody::parse_cacheable_ms(body), 0, "{body}");
        }
    }

    #[test]
    fn parse_cacheable_ms_matches_historical_behavior() {
        let cases = [
            (
                "{\"decision\":\"permit\",\"cacheable_ms\":60000,\"policy_epoch\":1}",
                60_000,
            ),
            (
                "{\"decision\":\"permit\",\"cacheable_ms\":0,\"policy_epoch\":1}",
                0,
            ),
            ("{\"decision\":\"permit\"}", 0),
            ("{\"decision\":\"deny\",\"reason\":\"nope\"}", 0),
            ("{\"decision\":\"deny\",\"cacheable_ms\":60000}", 0),
            ("{\"decision\":", 0),
            ("not json at all", 0),
        ];
        for (body, want) in cases {
            assert_eq!(DecisionBody::parse_cacheable_ms(body), want, "{body}");
        }
    }

    #[test]
    fn unknown_fields_are_tolerated() {
        let body = "{\"decision\":\"permit\",\"cacheable_ms\":5,\"policy_epoch\":1,\
                    \"extra\":{\"nested\":[1,2,null,true]},\"note\":\"x\"}";
        let parsed = DecisionBody::from_json(body).unwrap();
        assert!(parsed.is_permit());
        assert_eq!(parsed.cacheable_ms, Some(5));
    }

    #[test]
    fn null_optionals_read_as_absent() {
        let body = "{\"decision\":\"deny\",\"reason\":null,\"cacheable_ms\":null}";
        let parsed = DecisionBody::from_json(body).unwrap();
        assert_eq!(parsed.cacheable_ms, None);
        assert_eq!(parsed.reason, None);
    }

    #[test]
    fn batch_request_round_trips_and_caps() {
        let items: Vec<BatchItem> = (0..3)
            .map(|i| BatchItem {
                token: format!("tok-{i}"),
                resource: format!("files/r{i}.txt"),
                action: "read".into(),
                requester: "requester:app".into(),
            })
            .collect();
        let body = encode_batch_request(&items);
        assert_eq!(parse_batch_request(&body).unwrap(), items);

        let oversized: Vec<BatchItem> = (0..=MAX_BATCH)
            .map(|i| BatchItem {
                token: format!("t{i}"),
                resource: "r".into(),
                action: "read".into(),
                requester: "q".into(),
            })
            .collect();
        assert!(parse_batch_request(&encode_batch_request(&oversized)).is_err());
    }

    #[test]
    fn batch_response_round_trips() {
        let decisions = vec![
            DecisionBody::permit(400, 2),
            DecisionBody::deny("not in group"),
        ];
        let body = encode_batch_response(&decisions);
        assert_eq!(parse_batch_response(&body).unwrap(), decisions);
        assert!(parse_batch_response("{\"not\":\"array\"}").is_err());
        assert!(parse_batch_response("[{\"decision\":42}]").is_err());
    }

    #[test]
    fn empty_batches_are_legal() {
        assert_eq!(parse_batch_request("[]").unwrap(), Vec::<BatchItem>::new());
        assert_eq!(
            parse_batch_response("[]").unwrap(),
            Vec::<DecisionBody>::new()
        );
    }
}
