//! Shared Host↔AM wire protocol — the versioned `/protection/v1` surface.
//!
//! The paper's phase-5/6 exchange (Fig. 6) is a Host asking an AM for an
//! access decision. Three crates speak this wire format: the AM serializes
//! decisions, the Host parses them fail-closed, and the baselines mimic the
//! same shape for apples-to-apples byte accounting. Historically each side
//! hand-rolled its half (the Host held a private `DecisionBody`, the AM
//! format-stringed JSON); this module is the single shared definition.
//!
//! Everything here is dependency-free by design: the JSON encoder and the
//! fail-closed parser are hand-written so that crates without `serde_json`
//! (this one, baselines) can still speak the protocol. The parser is strict
//! where it matters for safety — a body that does not parse as a JSON
//! object with `"decision":"permit"` is **never** treated as a permit.
//!
//! # Routes
//!
//! | constant | path | purpose |
//! |---|---|---|
//! | [`DECISION_PATH`] | `/protection/v1/decision` | single decision query (Fig. 6) |
//! | [`BATCH_DECISIONS_PATH`] | `/protection/v1/decisions` | batched decision queries |
//! | [`EPOCH_PUSH_PATH`] | `/protection/v1/epoch` | AM→Host async policy-epoch push |
//! | [`LEGACY_DECISION_PATH`] | `/decision` | pre-versioning alias, kept for old Hosts |
//! | [`DECISION_V2_PATH`] | `/protection/v2/decision` | conditional (`if_epoch`) decision query |
//! | [`BATCH_AUTHORIZE_PATH`] | `/protection/v2/authorize` | batched authorization-token requests |
//! | [`REGISTER_PATH`] | `/protection/v2/register` | dynamic Host/Requester registration |
//! | [`REGISTER_ROTATE_PATH`] | `/protection/v2/register/rotate` | rotate a registrant secret |
//! | [`REGISTER_DEREGISTER_PATH`] | `/protection/v2/register/deregister` | retire a registrant |
//! | [`DELEGATE_V2_PATH`] | `/protection/v2/delegate` | credentialed delegation for registrants |
//!
//! An epoch push may additionally carry a [`SieveBody`] in its request
//! body: a signed, epoch-stamped capability sieve the Host installs as
//! its tier-1 enforcement table (DESIGN.md §12). The sieve is part of
//! the same versioned surface — it rides [`EPOCH_PUSH_PATH`], and its
//! parser is fail-closed exactly like the decision parser: a body that
//! does not parse *and* verify grants nothing. The v2 surface adds a
//! third push body kind, [`InvalidationBody`]: the exact fingerprints a
//! policy edit invalidated, so a Host evicts a handful of entries instead
//! of cold-missing an entire owner (DESIGN.md §16). All three body kinds
//! use disjoint JSON field sets and distinct signing domain separators,
//! so none can ever be parsed — or replayed — as another.

/// Versioned single-decision route (Fig. 6, phase 5/6).
pub const DECISION_PATH: &str = "/protection/v1/decision";
/// Versioned batch-decision route: the body is a JSON array of
/// [`BatchItem`]s, the response a JSON array of [`DecisionBody`]s in the
/// same order.
pub const BATCH_DECISIONS_PATH: &str = "/protection/v1/decisions";
/// Versioned AM→Host policy-epoch push route (params: `owner`, `epoch`).
pub const EPOCH_PUSH_PATH: &str = "/protection/v1/epoch";
/// The unversioned decision route kept as a compatibility alias.
pub const LEGACY_DECISION_PATH: &str = "/decision";

/// v2 conditional single-decision route. Same query parameters as
/// [`DECISION_PATH`] plus an optional `if_epoch`: the owner policy epoch
/// the Host evaluated its cached permit under. When the epoch still
/// matches and the verdict is still a permit, the AM answers with a
/// compact [`UnchangedBody`] instead of re-serializing the full
/// [`DecisionBody`] — the 304 of the protection API.
pub const DECISION_V2_PATH: &str = "/protection/v2/decision";
/// v2 batch-authorize route: the requester-side sibling of
/// [`BATCH_DECISIONS_PATH`]. The body is a JSON array of
/// [`AuthorizeItem`]s scoped to one `host`/`requester` (and optional
/// shared `subject_token`/`claims` parameters); the response is a JSON
/// array of [`AuthorizeReply`]s in request order.
pub const BATCH_AUTHORIZE_PATH: &str = "/protection/v2/authorize";
/// v2 dynamic-registration route (RFC 7591 in spirit): the body is a
/// [`RegisterBody`], the response a [`RegistrationReply`] carrying the
/// per-registrant credential every later management call presents.
pub const REGISTER_PATH: &str = "/protection/v2/register";
/// v2 registration-management route rotating a registrant's secret
/// (params: `registrant_id`, `secret`); answers a fresh
/// [`RegistrationReply`].
pub const REGISTER_ROTATE_PATH: &str = "/protection/v2/register/rotate";
/// v2 registration-management route retiring a registrant (params:
/// `registrant_id`, `secret`). Deregistration revokes the credential;
/// existing delegations are torn down separately by their owners.
pub const REGISTER_DEREGISTER_PATH: &str = "/protection/v2/register/deregister";
/// v2 credentialed delegation route: a registered Host presents its
/// `registrant_id` + `secret` plus the `user` delegating to it (params),
/// and receives a [`DelegateReply`] — the runtime replacement for the
/// hand-wired `establish_delegation` bootstrap.
pub const DELEGATE_V2_PATH: &str = "/protection/v2/delegate";

/// Maximum number of queries an AM accepts in one batch request. Requests
/// above the cap are rejected with a 400 rather than silently truncated.
pub const MAX_BATCH: usize = 32;

/// The decision body a Host receives from an AM (Fig. 6 step 6).
///
/// `decision` is the verdict string (`"permit"` or `"deny"`); only an
/// exact `"permit"` grants. `cacheable_ms` and `policy_epoch` accompany
/// permits so the Host can cache the decision and later invalidate it on
/// epoch advance (DESIGN.md §8). `reason` accompanies denies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionBody {
    /// Verdict: `"permit"` grants, anything else denies.
    pub decision: String,
    /// How long (ms) the Host may cache a permit; absent or 0 means
    /// do not cache.
    pub cacheable_ms: Option<u64>,
    /// The owner's policy epoch the decision was evaluated under.
    pub policy_epoch: Option<u64>,
    /// Human-readable denial reason, if any.
    pub reason: Option<String>,
}

impl DecisionBody {
    /// A permit valid for `cacheable_ms`, stamped with `policy_epoch`.
    #[must_use]
    pub fn permit(cacheable_ms: u64, policy_epoch: u64) -> Self {
        Self {
            decision: "permit".into(),
            cacheable_ms: Some(cacheable_ms),
            policy_epoch: Some(policy_epoch),
            reason: None,
        }
    }

    /// A deny carrying a human-readable `reason`.
    #[must_use]
    pub fn deny(reason: &str) -> Self {
        Self {
            decision: "deny".into(),
            cacheable_ms: None,
            policy_epoch: None,
            reason: Some(reason.to_owned()),
        }
    }

    /// A per-item protocol failure inside a batch response (e.g. an
    /// expired token). Distinct from [`DecisionBody::deny`] — a deny is a
    /// policy verdict, an error means the query never reached policy
    /// evaluation; Hosts map errors to their single-query 401 handling.
    #[must_use]
    pub fn error(reason: &str) -> Self {
        Self {
            decision: "error".into(),
            cacheable_ms: None,
            policy_epoch: None,
            reason: Some(reason.to_owned()),
        }
    }

    /// Whether this batch item is a protocol-level failure (see
    /// [`DecisionBody::error`]).
    #[must_use]
    pub fn is_error(&self) -> bool {
        self.decision == "error"
    }

    /// Whether the verdict is exactly `"permit"`. A deny whose *reason*
    /// merely contains the word "permit" stays a deny.
    #[must_use]
    pub fn is_permit(&self) -> bool {
        self.decision == "permit"
    }

    /// Serializes to the canonical wire JSON. Field order is fixed
    /// (decision, cacheable_ms, policy_epoch, reason; absent fields are
    /// omitted) so byte counts are deterministic across runs.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push_str("{\"decision\":");
        push_json_string(&mut out, &self.decision);
        if let Some(ms) = self.cacheable_ms {
            out.push_str(",\"cacheable_ms\":");
            out.push_str(&ms.to_string());
        }
        if let Some(epoch) = self.policy_epoch {
            out.push_str(",\"policy_epoch\":");
            out.push_str(&epoch.to_string());
        }
        if let Some(reason) = &self.reason {
            out.push_str(",\"reason\":");
            push_json_string(&mut out, reason);
        }
        out.push('}');
        out
    }

    /// Parses a decision body, fail-closed: anything that is not a JSON
    /// object with a string `decision` field is an error, and the caller
    /// must treat errors as a refusal, never a permit.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on malformed JSON, a missing or non-string
    /// `decision`, or ill-typed optional fields.
    pub fn from_json(body: &str) -> Result<Self, WireError> {
        let value = parse_json(body)?;
        Self::from_value(&value)
    }

    fn from_value(value: &Json) -> Result<Self, WireError> {
        let Json::Object(fields) = value else {
            return Err(WireError::new("decision body is not a JSON object"));
        };
        let decision = match find(fields, "decision") {
            Some(Json::String(s)) => s.clone(),
            Some(_) => return Err(WireError::new("decision field is not a string")),
            None => return Err(WireError::new("decision field missing")),
        };
        Ok(Self {
            decision,
            cacheable_ms: opt_u64(fields, "cacheable_ms")?,
            policy_epoch: opt_u64(fields, "policy_epoch")?,
            reason: opt_string(fields, "reason")?,
        })
    }

    /// Historical convenience: the cacheable window of a body, where
    /// anything other than a well-formed permit yields 0 (uncacheable).
    /// This is the fail-closed projection Hosts used before the full
    /// parse result was public.
    #[must_use]
    pub fn parse_cacheable_ms(body: &str) -> u64 {
        match Self::from_json(body) {
            Ok(parsed) if parsed.is_permit() => parsed.cacheable_ms.unwrap_or(0),
            _ => 0,
        }
    }
}

/// The compact v2 answer to a conditional decision query whose `if_epoch`
/// still matches: "your cached permit is still good, re-arm it for
/// `cacheable_ms`" — without re-serializing the permit body.
///
/// The field set is disjoint from [`DecisionBody`] (which requires a
/// string `decision`), so the two reply kinds can never be confused on
/// parse. Fail-closed discipline matches the rest of the module: a body
/// that does not parse as `{"unchanged":true,...}` re-arms nothing, and
/// an *unchanged* reply never grants an access the Host had not already
/// cached — a Host with no matching cache entry treats it as a refusal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnchangedBody {
    /// How long (ms) the Host may re-arm the cached permit for.
    pub cacheable_ms: u64,
}

impl UnchangedBody {
    /// Serializes to the canonical wire JSON; fixed field order keeps
    /// byte counts deterministic. The policy epoch is deliberately *not*
    /// echoed: the AM only answers "unchanged" when the current epoch
    /// equals the query's `if_epoch`, so the Host already holds the
    /// value and repeating it would cost the very bytes the conditional
    /// query exists to save (like HTTP 304 omitting the entity).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(48);
        out.push_str("{\"unchanged\":true,\"cacheable_ms\":");
        out.push_str(&self.cacheable_ms.to_string());
        out.push('}');
        out
    }

    /// Parses an unchanged reply, fail-closed: anything that is not a
    /// JSON object with a literal-`true` `unchanged` field and an
    /// integer `cacheable_ms` is an error.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on malformed JSON or missing/ill-typed
    /// fields.
    pub fn from_json(body: &str) -> Result<Self, WireError> {
        let Json::Object(fields) = parse_json(body)? else {
            return Err(WireError::new("unchanged body is not a JSON object"));
        };
        match find(&fields, "unchanged") {
            Some(Json::Bool(true)) => {}
            _ => return Err(WireError::new("unchanged field missing or not true")),
        }
        let cacheable_ms = opt_u64(&fields, "cacheable_ms")?
            .ok_or_else(|| WireError::new("unchanged cacheable_ms missing"))?;
        Ok(Self { cacheable_ms })
    }
}

/// One query inside a batch decision request: the per-item fields of the
/// paper's Fig. 6 query (the `host_token` rides on the request itself,
/// since a batch is scoped to one Host↔AM delegation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchItem {
    /// The requester's authorization token (phase 4 artifact).
    pub token: String,
    /// Resource identifier at the Host.
    pub resource: String,
    /// Action name (`read`, `write`, …).
    pub action: String,
    /// Requester label.
    pub requester: String,
}

impl BatchItem {
    fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"token\":");
        push_json_string(&mut out, &self.token);
        out.push_str(",\"resource\":");
        push_json_string(&mut out, &self.resource);
        out.push_str(",\"action\":");
        push_json_string(&mut out, &self.action);
        out.push_str(",\"requester\":");
        push_json_string(&mut out, &self.requester);
        out.push('}');
        out
    }

    fn from_value(value: &Json) -> Result<Self, WireError> {
        let Json::Object(fields) = value else {
            return Err(WireError::new("batch item is not a JSON object"));
        };
        let get = |key: &str| -> Result<String, WireError> {
            match find(fields, key) {
                Some(Json::String(s)) => Ok(s.clone()),
                _ => Err(WireError::new(&format!(
                    "batch item field {key} missing or not a string"
                ))),
            }
        };
        Ok(Self {
            token: get("token")?,
            resource: get("resource")?,
            action: get("action")?,
            requester: get("requester")?,
        })
    }
}

/// Encodes a batch request body: a JSON array of [`BatchItem`]s.
#[must_use]
pub fn encode_batch_request(items: &[BatchItem]) -> String {
    encode_array(items.iter().map(BatchItem::to_json))
}

/// Parses a batch request body.
///
/// # Errors
///
/// Returns [`WireError`] on malformed JSON, a non-array body, ill-typed
/// items, or more than [`MAX_BATCH`] items.
pub fn parse_batch_request(body: &str) -> Result<Vec<BatchItem>, WireError> {
    let Json::Array(values) = parse_json(body)? else {
        return Err(WireError::new("batch request is not a JSON array"));
    };
    if values.len() > MAX_BATCH {
        return Err(WireError::new(&format!(
            "batch of {} exceeds the cap of {MAX_BATCH}",
            values.len()
        )));
    }
    values.iter().map(BatchItem::from_value).collect()
}

/// Encodes a batch response body: a JSON array of [`DecisionBody`]s in
/// request order.
#[must_use]
pub fn encode_batch_response(decisions: &[DecisionBody]) -> String {
    encode_array(decisions.iter().map(DecisionBody::to_json))
}

/// Parses a batch response body, fail-closed per item (an unparseable
/// array poisons the whole batch, which the Host must treat as a refusal
/// of every item).
///
/// # Errors
///
/// Returns [`WireError`] on malformed JSON, a non-array body, or any
/// ill-typed decision element.
pub fn parse_batch_response(body: &str) -> Result<Vec<DecisionBody>, WireError> {
    let Json::Array(values) = parse_json(body)? else {
        return Err(WireError::new("batch response is not a JSON array"));
    };
    values.iter().map(DecisionBody::from_value).collect()
}

fn encode_array(items: impl Iterator<Item = String>) -> String {
    let mut out = String::from("[");
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

// ---------------------------------------------------------------------------
// Batch authorize (v2: the requester-side sibling of batch decide)
// ---------------------------------------------------------------------------

/// One token request inside a [`BATCH_AUTHORIZE_PATH`] body: the
/// per-item fields of the paper's Fig. 5 request. The `host`,
/// `requester` and any shared `subject_token`/`claims` ride on the
/// request parameters, since a batch is scoped to one Requester asking
/// one Host's AM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuthorizeItem {
    /// Resource owner whose policies apply.
    pub owner: String,
    /// Resource identifier at the Host.
    pub resource: String,
    /// Action name (`read`, `write`, …).
    pub action: String,
}

impl AuthorizeItem {
    fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"owner\":");
        push_json_string(&mut out, &self.owner);
        out.push_str(",\"resource\":");
        push_json_string(&mut out, &self.resource);
        out.push_str(",\"action\":");
        push_json_string(&mut out, &self.action);
        out.push('}');
        out
    }

    fn from_value(value: &Json) -> Result<Self, WireError> {
        let Json::Object(fields) = value else {
            return Err(WireError::new("authorize item is not a JSON object"));
        };
        let get = |key: &str| -> Result<String, WireError> {
            match find(fields, key) {
                Some(Json::String(s)) => Ok(s.clone()),
                _ => Err(WireError::new(&format!(
                    "authorize item field {key} missing or not a string"
                ))),
            }
        };
        Ok(Self {
            owner: get("owner")?,
            resource: get("resource")?,
            action: get("action")?,
        })
    }
}

/// One per-item outcome inside a batch-authorize response — the wire
/// projection of the AM's `AuthorizeOutcome`. Discriminated by which
/// single field is present, so the parser is unambiguous and fail-closed:
/// a body carrying none of the known fields (or two of them) is an error,
/// and only an exact `token` field yields a credential.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthorizeReply {
    /// Policies permit: the minted authorization token.
    Token(String),
    /// Policies deny, with the human-readable reason.
    Denied(String),
    /// The request opened a consent question; the id to poll.
    Pending(String),
    /// The requester must supply claims of these kinds first.
    NeedsClaims(Vec<String>),
    /// Protocol-level failure for this item (the query never reached
    /// policy evaluation).
    Error(String),
}

impl AuthorizeReply {
    fn to_json(&self) -> String {
        let mut out = String::with_capacity(64);
        match self {
            AuthorizeReply::Token(token) => {
                out.push_str("{\"token\":");
                push_json_string(&mut out, token);
            }
            AuthorizeReply::Denied(reason) => {
                out.push_str("{\"denied\":");
                push_json_string(&mut out, reason);
            }
            AuthorizeReply::Pending(id) => {
                out.push_str("{\"pending\":");
                push_json_string(&mut out, id);
            }
            AuthorizeReply::NeedsClaims(kinds) => {
                out.push_str("{\"claims\":[");
                for (i, kind) in kinds.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_json_string(&mut out, kind);
                }
                out.push(']');
            }
            AuthorizeReply::Error(reason) => {
                out.push_str("{\"error\":");
                push_json_string(&mut out, reason);
            }
        }
        out.push('}');
        out
    }

    fn from_value(value: &Json) -> Result<Self, WireError> {
        let Json::Object(fields) = value else {
            return Err(WireError::new("authorize reply is not a JSON object"));
        };
        let mut reply = None;
        for (key, value) in fields {
            let parsed = match (key.as_str(), value) {
                ("token", Json::String(s)) => AuthorizeReply::Token(s.clone()),
                ("denied", Json::String(s)) => AuthorizeReply::Denied(s.clone()),
                ("pending", Json::String(s)) => AuthorizeReply::Pending(s.clone()),
                ("error", Json::String(s)) => AuthorizeReply::Error(s.clone()),
                ("claims", Json::Array(values)) => {
                    let mut kinds = Vec::with_capacity(values.len());
                    for v in values {
                        let Json::String(kind) = v else {
                            return Err(WireError::new("authorize claims kind is not a string"));
                        };
                        kinds.push(kind.clone());
                    }
                    AuthorizeReply::NeedsClaims(kinds)
                }
                ("token" | "denied" | "pending" | "error" | "claims", _) => {
                    return Err(WireError::new(&format!("authorize reply {key} ill-typed")))
                }
                _ => continue,
            };
            if reply.replace(parsed).is_some() {
                return Err(WireError::new("authorize reply has multiple outcomes"));
            }
        }
        reply.ok_or_else(|| WireError::new("authorize reply has no known outcome field"))
    }
}

/// Encodes a batch-authorize request body: a JSON array of
/// [`AuthorizeItem`]s.
#[must_use]
pub fn encode_authorize_request(items: &[AuthorizeItem]) -> String {
    encode_array(items.iter().map(AuthorizeItem::to_json))
}

/// Parses a batch-authorize request body.
///
/// # Errors
///
/// Returns [`WireError`] on malformed JSON, a non-array body, ill-typed
/// items, or more than [`MAX_BATCH`] items.
pub fn parse_authorize_request(body: &str) -> Result<Vec<AuthorizeItem>, WireError> {
    let Json::Array(values) = parse_json(body)? else {
        return Err(WireError::new("authorize request is not a JSON array"));
    };
    if values.len() > MAX_BATCH {
        return Err(WireError::new(&format!(
            "authorize batch of {} exceeds the cap of {MAX_BATCH}",
            values.len()
        )));
    }
    values.iter().map(AuthorizeItem::from_value).collect()
}

/// Encodes a batch-authorize response body: a JSON array of
/// [`AuthorizeReply`]s in request order.
#[must_use]
pub fn encode_authorize_response(replies: &[AuthorizeReply]) -> String {
    encode_array(replies.iter().map(AuthorizeReply::to_json))
}

/// Parses a batch-authorize response body, fail-closed per item (an
/// unparseable array poisons the whole batch, which the Requester must
/// treat as no token for any item).
///
/// # Errors
///
/// Returns [`WireError`] on malformed JSON, a non-array body, or any
/// ill-typed reply element.
pub fn parse_authorize_response(body: &str) -> Result<Vec<AuthorizeReply>, WireError> {
    let Json::Array(values) = parse_json(body)? else {
        return Err(WireError::new("authorize response is not a JSON array"));
    };
    values.iter().map(AuthorizeReply::from_value).collect()
}

// ---------------------------------------------------------------------------
// Dynamic registration (v2, RFC 7591/7592 in spirit)
// ---------------------------------------------------------------------------

/// A [`REGISTER_PATH`] request body: what a Host or Requester declares
/// about itself when onboarding against an AM at runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterBody {
    /// Registrant role: `"host"` or `"requester"` — nothing else parses.
    pub kind: String,
    /// The registrant's authority (its address on the transport).
    pub authority: String,
}

impl RegisterBody {
    /// Serializes to the canonical wire JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push_str("{\"kind\":");
        push_json_string(&mut out, &self.kind);
        out.push_str(",\"authority\":");
        push_json_string(&mut out, &self.authority);
        out.push('}');
        out
    }

    /// Parses a registration body, fail-closed: the `kind` must be
    /// exactly `"host"` or `"requester"` and the authority non-empty.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on malformed JSON, missing or ill-typed
    /// fields, an unknown kind, or an empty authority.
    pub fn from_json(body: &str) -> Result<Self, WireError> {
        let Json::Object(fields) = parse_json(body)? else {
            return Err(WireError::new("register body is not a JSON object"));
        };
        let kind = match find(&fields, "kind") {
            Some(Json::String(s)) => s.clone(),
            _ => return Err(WireError::new("register kind missing or not a string")),
        };
        if kind != "host" && kind != "requester" {
            return Err(WireError::new("register kind must be host or requester"));
        }
        let authority = match find(&fields, "authority") {
            Some(Json::String(s)) if !s.is_empty() => s.clone(),
            _ => {
                return Err(WireError::new(
                    "register authority missing, empty, or not a string",
                ))
            }
        };
        Ok(Self { kind, authority })
    }
}

/// A [`REGISTER_PATH`] / [`REGISTER_ROTATE_PATH`] response body: the
/// registrant's identity and the secret it must present on every later
/// management call. The secret is the *registration* credential only —
/// delegations still mint their own `host_token` per user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistrationReply {
    /// Stable registrant identity at this AM.
    pub registrant_id: String,
    /// The current per-registrant secret.
    pub secret: String,
}

impl RegistrationReply {
    /// Serializes to the canonical wire JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push_str("{\"registrant_id\":");
        push_json_string(&mut out, &self.registrant_id);
        out.push_str(",\"secret\":");
        push_json_string(&mut out, &self.secret);
        out.push('}');
        out
    }

    /// Parses a registration reply, fail-closed.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on malformed JSON or missing/ill-typed
    /// fields.
    pub fn from_json(body: &str) -> Result<Self, WireError> {
        let Json::Object(fields) = parse_json(body)? else {
            return Err(WireError::new("registration reply is not a JSON object"));
        };
        let get = |key: &str| -> Result<String, WireError> {
            match find(&fields, key) {
                Some(Json::String(s)) if !s.is_empty() => Ok(s.clone()),
                _ => Err(WireError::new(&format!(
                    "registration reply {key} missing, empty, or not a string"
                ))),
            }
        };
        Ok(Self {
            registrant_id: get("registrant_id")?,
            secret: get("secret")?,
        })
    }
}

/// A [`DELEGATE_V2_PATH`] response body: the artifacts of a freshly
/// established delegation (Fig. 3), returned to a credentialed
/// registrant instead of riding a browser redirect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DelegateReply {
    /// Unique id of the delegation, used for revocation.
    pub delegation_id: String,
    /// The host access token sealing the delegation.
    pub host_token: String,
}

impl DelegateReply {
    /// Serializes to the canonical wire JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"delegation_id\":");
        push_json_string(&mut out, &self.delegation_id);
        out.push_str(",\"host_token\":");
        push_json_string(&mut out, &self.host_token);
        out.push('}');
        out
    }

    /// Parses a delegate reply, fail-closed.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on malformed JSON or missing/ill-typed
    /// fields.
    pub fn from_json(body: &str) -> Result<Self, WireError> {
        let Json::Object(fields) = parse_json(body)? else {
            return Err(WireError::new("delegate reply is not a JSON object"));
        };
        let get = |key: &str| -> Result<String, WireError> {
            match find(&fields, key) {
                Some(Json::String(s)) if !s.is_empty() => Ok(s.clone()),
                _ => Err(WireError::new(&format!(
                    "delegate reply {key} missing, empty, or not a string"
                ))),
            }
        };
        Ok(Self {
            delegation_id: get("delegation_id")?,
            host_token: get("host_token")?,
        })
    }
}

// ---------------------------------------------------------------------------
// Capability sieve (tier-1 enforcement table, rides the epoch push)
// ---------------------------------------------------------------------------

/// A tier-1 sieve key: the truncated SHA-256 fingerprint of one
/// `(token, resource, action, requester)` access tuple.
///
/// 128 bits of a cryptographic hash — an *exact* set membership key, not
/// a Bloom-style approximation. A probabilistic filter with false
/// positives would grant accesses the AM never permitted; truncating
/// SHA-256 to 16 bytes keeps collisions out of reach while halving the
/// per-entry wire and memory cost.
pub type SieveFingerprint = [u8; 16];

/// Computes the sieve fingerprint of one access tuple. Both ends call
/// this: the AM when compiling a sieve from its issued grants, the Host
/// when probing its installed snapshot on the warm path. Fields are
/// domain-separated and NUL-delimited so distinct tuples can never share
/// a preimage.
#[must_use]
pub fn sieve_fingerprint(
    token: &str,
    resource: &str,
    action: &str,
    requester: &str,
) -> SieveFingerprint {
    let mut hasher = ucam_crypto::sha::Sha256::new();
    hasher.update(b"ucam-sieve-fp-v1\0");
    hasher.update(token.as_bytes());
    hasher.update(b"\0");
    hasher.update(resource.as_bytes());
    hasher.update(b"\0");
    hasher.update(action.as_bytes());
    hasher.update(b"\0");
    hasher.update(requester.as_bytes());
    let digest = hasher.finalize();
    let mut fp = [0u8; 16];
    fp.copy_from_slice(&digest[..16]);
    fp
}

/// One pre-authorized access tuple inside a [`SieveBody`].
///
/// The fingerprint alone is opaque, so each entry also names the
/// `resource` it covers: the Host validates every entry against its own
/// delegation table at install time (fail-closed — an entry for an
/// unknown resource or a foreign owner is dropped) and purges entries
/// surgically when a resource is deleted or re-delegated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SieveEntry {
    /// Fingerprint of the access tuple (see [`sieve_fingerprint`]).
    pub fingerprint: SieveFingerprint,
    /// Resource identifier at the Host this entry pre-authorizes.
    pub resource: String,
    /// Absolute expiry (ms, AM clock). Mirrors the decision cache's
    /// `cacheable_ms` bound so the sieve never serves staler permits
    /// than the protocol path would.
    pub expires_at_ms: u64,
}

/// The signed, epoch-stamped capability sieve an AM pushes to a Host in
/// the body of an [`EPOCH_PUSH_PATH`] request (DESIGN.md §12).
///
/// Authentication: `sig` is an HMAC-SHA256 over the canonical payload,
/// keyed by the Host↔AM delegation's `host_token` — a secret both ends
/// already share from phase 1, so the sieve needs no new key exchange.
/// The plain epoch parameters on the push stay unauthenticated (they can
/// only lower trust); a sieve *raises* trust, so a body that fails
/// verification installs nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SieveBody {
    /// The resource owner whose grants this sieve compiles.
    pub owner: String,
    /// The owner's policy epoch the sieve was compiled under.
    pub epoch: u64,
    /// Pre-authorized access tuples. May be empty: an empty signed sieve
    /// is how the AM propagates "nothing is pre-authorized anymore".
    pub entries: Vec<SieveEntry>,
    /// Hex HMAC-SHA256 over [`signing payload`](Self::signing_payload).
    pub sig: String,
}

impl SieveBody {
    /// Assembles and signs a sieve with the shared delegation
    /// `host_token` bytes.
    #[must_use]
    pub fn build(owner: &str, epoch: u64, entries: Vec<SieveEntry>, key: &[u8]) -> Self {
        let mut body = Self {
            owner: owner.to_owned(),
            epoch,
            entries,
            sig: String::new(),
        };
        let mac = ucam_crypto::hmac_sha256(key, body.signing_payload().as_bytes());
        let mut sig = String::with_capacity(64);
        push_hex(&mut sig, &mac);
        body.sig = sig;
        body
    }

    /// Verifies the signature against the Host's copy of the delegation
    /// `host_token`. Constant-time comparison; any mismatch means the
    /// sieve must be discarded whole.
    #[must_use]
    pub fn verify(&self, key: &[u8]) -> bool {
        let Some(sig) = hex_decode::<32>(&self.sig) else {
            return false;
        };
        let mac = ucam_crypto::hmac_sha256(key, self.signing_payload().as_bytes());
        ucam_crypto::ct_eq(&mac, &sig)
    }

    /// The canonical byte string the signature covers. Variable-length
    /// fields are length-prefixed so no two distinct sieves serialize to
    /// the same payload.
    fn signing_payload(&self) -> String {
        let mut out = String::with_capacity(64 + self.entries.len() * 64);
        out.push_str("ucam-sieve-v1\n");
        out.push_str(&format!("{}:{}\n", self.owner.len(), self.owner));
        out.push_str(&format!("{}\n", self.epoch));
        for entry in &self.entries {
            push_hex(&mut out, &entry.fingerprint);
            out.push_str(&format!(
                " {} {}:{}\n",
                entry.expires_at_ms,
                entry.resource.len(),
                entry.resource
            ));
        }
        out
    }

    /// Serializes to the canonical wire JSON. Field order is fixed;
    /// entries encode as `["<fp hex>", expires_at_ms, "resource"]`
    /// triples.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96 + self.entries.len() * 72);
        out.push_str("{\"owner\":");
        push_json_string(&mut out, &self.owner);
        out.push_str(",\"epoch\":");
        out.push_str(&self.epoch.to_string());
        out.push_str(",\"entries\":[");
        for (i, entry) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("[\"");
            push_hex(&mut out, &entry.fingerprint);
            out.push_str("\",");
            out.push_str(&entry.expires_at_ms.to_string());
            out.push(',');
            push_json_string(&mut out, &entry.resource);
            out.push(']');
        }
        out.push_str("],\"sig\":");
        push_json_string(&mut out, &self.sig);
        out.push('}');
        out
    }

    /// Parses a sieve body, fail-closed: any malformed field rejects the
    /// whole body, and the caller must install nothing on error. Parsing
    /// alone never authorizes — the caller must still [`verify`](Self::verify).
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on malformed JSON, missing or ill-typed
    /// fields, or a fingerprint that is not exactly 32 hex characters.
    pub fn from_json(body: &str) -> Result<Self, WireError> {
        let Json::Object(fields) = parse_json(body)? else {
            return Err(WireError::new("sieve body is not a JSON object"));
        };
        let owner = match find(&fields, "owner") {
            Some(Json::String(s)) => s.clone(),
            _ => return Err(WireError::new("sieve owner missing or not a string")),
        };
        let epoch =
            opt_u64(&fields, "epoch")?.ok_or_else(|| WireError::new("sieve epoch missing"))?;
        let sig = match find(&fields, "sig") {
            Some(Json::String(s)) => s.clone(),
            _ => return Err(WireError::new("sieve sig missing or not a string")),
        };
        let Some(Json::Array(raw_entries)) = find(&fields, "entries") else {
            return Err(WireError::new("sieve entries missing or not an array"));
        };
        let mut entries = Vec::with_capacity(raw_entries.len());
        for raw in raw_entries {
            let Json::Array(triple) = raw else {
                return Err(WireError::new("sieve entry is not an array"));
            };
            let [Json::String(fp_hex), Json::Number(expires), Json::String(resource)] =
                triple.as_slice()
            else {
                return Err(WireError::new(
                    "sieve entry is not a [fp, expires, resource] triple",
                ));
            };
            let fingerprint = hex_decode::<16>(fp_hex)
                .ok_or_else(|| WireError::new("sieve entry fingerprint is not 32 hex chars"))?;
            let expires_at_ms = expires
                .parse::<u64>()
                .map_err(|_| WireError::new("sieve entry expiry is not an unsigned integer"))?;
            entries.push(SieveEntry {
                fingerprint,
                resource: resource.clone(),
                expires_at_ms,
            });
        }
        Ok(Self {
            owner,
            epoch,
            entries,
            sig,
        })
    }
}

/// Response body a Host answers an epoch push with when it received a
/// [`SieveDeltaBody`] whose base generation does not match what the Host
/// has installed. The AM treats it as "delivery confirmed, delta refused"
/// and reships a full [`SieveBody`] on the next pump (DESIGN.md §13).
pub const SIEVE_RESYNC: &str = "sieve-resync";

/// An incremental update to an installed [`SieveBody`]: the entries added
/// and the fingerprints removed since the sieve the AM last shipped to
/// this Host, compiled under `epoch` against the installed `base_epoch`.
///
/// A refresh over a million-resource owner would otherwise reship the
/// full entry list every time; the delta is O(changes). Safety matches
/// the full body: the delta is HMAC-signed under the same delegation
/// `host_token` (with its own domain separator, so a delta can never be
/// replayed as a full sieve or vice versa), and a Host applies it only
/// when its installed sieve for the owner sits exactly at `base_epoch` —
/// anything else answers [`SIEVE_RESYNC`] and the AM falls back to a
/// full-body ship.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SieveDeltaBody {
    /// The resource owner whose sieve this delta updates.
    pub owner: String,
    /// The owner's policy epoch the delta was compiled under.
    pub epoch: u64,
    /// The epoch of the installed sieve this delta applies on top of.
    pub base_epoch: u64,
    /// Entries to insert (new grants, or moved expiries).
    pub added: Vec<SieveEntry>,
    /// Fingerprints to drop (expired or revoked grants).
    pub removed: Vec<SieveFingerprint>,
    /// Hex HMAC-SHA256 over the canonical payload.
    pub sig: String,
}

impl SieveDeltaBody {
    /// Assembles and signs a delta with the shared delegation
    /// `host_token` bytes.
    #[must_use]
    pub fn build(
        owner: &str,
        epoch: u64,
        base_epoch: u64,
        added: Vec<SieveEntry>,
        removed: Vec<SieveFingerprint>,
        key: &[u8],
    ) -> Self {
        let mut body = Self {
            owner: owner.to_owned(),
            epoch,
            base_epoch,
            added,
            removed,
            sig: String::new(),
        };
        let mac = ucam_crypto::hmac_sha256(key, body.signing_payload().as_bytes());
        let mut sig = String::with_capacity(64);
        push_hex(&mut sig, &mac);
        body.sig = sig;
        body
    }

    /// Verifies the signature against the Host's copy of the delegation
    /// `host_token`. Constant-time; any mismatch discards the delta whole.
    #[must_use]
    pub fn verify(&self, key: &[u8]) -> bool {
        let Some(sig) = hex_decode::<32>(&self.sig) else {
            return false;
        };
        let mac = ucam_crypto::hmac_sha256(key, self.signing_payload().as_bytes());
        ucam_crypto::ct_eq(&mac, &sig)
    }

    /// The canonical byte string the signature covers; same
    /// length-prefixing discipline as [`SieveBody`], under its own domain
    /// separator.
    fn signing_payload(&self) -> String {
        let mut out = String::with_capacity(80 + self.added.len() * 64 + self.removed.len() * 33);
        out.push_str("ucam-sieve-delta-v1\n");
        out.push_str(&format!("{}:{}\n", self.owner.len(), self.owner));
        out.push_str(&format!("{} {}\n", self.epoch, self.base_epoch));
        for entry in &self.added {
            out.push('+');
            push_hex(&mut out, &entry.fingerprint);
            out.push_str(&format!(
                " {} {}:{}\n",
                entry.expires_at_ms,
                entry.resource.len(),
                entry.resource
            ));
        }
        for fp in &self.removed {
            out.push('-');
            push_hex(&mut out, fp);
            out.push('\n');
        }
        out
    }

    /// Serializes to the canonical wire JSON. The field set (`added`,
    /// `removed`, `base_epoch`) is disjoint from [`SieveBody`]'s
    /// `entries`, so the two body kinds can never be confused on parse.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.added.len() * 72 + self.removed.len() * 36);
        out.push_str("{\"owner\":");
        push_json_string(&mut out, &self.owner);
        out.push_str(",\"epoch\":");
        out.push_str(&self.epoch.to_string());
        out.push_str(",\"base_epoch\":");
        out.push_str(&self.base_epoch.to_string());
        out.push_str(",\"added\":[");
        for (i, entry) in self.added.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("[\"");
            push_hex(&mut out, &entry.fingerprint);
            out.push_str("\",");
            out.push_str(&entry.expires_at_ms.to_string());
            out.push(',');
            push_json_string(&mut out, &entry.resource);
            out.push(']');
        }
        out.push_str("],\"removed\":[");
        for (i, fp) in self.removed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            push_hex(&mut out, fp);
            out.push('"');
        }
        out.push_str("],\"sig\":");
        push_json_string(&mut out, &self.sig);
        out.push('}');
        out
    }

    /// Parses a delta body, fail-closed like [`SieveBody::from_json`].
    /// Parsing alone never authorizes — the caller must still
    /// [`verify`](Self::verify).
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on malformed JSON, missing or ill-typed
    /// fields, or malformed fingerprints.
    pub fn from_json(body: &str) -> Result<Self, WireError> {
        let Json::Object(fields) = parse_json(body)? else {
            return Err(WireError::new("sieve delta body is not a JSON object"));
        };
        let owner = match find(&fields, "owner") {
            Some(Json::String(s)) => s.clone(),
            _ => return Err(WireError::new("sieve delta owner missing or not a string")),
        };
        let epoch = opt_u64(&fields, "epoch")?
            .ok_or_else(|| WireError::new("sieve delta epoch missing"))?;
        let base_epoch = opt_u64(&fields, "base_epoch")?
            .ok_or_else(|| WireError::new("sieve delta base_epoch missing"))?;
        let sig = match find(&fields, "sig") {
            Some(Json::String(s)) => s.clone(),
            _ => return Err(WireError::new("sieve delta sig missing or not a string")),
        };
        let Some(Json::Array(raw_added)) = find(&fields, "added") else {
            return Err(WireError::new("sieve delta added missing or not an array"));
        };
        let mut added = Vec::with_capacity(raw_added.len());
        for raw in raw_added {
            let Json::Array(triple) = raw else {
                return Err(WireError::new("sieve delta added entry is not an array"));
            };
            let [Json::String(fp_hex), Json::Number(expires), Json::String(resource)] =
                triple.as_slice()
            else {
                return Err(WireError::new(
                    "sieve delta added entry is not a [fp, expires, resource] triple",
                ));
            };
            let fingerprint = hex_decode::<16>(fp_hex)
                .ok_or_else(|| WireError::new("sieve delta fingerprint is not 32 hex chars"))?;
            let expires_at_ms = expires.parse::<u64>().map_err(|_| {
                WireError::new("sieve delta entry expiry is not an unsigned integer")
            })?;
            added.push(SieveEntry {
                fingerprint,
                resource: resource.clone(),
                expires_at_ms,
            });
        }
        let Some(Json::Array(raw_removed)) = find(&fields, "removed") else {
            return Err(WireError::new(
                "sieve delta removed missing or not an array",
            ));
        };
        let mut removed = Vec::with_capacity(raw_removed.len());
        for raw in raw_removed {
            let Json::String(fp_hex) = raw else {
                return Err(WireError::new("sieve delta removed entry is not a string"));
            };
            removed
                .push(hex_decode::<16>(fp_hex).ok_or_else(|| {
                    WireError::new("sieve delta fingerprint is not 32 hex chars")
                })?);
        }
        Ok(Self {
            owner,
            epoch,
            base_epoch,
            added,
            removed,
            sig,
        })
    }
}

/// The v2 decision-level invalidation push body: the exact
/// [`SieveFingerprint`]s a policy edit invalidated, pushed alongside the
/// owner's epoch advance on [`EPOCH_PUSH_PATH`] (DESIGN.md §16).
///
/// An epoch-only push tells the Host "something about this owner
/// changed" and forces an owner-wide cache purge — a small policy edit
/// against an owner with hundreds of cached permits triggers a cold-miss
/// storm. This body narrows the signal to the affected tuples: the Host
/// evicts exactly `invalidated` from its cache and sieve, re-stamps the
/// survivors to `epoch`, and keeps serving them.
///
/// Authentication: like the sieve bodies, this one *raises* trust (it
/// lets cached permits survive an epoch advance), so it is HMAC-signed
/// under the delegation `host_token` with its own domain separator. A
/// body that fails verification must be discarded whole — the Host then
/// falls back to the plain epoch purge, which is always safe.
///
/// `invalidated` may be empty: a signed empty list is how the AM says
/// "the epoch advanced but none of your entries died" (e.g. a policy
/// edit that only widened access).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidationBody {
    /// The resource owner whose epoch advanced.
    pub owner: String,
    /// The owner's new policy epoch.
    pub epoch: u64,
    /// Fingerprints of the access tuples the edit invalidated.
    pub invalidated: Vec<SieveFingerprint>,
    /// Hex HMAC-SHA256 over the canonical payload.
    pub sig: String,
}

impl InvalidationBody {
    /// Assembles and signs an invalidation with the shared delegation
    /// `host_token` bytes.
    #[must_use]
    pub fn build(owner: &str, epoch: u64, invalidated: Vec<SieveFingerprint>, key: &[u8]) -> Self {
        let mut body = Self {
            owner: owner.to_owned(),
            epoch,
            invalidated,
            sig: String::new(),
        };
        let mac = ucam_crypto::hmac_sha256(key, body.signing_payload().as_bytes());
        let mut sig = String::with_capacity(64);
        push_hex(&mut sig, &mac);
        body.sig = sig;
        body
    }

    /// Verifies the signature against the Host's copy of the delegation
    /// `host_token`. Constant-time; any mismatch discards the body whole.
    #[must_use]
    pub fn verify(&self, key: &[u8]) -> bool {
        let Some(sig) = hex_decode::<32>(&self.sig) else {
            return false;
        };
        let mac = ucam_crypto::hmac_sha256(key, self.signing_payload().as_bytes());
        ucam_crypto::ct_eq(&mac, &sig)
    }

    /// The canonical byte string the signature covers; same
    /// length-prefixing discipline as the sieve bodies, under its own
    /// domain separator so an invalidation can never be replayed as a
    /// sieve or a delta (or vice versa).
    fn signing_payload(&self) -> String {
        let mut out = String::with_capacity(48 + self.invalidated.len() * 34);
        out.push_str("ucam-inval-v1\n");
        out.push_str(&format!("{}:{}\n", self.owner.len(), self.owner));
        out.push_str(&format!("{}\n", self.epoch));
        for fp in &self.invalidated {
            out.push('!');
            push_hex(&mut out, fp);
            out.push('\n');
        }
        out
    }

    /// Serializes to the canonical wire JSON. The `invalidated` field is
    /// disjoint from [`SieveBody`]'s `entries` and [`SieveDeltaBody`]'s
    /// `added`/`removed`/`base_epoch`, so the three push body kinds can
    /// never be confused on the shared epoch-push route.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96 + self.invalidated.len() * 36);
        out.push_str("{\"owner\":");
        push_json_string(&mut out, &self.owner);
        out.push_str(",\"epoch\":");
        out.push_str(&self.epoch.to_string());
        out.push_str(",\"invalidated\":[");
        for (i, fp) in self.invalidated.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            push_hex(&mut out, fp);
            out.push('"');
        }
        out.push_str("],\"sig\":");
        push_json_string(&mut out, &self.sig);
        out.push('}');
        out
    }

    /// Parses an invalidation body, fail-closed like
    /// [`SieveBody::from_json`]. Parsing alone never authorizes the
    /// survivors — the caller must still [`verify`](Self::verify), and on
    /// any failure fall back to the plain epoch purge.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on malformed JSON, missing or ill-typed
    /// fields, or malformed fingerprints.
    pub fn from_json(body: &str) -> Result<Self, WireError> {
        let Json::Object(fields) = parse_json(body)? else {
            return Err(WireError::new("invalidation body is not a JSON object"));
        };
        let owner = match find(&fields, "owner") {
            Some(Json::String(s)) => s.clone(),
            _ => return Err(WireError::new("invalidation owner missing or not a string")),
        };
        let epoch = opt_u64(&fields, "epoch")?
            .ok_or_else(|| WireError::new("invalidation epoch missing"))?;
        let sig = match find(&fields, "sig") {
            Some(Json::String(s)) => s.clone(),
            _ => return Err(WireError::new("invalidation sig missing or not a string")),
        };
        let Some(Json::Array(raw)) = find(&fields, "invalidated") else {
            return Err(WireError::new(
                "invalidation invalidated missing or not an array",
            ));
        };
        let mut invalidated = Vec::with_capacity(raw.len());
        for value in raw {
            let Json::String(fp_hex) = value else {
                return Err(WireError::new("invalidation fingerprint is not a string"));
            };
            invalidated.push(
                hex_decode::<16>(fp_hex).ok_or_else(|| {
                    WireError::new("invalidation fingerprint is not 32 hex chars")
                })?,
            );
        }
        Ok(Self {
            owner,
            epoch,
            invalidated,
            sig,
        })
    }
}

fn push_hex(out: &mut String, bytes: &[u8]) {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    for &b in bytes {
        out.push(HEX[(b >> 4) as usize] as char);
        out.push(HEX[(b & 0x0f) as usize] as char);
    }
}

/// Decodes exactly `N` bytes of lowercase-or-uppercase hex; anything
/// else (wrong length, stray characters) is `None`.
fn hex_decode<const N: usize>(s: &str) -> Option<[u8; N]> {
    let bytes = s.as_bytes();
    if bytes.len() != N * 2 {
        return None;
    }
    let nibble = |b: u8| -> Option<u8> {
        match b {
            b'0'..=b'9' => Some(b - b'0'),
            b'a'..=b'f' => Some(b - b'a' + 10),
            b'A'..=b'F' => Some(b - b'A' + 10),
            _ => None,
        }
    };
    let mut out = [0u8; N];
    for (i, chunk) in bytes.chunks_exact(2).enumerate() {
        out[i] = (nibble(chunk[0])? << 4) | nibble(chunk[1])?;
    }
    Some(out)
}

/// A wire-format violation. Carries a human-readable message; the only
/// safe reaction on the Host side is to refuse the access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    message: String,
}

impl WireError {
    fn new(message: &str) -> Self {
        Self {
            message: message.to_owned(),
        }
    }
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "wire error: {}", self.message)
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Minimal JSON machinery (no serde_json dependency)
// ---------------------------------------------------------------------------

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The subset of JSON values the protocol uses. Numbers keep their raw
/// text so integer fields parse losslessly.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(String),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

fn find<'a>(fields: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn opt_u64(fields: &[(String, Json)], key: &str) -> Result<Option<u64>, WireError> {
    match find(fields, key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Number(raw)) => raw
            .parse::<u64>()
            .map(Some)
            .map_err(|_| WireError::new(&format!("{key} is not an unsigned integer"))),
        Some(_) => Err(WireError::new(&format!("{key} is not a number"))),
    }
}

fn opt_string(fields: &[(String, Json)], key: &str) -> Result<Option<String>, WireError> {
    match find(fields, key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::String(s)) => Ok(Some(s.clone())),
        Some(_) => Err(WireError::new(&format!("{key} is not a string"))),
    }
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
fn parse_json(input: &str) -> Result<Json, WireError> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(WireError::new("trailing characters after JSON value"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, WireError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::String),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        _ => Err(WireError::new("unexpected character in JSON")),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, WireError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(WireError::new("invalid JSON literal"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, WireError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    if *pos == start {
        return Err(WireError::new("empty number"));
    }
    let raw = core::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| WireError::new("invalid number bytes"))?;
    // Validate it is at least float-shaped; raw text is kept for
    // lossless integer extraction later.
    raw.parse::<f64>()
        .map_err(|_| WireError::new("malformed number"))?;
    Ok(Json::Number(raw.to_owned()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, WireError> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(WireError::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| WireError::new("truncated \\u escape"))?;
                        let hex = core::str::from_utf8(hex)
                            .map_err(|_| WireError::new("invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| WireError::new("invalid \\u escape"))?;
                        // Surrogates are not paired here: the encoder never
                        // emits them and the protocol carries no astral
                        // escapes, so a lone surrogate is simply an error.
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| WireError::new("invalid \\u code point"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(WireError::new("invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance over one UTF-8 scalar (input is &str, so the
                // byte stream is valid UTF-8 by construction).
                let s = core::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| WireError::new("invalid UTF-8"))?;
                let c = s.chars().next().ok_or_else(|| WireError::new("empty"))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, WireError> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'{'));
    *pos += 1;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(WireError::new("expected object key"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(WireError::new("expected ':' after key"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            _ => return Err(WireError::new("expected ',' or '}'")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, WireError> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'['));
    *pos += 1;
    let mut values = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(values));
    }
    loop {
        let value = parse_value(bytes, pos)?;
        values.push(value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(values));
            }
            _ => return Err(WireError::new("expected ',' or ']'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permit_round_trips() {
        let body = DecisionBody::permit(60_000, 3);
        let json = body.to_json();
        assert_eq!(
            json,
            "{\"decision\":\"permit\",\"cacheable_ms\":60000,\"policy_epoch\":3}"
        );
        assert_eq!(DecisionBody::from_json(&json).unwrap(), body);
        assert!(body.is_permit());
    }

    #[test]
    fn deny_round_trips_with_escaped_reason() {
        let body = DecisionBody::deny("no \"permit\" for you\nline two");
        let json = body.to_json();
        let parsed = DecisionBody::from_json(&json).unwrap();
        assert_eq!(parsed, body);
        assert!(!parsed.is_permit());
    }

    #[test]
    fn deny_containing_permit_text_is_not_a_permit() {
        let body = "{\"decision\":\"deny\",\"reason\":\"would permit if consented\"}";
        let parsed = DecisionBody::from_json(body).unwrap();
        assert!(!parsed.is_permit());
        assert_eq!(DecisionBody::parse_cacheable_ms(body), 0);
    }

    #[test]
    fn malformed_bodies_fail_closed() {
        for body in [
            "certainly! \"permit\" granted",
            "{\"decision\":",
            "{\"decision\":42}",
            "{}",
            "[\"permit\"]",
            "{\"decision\":\"permit\"} trailing",
            "{\"decision\":\"permit\",\"cacheable_ms\":-5}",
            "{\"decision\":\"permit\",\"cacheable_ms\":\"60000\"}",
        ] {
            assert!(DecisionBody::from_json(body).is_err(), "{body}");
            assert_eq!(DecisionBody::parse_cacheable_ms(body), 0, "{body}");
        }
    }

    #[test]
    fn parse_cacheable_ms_matches_historical_behavior() {
        let cases = [
            (
                "{\"decision\":\"permit\",\"cacheable_ms\":60000,\"policy_epoch\":1}",
                60_000,
            ),
            (
                "{\"decision\":\"permit\",\"cacheable_ms\":0,\"policy_epoch\":1}",
                0,
            ),
            ("{\"decision\":\"permit\"}", 0),
            ("{\"decision\":\"deny\",\"reason\":\"nope\"}", 0),
            ("{\"decision\":\"deny\",\"cacheable_ms\":60000}", 0),
            ("{\"decision\":", 0),
            ("not json at all", 0),
        ];
        for (body, want) in cases {
            assert_eq!(DecisionBody::parse_cacheable_ms(body), want, "{body}");
        }
    }

    #[test]
    fn unknown_fields_are_tolerated() {
        let body = "{\"decision\":\"permit\",\"cacheable_ms\":5,\"policy_epoch\":1,\
                    \"extra\":{\"nested\":[1,2,null,true]},\"note\":\"x\"}";
        let parsed = DecisionBody::from_json(body).unwrap();
        assert!(parsed.is_permit());
        assert_eq!(parsed.cacheable_ms, Some(5));
    }

    #[test]
    fn null_optionals_read_as_absent() {
        let body = "{\"decision\":\"deny\",\"reason\":null,\"cacheable_ms\":null}";
        let parsed = DecisionBody::from_json(body).unwrap();
        assert_eq!(parsed.cacheable_ms, None);
        assert_eq!(parsed.reason, None);
    }

    #[test]
    fn batch_request_round_trips_and_caps() {
        let items: Vec<BatchItem> = (0..3)
            .map(|i| BatchItem {
                token: format!("tok-{i}"),
                resource: format!("files/r{i}.txt"),
                action: "read".into(),
                requester: "requester:app".into(),
            })
            .collect();
        let body = encode_batch_request(&items);
        assert_eq!(parse_batch_request(&body).unwrap(), items);

        let oversized: Vec<BatchItem> = (0..=MAX_BATCH)
            .map(|i| BatchItem {
                token: format!("t{i}"),
                resource: "r".into(),
                action: "read".into(),
                requester: "q".into(),
            })
            .collect();
        assert!(parse_batch_request(&encode_batch_request(&oversized)).is_err());
    }

    #[test]
    fn batch_response_round_trips() {
        let decisions = vec![
            DecisionBody::permit(400, 2),
            DecisionBody::deny("not in group"),
        ];
        let body = encode_batch_response(&decisions);
        assert_eq!(parse_batch_response(&body).unwrap(), decisions);
        assert!(parse_batch_response("{\"not\":\"array\"}").is_err());
        assert!(parse_batch_response("[{\"decision\":42}]").is_err());
    }

    #[test]
    fn empty_batches_are_legal() {
        assert_eq!(parse_batch_request("[]").unwrap(), Vec::<BatchItem>::new());
        assert_eq!(
            parse_batch_response("[]").unwrap(),
            Vec::<DecisionBody>::new()
        );
    }

    fn sample_sieve(key: &[u8]) -> SieveBody {
        let entries = vec![
            SieveEntry {
                fingerprint: sieve_fingerprint("tok-1", "files/a.txt", "read", "requester:app"),
                resource: "files/a.txt".into(),
                expires_at_ms: 60_000,
            },
            SieveEntry {
                fingerprint: sieve_fingerprint("tok-2", "files/b.txt", "write", "requester:app"),
                resource: "files/b.txt".into(),
                expires_at_ms: 45_000,
            },
        ];
        SieveBody::build("bob", 7, entries, key)
    }

    #[test]
    fn sieve_round_trips_and_verifies() {
        let body = sample_sieve(b"host-token-secret");
        let json = body.to_json();
        let parsed = SieveBody::from_json(&json).unwrap();
        assert_eq!(parsed, body);
        assert!(parsed.verify(b"host-token-secret"));
        assert!(!parsed.verify(b"some-other-token"));
    }

    #[test]
    fn empty_sieve_is_legal_and_signed() {
        let body = SieveBody::build("bob", 9, Vec::new(), b"k");
        let parsed = SieveBody::from_json(&body.to_json()).unwrap();
        assert!(parsed.entries.is_empty());
        assert!(parsed.verify(b"k"));
    }

    #[test]
    fn tampered_sieves_fail_verification() {
        let key = b"host-token-secret";
        let mut bumped_epoch = sample_sieve(key);
        bumped_epoch.epoch += 1;
        assert!(!bumped_epoch.verify(key));

        let mut dropped_entry = sample_sieve(key);
        dropped_entry.entries.pop();
        assert!(!dropped_entry.verify(key));

        let mut extended_expiry = sample_sieve(key);
        extended_expiry.entries[0].expires_at_ms += 1;
        assert!(!extended_expiry.verify(key));

        let mut swapped_resource = sample_sieve(key);
        swapped_resource.entries[0].resource = "files/other.txt".into();
        assert!(!swapped_resource.verify(key));
    }

    #[test]
    fn malformed_sieve_bodies_fail_closed() {
        for body in [
            "not json",
            "[]",
            "{}",
            "{\"owner\":\"bob\",\"epoch\":1,\"entries\":[],\"sig\":42}",
            "{\"owner\":\"bob\",\"entries\":[],\"sig\":\"aa\"}",
            "{\"owner\":\"bob\",\"epoch\":-1,\"entries\":[],\"sig\":\"aa\"}",
            "{\"owner\":\"bob\",\"epoch\":1,\"entries\":[\"flat\"],\"sig\":\"aa\"}",
            "{\"owner\":\"bob\",\"epoch\":1,\"entries\":[[\"zz\",1,\"r\"]],\"sig\":\"aa\"}",
            "{\"owner\":\"bob\",\"epoch\":1,\"entries\":[[\"aabb\",1,\"r\"]],\"sig\":\"aa\"}",
            "{\"owner\":\"bob\",\"epoch\":1,\"entries\":[[\
             \"00112233445566778899aabbccddeeff\",-2,\"r\"]],\"sig\":\"aa\"}",
        ] {
            assert!(SieveBody::from_json(body).is_err(), "{body}");
        }
    }

    fn sample_delta(key: &[u8]) -> SieveDeltaBody {
        SieveDeltaBody::build(
            "bob",
            9,
            7,
            vec![SieveEntry {
                fingerprint: sieve_fingerprint("tok-3", "files/c.txt", "read", "requester:app"),
                resource: "files/c.txt".into(),
                expires_at_ms: 99_000,
            }],
            vec![sieve_fingerprint(
                "tok-1",
                "files/a.txt",
                "read",
                "requester:app",
            )],
            key,
        )
    }

    #[test]
    fn sieve_delta_round_trips_and_verifies() {
        let key = b"host-token-secret";
        let delta = sample_delta(key);
        let parsed = SieveDeltaBody::from_json(&delta.to_json()).unwrap();
        assert_eq!(parsed, delta);
        assert!(parsed.verify(key));
        assert!(!parsed.verify(b"some-other-token"));
    }

    #[test]
    fn tampered_sieve_deltas_fail_verification() {
        let key = b"host-token-secret";
        let mut bumped_base = sample_delta(key);
        bumped_base.base_epoch += 1;
        assert!(!bumped_base.verify(key));

        let mut dropped_removal = sample_delta(key);
        dropped_removal.removed.pop();
        assert!(!dropped_removal.verify(key));

        let mut extended_expiry = sample_delta(key);
        extended_expiry.added[0].expires_at_ms += 1;
        assert!(!extended_expiry.verify(key));
    }

    #[test]
    fn sieve_and_delta_bodies_never_cross_parse() {
        let key = b"host-token-secret";
        // Disjoint field sets keep the two body kinds unambiguous on the
        // shared epoch-push route.
        assert!(SieveBody::from_json(&sample_delta(key).to_json()).is_err());
        assert!(SieveDeltaBody::from_json(&sample_sieve(key).to_json()).is_err());
        // And the shared route's domain separators keep a delta from ever
        // being replayed as a full sieve even if fields were grafted.
        let delta = sample_delta(key);
        let grafted = SieveBody {
            owner: delta.owner.clone(),
            epoch: delta.epoch,
            entries: delta.added.clone(),
            sig: delta.sig.clone(),
        };
        assert!(!grafted.verify(key));
    }

    #[test]
    fn malformed_sieve_delta_bodies_fail_closed() {
        for body in [
            "not json",
            "{}",
            "{\"owner\":\"bob\",\"epoch\":1,\"added\":[],\"removed\":[],\"sig\":42}",
            "{\"owner\":\"bob\",\"epoch\":1,\"added\":[],\"removed\":[],\"sig\":\"aa\"}",
            "{\"owner\":\"bob\",\"epoch\":1,\"base_epoch\":1,\"added\":[[\"zz\",1,\"r\"]],\
             \"removed\":[],\"sig\":\"aa\"}",
            "{\"owner\":\"bob\",\"epoch\":1,\"base_epoch\":1,\"added\":[],\
             \"removed\":[\"zz\"],\"sig\":\"aa\"}",
        ] {
            assert!(SieveDeltaBody::from_json(body).is_err(), "{body}");
        }
    }

    #[test]
    fn sieve_fingerprints_separate_fields() {
        // No two tuples that differ anywhere may collide — in particular
        // shifting bytes across the field boundary must change the hash.
        let a = sieve_fingerprint("tok", "res", "read", "req");
        assert_eq!(a, sieve_fingerprint("tok", "res", "read", "req"));
        assert_ne!(a, sieve_fingerprint("tok", "res", "read", "req2"));
        assert_ne!(a, sieve_fingerprint("tokr", "es", "read", "req"));
        assert_ne!(a, sieve_fingerprint("tok", "res", "rea", "dreq"));
    }

    #[test]
    fn unchanged_body_round_trips_exactly() {
        let body = UnchangedBody { cacheable_ms: 400 };
        let json = body.to_json();
        assert_eq!(json, "{\"unchanged\":true,\"cacheable_ms\":400}");
        assert_eq!(UnchangedBody::from_json(&json).unwrap(), body);
        // An unchanged reply is strictly smaller than the permit it
        // replaces — by more than the `if_epoch` query param costs the
        // request (`&if_epoch=<e>` is 10 + digits(e) bytes, the dropped
        // `,"policy_epoch":<e>` echo is 16 + digits(e)), so the
        // conditional exchange saves wire bytes end to end for every
        // epoch value. The CI work-count gate pins the measured level.
        let epoch_param = "&if_epoch=7".len();
        assert!(json.len() + epoch_param < DecisionBody::permit(400, 7).to_json().len());
    }

    #[test]
    fn unchanged_and_decision_bodies_never_cross_parse() {
        let unchanged = UnchangedBody { cacheable_ms: 400 }.to_json();
        assert!(DecisionBody::from_json(&unchanged).is_err());
        let permit = DecisionBody::permit(400, 7).to_json();
        assert!(UnchangedBody::from_json(&permit).is_err());
    }

    #[test]
    fn malformed_unchanged_bodies_fail_closed() {
        for body in [
            "not json",
            "{}",
            "{\"unchanged\":false,\"cacheable_ms\":1}",
            "{\"unchanged\":\"true\",\"cacheable_ms\":1}",
            "{\"unchanged\":true}",
            "{\"unchanged\":true,\"cacheable_ms\":-1}",
            "{\"cacheable_ms\":1}",
        ] {
            assert!(UnchangedBody::from_json(body).is_err(), "{body}");
        }
    }

    fn sample_invalidation(key: &[u8]) -> InvalidationBody {
        InvalidationBody::build(
            "bob",
            9,
            vec![
                sieve_fingerprint("tok-1", "files/a.txt", "read", "requester:app"),
                sieve_fingerprint("tok-2", "files/b.txt", "write", "requester:app"),
            ],
            key,
        )
    }

    #[test]
    fn invalidation_round_trips_and_verifies() {
        let key = b"host-token-secret";
        let body = sample_invalidation(key);
        let parsed = InvalidationBody::from_json(&body.to_json()).unwrap();
        assert_eq!(parsed, body);
        assert!(parsed.verify(key));
        assert!(!parsed.verify(b"some-other-token"));
    }

    #[test]
    fn empty_invalidation_is_legal_and_signed() {
        let body = InvalidationBody::build("bob", 3, Vec::new(), b"k");
        let parsed = InvalidationBody::from_json(&body.to_json()).unwrap();
        assert!(parsed.invalidated.is_empty());
        assert!(parsed.verify(b"k"));
    }

    #[test]
    fn tampered_invalidations_fail_verification() {
        let key = b"host-token-secret";
        let mut bumped_epoch = sample_invalidation(key);
        bumped_epoch.epoch += 1;
        assert!(!bumped_epoch.verify(key));

        let mut dropped_fp = sample_invalidation(key);
        dropped_fp.invalidated.pop();
        assert!(!dropped_fp.verify(key));

        let mut swapped_owner = sample_invalidation(key);
        swapped_owner.owner = "mallory".into();
        assert!(!swapped_owner.verify(key));
    }

    #[test]
    fn malformed_invalidation_bodies_fail_closed() {
        for body in [
            "not json",
            "{}",
            "{\"owner\":\"bob\",\"epoch\":1,\"invalidated\":[],\"sig\":42}",
            "{\"owner\":\"bob\",\"invalidated\":[],\"sig\":\"aa\"}",
            "{\"owner\":\"bob\",\"epoch\":1,\"invalidated\":[42],\"sig\":\"aa\"}",
            "{\"owner\":\"bob\",\"epoch\":1,\"invalidated\":[\"zz\"],\"sig\":\"aa\"}",
            "{\"owner\":\"bob\",\"epoch\":1,\"invalidated\":\"aa\",\"sig\":\"aa\"}",
        ] {
            assert!(InvalidationBody::from_json(body).is_err(), "{body}");
        }
    }

    #[test]
    fn push_body_kinds_never_cross_parse() {
        let key = b"host-token-secret";
        // All three push body kinds share EPOCH_PUSH_PATH; disjoint field
        // sets keep them unambiguous...
        let inval = sample_invalidation(key).to_json();
        assert!(SieveBody::from_json(&inval).is_err());
        assert!(SieveDeltaBody::from_json(&inval).is_err());
        assert!(InvalidationBody::from_json(&sample_sieve(key).to_json()).is_err());
        assert!(InvalidationBody::from_json(&sample_delta(key).to_json()).is_err());
        // ...and domain separators keep grafted fields from verifying: an
        // invalidation's removals can never replay as a delta's.
        let inval = sample_invalidation(key);
        let grafted = SieveDeltaBody {
            owner: inval.owner.clone(),
            epoch: inval.epoch,
            base_epoch: inval.epoch,
            added: Vec::new(),
            removed: inval.invalidated.clone(),
            sig: inval.sig.clone(),
        };
        assert!(!grafted.verify(key));
    }

    #[test]
    fn authorize_request_round_trips_and_caps() {
        let items: Vec<AuthorizeItem> = (0..3)
            .map(|i| AuthorizeItem {
                owner: "bob".into(),
                resource: format!("files/r{i}.txt"),
                action: "read".into(),
            })
            .collect();
        let body = encode_authorize_request(&items);
        assert_eq!(parse_authorize_request(&body).unwrap(), items);

        let oversized: Vec<AuthorizeItem> = (0..=MAX_BATCH)
            .map(|i| AuthorizeItem {
                owner: format!("u{i}"),
                resource: "r".into(),
                action: "read".into(),
            })
            .collect();
        assert!(parse_authorize_request(&encode_authorize_request(&oversized)).is_err());
        assert!(parse_authorize_request("{\"not\":\"array\"}").is_err());
        assert!(parse_authorize_request("[{\"owner\":\"bob\"}]").is_err());
    }

    #[test]
    fn authorize_replies_round_trip_every_variant() {
        let replies = vec![
            AuthorizeReply::Token("tok-1".into()),
            AuthorizeReply::Denied("not in group".into()),
            AuthorizeReply::Pending("consent-9".into()),
            AuthorizeReply::NeedsClaims(vec!["age".into(), "email".into()]),
            AuthorizeReply::Error("expired host token".into()),
        ];
        let body = encode_authorize_response(&replies);
        assert_eq!(parse_authorize_response(&body).unwrap(), replies);
    }

    #[test]
    fn malformed_authorize_replies_fail_closed() {
        for body in [
            "not json",
            "{\"token\":\"t\"}",
            "[{}]",
            "[{\"token\":42}]",
            "[{\"claims\":[42]}]",
            "[{\"token\":\"t\",\"denied\":\"also\"}]",
            "[{\"verdict\":\"token\"}]",
        ] {
            assert!(parse_authorize_response(body).is_err(), "{body}");
        }
    }

    #[test]
    fn register_body_round_trips_and_validates_kind() {
        for kind in ["host", "requester"] {
            let body = RegisterBody {
                kind: kind.into(),
                authority: "files.example".into(),
            };
            assert_eq!(RegisterBody::from_json(&body.to_json()).unwrap(), body);
        }
        for body in [
            "not json",
            "{}",
            "{\"kind\":\"am\",\"authority\":\"x\"}",
            "{\"kind\":\"host\",\"authority\":\"\"}",
            "{\"kind\":\"host\"}",
            "{\"kind\":42,\"authority\":\"x\"}",
        ] {
            assert!(RegisterBody::from_json(body).is_err(), "{body}");
        }
    }

    #[test]
    fn registration_and_delegate_replies_round_trip() {
        let reg = RegistrationReply {
            registrant_id: "reg-1".into(),
            secret: "s3cr3t".into(),
        };
        assert_eq!(RegistrationReply::from_json(&reg.to_json()).unwrap(), reg);
        let del = DelegateReply {
            delegation_id: "d-1".into(),
            host_token: "ht".into(),
        };
        assert_eq!(DelegateReply::from_json(&del.to_json()).unwrap(), del);
        for body in [
            "not json",
            "{}",
            "{\"registrant_id\":\"\",\"secret\":\"s\"}",
            "{\"registrant_id\":\"r\",\"secret\":42}",
        ] {
            assert!(RegistrationReply::from_json(body).is_err(), "{body}");
        }
        for body in ["{}", "{\"delegation_id\":\"d\"}", "{\"host_token\":\"h\"}"] {
            assert!(DelegateReply::from_json(body).is_err(), "{body}");
        }
    }
}
