//! Modelled network latency charged per message hop.
//!
//! The paper's protocol trades message round-trips for central control
//! (§V.B.6 argues subsequent requests are "greatly simplified"). To quantify
//! that trade the [`SimNet`](crate::net::SimNet) charges each hop a latency
//! drawn from this model against the shared [`SimClock`](crate::clock::SimClock).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-hop latency model.
///
/// The default charges nothing, which keeps unit tests time-free; experiments
/// configure a WAN-like constant, per-edge overrides, and (optionally) a
/// deterministic jitter.
///
/// # Example
///
/// ```
/// use ucam_webenv::LatencyModel;
///
/// let model = LatencyModel::constant(40)
///     .with_edge("host.example", "am.example", 15);
/// assert_eq!(model.latency_ms("a", "b"), 40);
/// assert_eq!(model.latency_ms("host.example", "am.example"), 15);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LatencyModel {
    base_ms: u64,
    /// Overrides for specific (from, to) pairs.
    edges: BTreeMap<(String, String), u64>,
    /// Maximum extra milliseconds of deterministic jitter per hop.
    jitter_ms: u64,
    /// Draw counter shared across clones so the jitter sequence is a
    /// deterministic function of dispatch order.
    draws: Arc<AtomicU64>,
    /// Periodic latency spikes for specific (from, to) pairs.
    spikes: BTreeMap<(String, String), SpikeModel>,
}

/// A periodic latency spike on one directed edge: every `every`-th
/// traversal of the edge pays `spike_ms` extra. Deterministic by
/// construction (counter-driven, shared across clones).
#[derive(Debug, Clone)]
struct SpikeModel {
    every: u64,
    spike_ms: u64,
    count: Arc<AtomicU64>,
}

impl LatencyModel {
    /// A model charging zero latency (the default).
    #[must_use]
    pub fn zero() -> Self {
        LatencyModel::default()
    }

    /// A model charging `ms` milliseconds for every hop.
    #[must_use]
    pub fn constant(ms: u64) -> Self {
        LatencyModel {
            base_ms: ms,
            ..LatencyModel::default()
        }
    }

    /// Overrides the latency for messages from `from` to `to`.
    #[must_use]
    pub fn with_edge(mut self, from: &str, to: &str, ms: u64) -> Self {
        self.edges.insert((from.to_owned(), to.to_owned()), ms);
        self
    }

    /// Adds up to `max_extra_ms` of **deterministic** jitter per hop: the
    /// n-th hop of a run always draws the same extra delay, so experiments
    /// stay reproducible while latencies stop being perfectly uniform.
    #[must_use]
    pub fn with_jitter(mut self, max_extra_ms: u64) -> Self {
        self.jitter_ms = max_extra_ms;
        self
    }

    /// Adds a periodic spike on the `from` → `to` edge: every `every`-th
    /// traversal pays `spike_ms` on top of the modelled latency. Models
    /// tail-latency events (GC pauses, queue buildup) deterministically.
    /// `every == 0` is treated as "never spikes".
    #[must_use]
    pub fn with_spike(mut self, from: &str, to: &str, every: u64, spike_ms: u64) -> Self {
        self.spikes.insert(
            (from.to_owned(), to.to_owned()),
            SpikeModel {
                every,
                spike_ms,
                count: Arc::new(AtomicU64::new(0)),
            },
        );
        self
    }

    /// Returns the one-way latency for a hop from `from` to `to`.
    #[must_use]
    pub fn latency_ms(&self, from: &str, to: &str) -> u64 {
        // Zero/constant models (every unit test and the dispatch fast
        // path) must not allocate the owned lookup key.
        let base = if self.edges.is_empty() && self.spikes.is_empty() {
            self.base_ms
        } else {
            let key = (from.to_owned(), to.to_owned());
            let edge = self.edges.get(&key).copied().unwrap_or(self.base_ms);
            let spike = self.spikes.get(&key).map_or(0, |s| {
                if s.every == 0 {
                    return 0;
                }
                let n = s.count.fetch_add(1, Ordering::Relaxed);
                if (n + 1) % s.every == 0 {
                    s.spike_ms
                } else {
                    0
                }
            });
            edge + spike
        };
        if self.jitter_ms == 0 {
            return base;
        }
        let draw = self.draws.fetch_add(1, Ordering::Relaxed);
        base + splitmix64(draw) % (self.jitter_ms + 1)
    }
}

/// SplitMix64: a tiny, high-quality deterministic mixer. Shared with the
/// network fault models and the retry layer for seeded, replayable draws.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_by_default() {
        assert_eq!(LatencyModel::default().latency_ms("a", "b"), 0);
        assert_eq!(LatencyModel::zero().latency_ms("x", "y"), 0);
    }

    #[test]
    fn constant_applies_everywhere() {
        let m = LatencyModel::constant(25);
        assert_eq!(m.latency_ms("a", "b"), 25);
        assert_eq!(m.latency_ms("b", "a"), 25);
    }

    #[test]
    fn edge_override_is_directional() {
        let m = LatencyModel::constant(25).with_edge("a", "b", 5);
        assert_eq!(m.latency_ms("a", "b"), 5);
        assert_eq!(m.latency_ms("b", "a"), 25);
    }

    #[test]
    fn jitter_bounded_and_deterministic() {
        let draws: Vec<u64> = {
            let m = LatencyModel::constant(10).with_jitter(5);
            (0..100).map(|_| m.latency_ms("a", "b")).collect()
        };
        assert!(draws.iter().all(|&ms| (10..=15).contains(&ms)));
        // Not all identical (jitter does something).
        assert!(draws.iter().any(|&ms| ms != draws[0]));
        // A fresh model replays the same sequence.
        let replay: Vec<u64> = {
            let m = LatencyModel::constant(10).with_jitter(5);
            (0..100).map(|_| m.latency_ms("a", "b")).collect()
        };
        assert_eq!(draws, replay);
    }

    #[test]
    fn spike_fires_periodically_on_its_edge_only() {
        let m = LatencyModel::constant(10).with_spike("h", "am", 3, 90);
        // Other edges never spike.
        assert_eq!(m.latency_ms("a", "b"), 10);
        // Every 3rd traversal of h→am pays the spike.
        let draws: Vec<u64> = (0..6).map(|_| m.latency_ms("h", "am")).collect();
        assert_eq!(draws, vec![10, 10, 100, 10, 10, 100]);
    }

    #[test]
    fn spike_every_zero_never_fires() {
        let m = LatencyModel::constant(5).with_spike("h", "am", 0, 90);
        assert!((0..10).all(|_| m.latency_ms("h", "am") == 5));
    }

    #[test]
    fn clones_share_the_draw_sequence() {
        let m = LatencyModel::constant(0).with_jitter(1000);
        let clone = m.clone();
        let a = m.latency_ms("a", "b");
        let b = clone.latency_ms("a", "b");
        // Clone continues the sequence rather than restarting it.
        let fresh = LatencyModel::constant(0).with_jitter(1000);
        let a2 = fresh.latency_ms("a", "b");
        let b2 = fresh.latency_ms("a", "b");
        assert_eq!((a, b), (a2, b2));
    }
}
