//! Simulated Web 2.0 environment for the UCAM system.
//!
//! The paper's architecture (Fig. 1) is a set of Web applications — Hosts,
//! Authorization Managers, Requesters — exchanging HTTP requests, responses
//! and browser redirects. This crate provides a deterministic, in-process
//! stand-in for that environment:
//!
//! * [`Url`] — a small URL type (scheme, authority, path, query),
//! * [`Request`] / [`Response`] / [`Method`] / [`Status`] — HTTP-like
//!   messages,
//! * [`WebApp`] — the trait every simulated application implements,
//! * [`Transport`] — the message edge connecting the three parties, with
//!   two backends behind one trait:
//!   [`SimNet`] — the deterministic in-memory network: registers apps by
//!   authority, dispatches messages, counts them, charges latency to a
//!   [`SimClock`], and records a [`trace`] of every hop — and
//!   [`HttpTransport`] — the same applications served over loopback TCP
//!   with a hand-rolled HTTP/1.1 codec (DESIGN.md §14),
//! * [`Browser`] — a user agent holding a cookie jar that follows redirects
//!   (the glue for the paper's redirect-based protocol steps),
//! * [`identity`] — an OpenID-like identity provider (authentication is out
//!   of the paper's scope; this stands in for "OpenID or Google Account
//!   credentials", §V.B),
//! * [`trace`] — the protocol trace recorder used to regenerate the paper's
//!   sequence diagrams (Figs. 2–6).
//!
//! The substitution of a real HTTP stack with `SimNet` is deliberate and
//! documented in `DESIGN.md` §5: the paper's protocol is defined by message
//! sequences, orderings and redirects, all of which `SimNet` reproduces
//! exactly while making message counts and modelled latency measurable.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use ucam_webenv::{Method, Request, Response, SimNet, Status, Transport, WebApp};
//!
//! struct Echo;
//! impl WebApp for Echo {
//!     fn authority(&self) -> &str { "echo.example" }
//!     fn handle(&self, _net: &dyn Transport, req: &Request) -> Response {
//!         Response::ok().with_body(req.param("msg").unwrap_or("?"))
//!     }
//! }
//!
//! let net = SimNet::new();
//! net.register(Arc::new(Echo));
//! let req = Request::new(Method::Get, "https://echo.example/hello").with_param("msg", "hi");
//! let resp = net.dispatch("client", req);
//! assert_eq!(resp.status, Status::Ok);
//! assert_eq!(resp.body, "hi");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod browser;
pub mod clock;
pub mod codec;
pub mod http;
pub mod httpnet;
pub mod identity;
pub mod latency;
pub mod net;
pub mod protocol;
pub mod retry;
pub mod trace;
pub mod transport;
pub mod url;

pub use browser::Browser;
pub use clock::SimClock;
pub use http::{Method, Request, Response, Status, TransportError};
pub use httpnet::HttpTransport;
pub use latency::LatencyModel;
pub use net::{FlapSchedule, NetStats, SimNet, WebApp};
pub use protocol::{BatchItem, DecisionBody, WireError};
pub use retry::{RetryPolicy, RetryReport};
pub use trace::{TraceEvent, TraceKind, TraceRecorder};
pub use transport::Transport;
pub use url::{ParseUrlError, Url};
