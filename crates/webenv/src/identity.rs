//! An OpenID-like identity provider.
//!
//! The paper deliberately keeps authentication out of the protocol: "a User
//! could authenticate to a Host using OpenID or Google Account credentials"
//! (§V.B). This module provides that existing technology in simulated form:
//! a central [`IdentityProvider`] where users hold credentials, and signed
//! **identity assertions** that any application can verify through an
//! [`IdentityVerifier`] (modelling the IdP trust relationship).

use std::collections::HashMap;
use std::fmt;

use parking_lot::RwLock;
use ucam_crypto::SigningKey;

use crate::clock::SimClock;
use crate::http::{Request, Response, Status};
use crate::net::WebApp;
use crate::transport::Transport;

/// Default assertion lifetime: one simulated hour.
pub const ASSERTION_TTL_MS: u64 = 60 * 60 * 1000;

/// An authentication error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthError {
    /// No such user is registered.
    UnknownUser(String),
    /// The password did not match.
    BadPassword,
    /// The assertion token is malformed or has a bad signature.
    InvalidAssertion,
    /// The assertion token has expired.
    ExpiredAssertion,
}

impl fmt::Display for AuthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthError::UnknownUser(u) => write!(f, "unknown user: {u}"),
            AuthError::BadPassword => write!(f, "bad password"),
            AuthError::InvalidAssertion => write!(f, "invalid identity assertion"),
            AuthError::ExpiredAssertion => write!(f, "expired identity assertion"),
        }
    }
}

impl std::error::Error for AuthError {}

/// A signed statement "this is user U, valid until T".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdentityAssertion {
    /// The authenticated user id.
    pub user: String,
    /// The sealed token to present to applications.
    pub token: String,
    /// Expiry in simulated milliseconds.
    pub expires_at_ms: u64,
}

/// Verifies identity assertions on behalf of relying applications.
///
/// Obtained from [`IdentityProvider::verifier`]; holding one models the
/// "existing technologies" trust between an application and the IdP.
#[derive(Debug, Clone)]
pub struct IdentityVerifier {
    key: SigningKey,
    clock: SimClock,
}

impl IdentityVerifier {
    /// Verifies `token` and returns the asserted user id.
    ///
    /// # Errors
    ///
    /// Returns [`AuthError::InvalidAssertion`] for forged or malformed
    /// tokens and [`AuthError::ExpiredAssertion`] past the expiry time.
    pub fn verify(&self, token: &str) -> Result<String, AuthError> {
        let payload = self
            .key
            .open(token)
            .map_err(|_| AuthError::InvalidAssertion)?;
        let text = String::from_utf8(payload).map_err(|_| AuthError::InvalidAssertion)?;
        let mut user = None;
        let mut exp = None;
        for field in text.split(';') {
            match field.split_once('=') {
                Some(("user", v)) => user = Some(v.to_owned()),
                Some(("exp", v)) => exp = v.parse::<u64>().ok(),
                _ => {}
            }
        }
        let (user, exp) = match (user, exp) {
            (Some(u), Some(e)) => (u, e),
            _ => return Err(AuthError::InvalidAssertion),
        };
        if self.clock.now_ms() >= exp {
            return Err(AuthError::ExpiredAssertion);
        }
        Ok(user)
    }
}

/// The central identity provider application.
///
/// # Example
///
/// ```
/// use ucam_webenv::identity::IdentityProvider;
/// use ucam_webenv::SimClock;
///
/// let clock = SimClock::new();
/// let idp = IdentityProvider::new("idp.example", clock);
/// idp.register_user("bob", "hunter2");
/// let assertion = idp.login("bob", "hunter2")?;
/// assert_eq!(idp.verifier().verify(&assertion.token)?, "bob");
/// # Ok::<(), ucam_webenv::identity::AuthError>(())
/// ```
pub struct IdentityProvider {
    authority: String,
    key: SigningKey,
    users: RwLock<HashMap<String, String>>,
    clock: SimClock,
}

impl fmt::Debug for IdentityProvider {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IdentityProvider")
            .field("authority", &self.authority)
            .field("users", &self.users.read().len())
            .finish_non_exhaustive()
    }
}

impl IdentityProvider {
    /// Creates an IdP addressed as `authority`, stamping assertions against
    /// `clock`.
    #[must_use]
    pub fn new(authority: &str, clock: SimClock) -> Self {
        IdentityProvider {
            authority: authority.to_owned(),
            key: SigningKey::generate(),
            users: RwLock::new(HashMap::new()),
            clock,
        }
    }

    /// Registers (or re-registers) a user with a password.
    pub fn register_user(&self, user: &str, password: &str) {
        self.users
            .write()
            .insert(user.to_owned(), password.to_owned());
    }

    /// Authenticates `user` and mints an identity assertion.
    ///
    /// # Errors
    ///
    /// Returns [`AuthError::UnknownUser`] or [`AuthError::BadPassword`].
    pub fn login(&self, user: &str, password: &str) -> Result<IdentityAssertion, AuthError> {
        let users = self.users.read();
        let stored = users
            .get(user)
            .ok_or_else(|| AuthError::UnknownUser(user.to_owned()))?;
        if stored != password {
            return Err(AuthError::BadPassword);
        }
        let expires_at_ms = self.clock.now_ms() + ASSERTION_TTL_MS;
        let nonce = ucam_crypto::random_token(8);
        let payload = format!("user={user};exp={expires_at_ms};n={nonce}");
        Ok(IdentityAssertion {
            user: user.to_owned(),
            token: self.key.seal(payload.as_bytes()),
            expires_at_ms,
        })
    }

    /// Returns a verifier that relying applications use to check assertions.
    #[must_use]
    pub fn verifier(&self) -> IdentityVerifier {
        IdentityVerifier {
            key: self.key.clone(),
            clock: self.clock.clone(),
        }
    }
}

impl WebApp for IdentityProvider {
    fn authority(&self) -> &str {
        &self.authority
    }

    fn handle(&self, _net: &dyn Transport, req: &Request) -> Response {
        match req.url.path() {
            "/login" => {
                let (user, password) = match (req.param("user"), req.param("password")) {
                    (Some(u), Some(p)) => (u, p),
                    _ => return Response::bad_request("user and password required"),
                };
                match self.login(user, password) {
                    Ok(assertion) => Response::ok()
                        .with_body(assertion.token.clone())
                        .with_cookie("ident", &assertion.token),
                    Err(e) => Response::with_status(Status::Unauthorized).with_body(e.to_string()),
                }
            }
            "/verify" => {
                let token = match req.param("token") {
                    Some(t) => t,
                    None => return Response::bad_request("token required"),
                };
                match self.verifier().verify(token) {
                    Ok(user) => Response::ok().with_body(user),
                    Err(e) => Response::with_status(Status::Unauthorized).with_body(e.to_string()),
                }
            }
            other => Response::not_found(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Method;
    use crate::net::SimNet;
    use std::sync::Arc;

    fn idp() -> IdentityProvider {
        let idp = IdentityProvider::new("idp.example", SimClock::new());
        idp.register_user("bob", "pw-bob");
        idp
    }

    #[test]
    fn login_and_verify() {
        let idp = idp();
        let a = idp.login("bob", "pw-bob").unwrap();
        assert_eq!(a.user, "bob");
        assert_eq!(idp.verifier().verify(&a.token).unwrap(), "bob");
    }

    #[test]
    fn login_rejects_unknown_user() {
        let idp = idp();
        assert_eq!(
            idp.login("mallory", "x"),
            Err(AuthError::UnknownUser("mallory".to_owned()))
        );
    }

    #[test]
    fn login_rejects_bad_password() {
        let idp = idp();
        assert_eq!(idp.login("bob", "wrong"), Err(AuthError::BadPassword));
    }

    #[test]
    fn verify_rejects_forged_token() {
        let idp = idp();
        assert_eq!(
            idp.verifier().verify("AAAA.BBBB"),
            Err(AuthError::InvalidAssertion)
        );
    }

    #[test]
    fn verify_rejects_expired_token() {
        let clock = SimClock::new();
        let idp = IdentityProvider::new("idp.example", clock.clone());
        idp.register_user("bob", "pw");
        let a = idp.login("bob", "pw").unwrap();
        clock.advance_ms(ASSERTION_TTL_MS + 1);
        assert_eq!(
            idp.verifier().verify(&a.token),
            Err(AuthError::ExpiredAssertion)
        );
    }

    #[test]
    fn tokens_from_other_idp_rejected() {
        let idp1 = idp();
        let idp2 = IdentityProvider::new("idp2.example", SimClock::new());
        idp2.register_user("bob", "pw-bob");
        let a = idp2.login("bob", "pw-bob").unwrap();
        assert_eq!(
            idp1.verifier().verify(&a.token),
            Err(AuthError::InvalidAssertion)
        );
    }

    #[test]
    fn web_login_endpoint() {
        let net = SimNet::new();
        net.register(Arc::new(idp()));
        let resp = net.dispatch(
            "browser:bob",
            Request::new(Method::Post, "https://idp.example/login")
                .with_param("user", "bob")
                .with_param("password", "pw-bob"),
        );
        assert_eq!(resp.status, Status::Ok);
        assert!(!resp.body.is_empty());
        let verify = net.dispatch(
            "host.example",
            Request::new(Method::Get, "https://idp.example/verify").with_param("token", &resp.body),
        );
        assert_eq!(verify.status, Status::Ok);
        assert_eq!(verify.body, "bob");
    }

    #[test]
    fn web_login_rejects_bad_credentials() {
        let net = SimNet::new();
        net.register(Arc::new(idp()));
        let resp = net.dispatch(
            "browser:bob",
            Request::new(Method::Post, "https://idp.example/login")
                .with_param("user", "bob")
                .with_param("password", "nope"),
        );
        assert_eq!(resp.status, Status::Unauthorized);
    }

    #[test]
    fn web_unknown_path_404s() {
        let net = SimNet::new();
        net.register(Arc::new(idp()));
        let resp = net.dispatch("x", Request::new(Method::Get, "https://idp.example/nope"));
        assert_eq!(resp.status, Status::NotFound);
    }
}
