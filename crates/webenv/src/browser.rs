//! A simulated user agent (browser).
//!
//! The paper's protocol is redirect-driven: the User is bounced between Host
//! and AM while delegating access control (Fig. 3) and composing policies
//! (Fig. 4), and a Requester is bounced to the AM and back when obtaining an
//! authorization token (Fig. 5). `Browser` holds a per-authority cookie jar
//! and follows `302` redirects, exactly as a real user agent would.

use std::collections::BTreeMap;

use crate::http::{Method, Request, Response, Status};
use crate::transport::Transport;

/// Maximum redirects followed before giving up — guards against loops.
const MAX_REDIRECTS: usize = 16;

/// A cookie-holding, redirect-following user agent.
///
/// # Example
///
/// ```
/// use ucam_webenv::{Browser, SimNet};
///
/// let net = SimNet::new();
/// let mut browser = Browser::new("browser:bob");
/// // No app registered: the browser surfaces the 503.
/// let resp = browser.get(&net, "https://nowhere.example/");
/// assert_eq!(resp.status.code(), 503);
/// ```
#[derive(Debug, Clone)]
pub struct Browser {
    label: String,
    /// authority -> cookie name -> value
    jar: BTreeMap<String, BTreeMap<String, String>>,
}

impl Browser {
    /// Creates a browser identified in traces and stats as `label`
    /// (convention: `browser:<user>` or `requester:<app>`).
    #[must_use]
    pub fn new(label: &str) -> Self {
        Browser {
            label: label.to_owned(),
            jar: BTreeMap::new(),
        }
    }

    /// Returns the label this browser uses on the network.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Returns the stored cookie `name` for `authority`, if any.
    #[must_use]
    pub fn cookie(&self, authority: &str, name: &str) -> Option<&str> {
        self.jar.get(authority)?.get(name).map(String::as_str)
    }

    /// Sets a cookie directly (used by tests and by login helpers).
    pub fn set_cookie(&mut self, authority: &str, name: &str, value: &str) {
        self.jar
            .entry(authority.to_owned())
            .or_default()
            .insert(name.to_owned(), value.to_owned());
    }

    /// Removes all cookies for `authority` (logout).
    pub fn clear_cookies(&mut self, authority: &str) {
        self.jar.remove(authority);
    }

    /// Issues a GET and follows redirects.
    ///
    /// # Panics
    ///
    /// Panics if `url` does not parse (static test URLs); use
    /// [`Browser::request`] with a parsed [`Url`](crate::url::Url) for dynamic targets.
    pub fn get(&mut self, net: &dyn Transport, url: &str) -> Response {
        self.request(net, Request::new(Method::Get, url))
    }

    /// Issues a POST with form parameters and follows redirects.
    ///
    /// # Panics
    ///
    /// Panics if `url` does not parse.
    pub fn post(&mut self, net: &dyn Transport, url: &str, form: &[(&str, &str)]) -> Response {
        let mut req = Request::new(Method::Post, url);
        for (k, v) in form {
            req = req.with_param(k, v);
        }
        self.request(net, req)
    }

    /// Sends `req`, attaching cookies for its authority, following up to
    /// [`MAX_REDIRECTS`](self) redirects (cookies are re-evaluated per hop, and
    /// redirected requests are GETs, as in real browsers).
    pub fn request(&mut self, net: &dyn Transport, mut req: Request) -> Response {
        for _ in 0..=MAX_REDIRECTS {
            let authority = req.url.authority().to_owned();
            req = self.attach_cookies(req);
            let resp = net.dispatch(&self.label, req);
            self.store_cookies(&authority, &resp);
            match resp.location() {
                Some(location) => {
                    req = Request::to_url(Method::Get, location);
                }
                None => return resp,
            }
        }
        Response::with_status(Status::BadRequest).with_body("redirect loop detected")
    }

    /// Sends a single request without following redirects (used where a
    /// protocol step must observe the redirect itself).
    pub fn request_no_follow(&mut self, net: &dyn Transport, req: Request) -> Response {
        let authority = req.url.authority().to_owned();
        let req = self.attach_cookies(req);
        let resp = net.dispatch(&self.label, req);
        self.store_cookies(&authority, &resp);
        resp
    }

    fn attach_cookies(&self, mut req: Request) -> Request {
        if let Some(cookies) = self.jar.get(req.url.authority()) {
            if !cookies.is_empty() {
                let header = cookies
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join("; ");
                req = req.with_header("cookie", &header);
            }
        }
        req
    }

    fn store_cookies(&mut self, authority: &str, resp: &Response) {
        if let Some(sc) = resp.header("set-cookie") {
            if let Some((name, value)) = sc.split_once('=') {
                self.set_cookie(authority, name, value);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{SimNet, WebApp};
    use crate::url::Url;
    use std::sync::Arc;

    /// App that sets a session cookie on /login and echoes it on /whoami.
    struct SessionApp;

    impl WebApp for SessionApp {
        fn authority(&self) -> &str {
            "session.example"
        }
        fn handle(&self, _net: &dyn Transport, req: &Request) -> Response {
            match req.url.path() {
                "/login" => Response::ok().with_cookie("sid", "s-123"),
                "/whoami" => match req.cookie("sid") {
                    Some(sid) => Response::ok().with_body(sid),
                    None => Response::with_status(Status::Unauthorized),
                },
                _ => Response::not_found(req.url.path()),
            }
        }
    }

    /// App that redirects /start -> /end (same authority).
    struct RedirectApp;

    impl WebApp for RedirectApp {
        fn authority(&self) -> &str {
            "redir.example"
        }
        fn handle(&self, _net: &dyn Transport, req: &Request) -> Response {
            match req.url.path() {
                "/start" => Response::redirect(&Url::new("redir.example", "/end")),
                "/end" => Response::ok().with_body("arrived"),
                "/loop" => Response::redirect(&Url::new("redir.example", "/loop")),
                _ => Response::not_found(req.url.path()),
            }
        }
    }

    #[test]
    fn cookies_persist_across_requests() {
        let net = SimNet::new();
        net.register(Arc::new(SessionApp));
        let mut b = Browser::new("browser:bob");
        // Cookie storage happens via the explicit authority path in
        // request_no_follow; log in without following redirects.
        let resp = b.request_no_follow(
            &net,
            Request::new(Method::Get, "https://session.example/login"),
        );
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(b.cookie("session.example", "sid"), Some("s-123"));
        let resp = b.get(&net, "https://session.example/whoami");
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.body, "s-123");
    }

    #[test]
    fn cookies_are_per_authority() {
        let mut b = Browser::new("browser:bob");
        b.set_cookie("a.example", "sid", "1");
        assert_eq!(b.cookie("b.example", "sid"), None);
    }

    #[test]
    fn clear_cookies_logs_out() {
        let net = SimNet::new();
        net.register(Arc::new(SessionApp));
        let mut b = Browser::new("browser:bob");
        b.set_cookie("session.example", "sid", "s-999");
        b.clear_cookies("session.example");
        let resp = b.get(&net, "https://session.example/whoami");
        assert_eq!(resp.status, Status::Unauthorized);
    }

    #[test]
    fn follows_redirects() {
        let net = SimNet::new();
        net.register(Arc::new(RedirectApp));
        let mut b = Browser::new("browser:bob");
        let resp = b.get(&net, "https://redir.example/start");
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.body, "arrived");
        // Two round trips on the wire.
        assert_eq!(net.stats().round_trips, 2);
    }

    #[test]
    fn redirect_loop_detected() {
        let net = SimNet::new();
        net.register(Arc::new(RedirectApp));
        let mut b = Browser::new("browser:bob");
        let resp = b.get(&net, "https://redir.example/loop");
        assert_eq!(resp.status, Status::BadRequest);
        assert!(resp.body.contains("redirect loop"));
    }

    #[test]
    fn no_follow_surfaces_redirect() {
        let net = SimNet::new();
        net.register(Arc::new(RedirectApp));
        let mut b = Browser::new("browser:bob");
        let resp = b.request_no_follow(
            &net,
            Request::new(Method::Get, "https://redir.example/start"),
        );
        assert_eq!(resp.status, Status::Found);
        assert_eq!(resp.location().unwrap().path(), "/end");
    }
}
