//! Live-transport fuzz suite for the hand-rolled HTTP/1.1 server parser.
//!
//! The worker pool behind [`HttpTransport`] reads untrusted bytes off
//! real sockets. Its failure contract (DESIGN.md §15) is *fail closed*:
//! a malformed, truncated or oversized message drops the connection —
//! no partial parse ever reaches an application handler, no input ever
//! panics or wedges a worker, and a dispatching client observes the
//! drop as a classified `503` carrying the `x-error-kind` taxonomy
//! (`unreachable` for refused/reset connections, `timeout` for a peer
//! that goes silent). Every test here talks to a real listener: the
//! deterministic tables pin the named failure modes, the proptest
//! sweeps feed seeded noise and truncations, and each test finishes by
//! proving the worker still serves well-formed traffic.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use std::sync::OnceLock;

use proptest::prelude::*;
use ucam_webenv::{codec, HttpTransport, Method, Request, Response, Transport, WebApp};

const AUTHORITY: &str = "fuzz.example";

/// How long a raw probe waits for the server to answer or hang up.
/// Generous against scheduler noise, far below the suite timeout — a
/// worker that neither answers nor closes within this window has hung.
const PROBE_TIMEOUT: Duration = Duration::from_secs(5);

struct Echo;

impl WebApp for Echo {
    fn authority(&self) -> &str {
        AUTHORITY
    }

    fn handle(&self, _net: &dyn Transport, req: &Request) -> Response {
        Response::ok().with_body(format!("echo {}", req.url.path()))
    }
}

fn rig() -> (HttpTransport, SocketAddr) {
    let net = HttpTransport::new();
    net.set_client_timeout_ms(400);
    net.register(Arc::new(Echo));
    let addr = net
        .listener_addr(AUTHORITY)
        .expect("registered authority has a listener");
    (net, addr)
}

/// One long-lived rig shared by the seeded sweeps: the same worker
/// absorbs every generated case, so a single wedged sweep poisons all
/// later cases — exactly the failure the suite exists to catch.
fn shared_rig() -> &'static (HttpTransport, SocketAddr) {
    static RIG: OnceLock<(HttpTransport, SocketAddr)> = OnceLock::new();
    RIG.get_or_init(rig)
}

/// Writes `bytes` to a fresh raw connection, half-closes the write
/// side, and drains everything the server sends back until it hangs
/// up. The half-close bounds every exchange: even when the input left
/// the parser waiting for more, the worker sees EOF and must drop the
/// connection rather than stall — a read timeout here means a hung
/// worker and fails the test.
fn raw_exchange(addr: SocketAddr, bytes: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect to live listener");
    stream
        .set_read_timeout(Some(PROBE_TIMEOUT))
        .expect("set read timeout");
    // The server may legitimately reset mid-write on garbage input.
    let _ = stream.write_all(bytes);
    let _ = stream.shutdown(Shutdown::Write);
    let mut out = Vec::new();
    match stream.read_to_end(&mut out) {
        Ok(_) => out,
        Err(err) if err.kind() == std::io::ErrorKind::ConnectionReset => out,
        Err(err) => panic!(
            "worker neither answered nor hung up within {PROBE_TIMEOUT:?}: {err} \
             (got {} bytes back)",
            out.len()
        ),
    }
}

/// The worker must still serve well-formed traffic after abuse: a
/// dispatch through the transport client answers 200 with no transport
/// classification.
fn assert_still_serving(net: &HttpTransport) {
    let resp = net.dispatch(
        "probe",
        Request::new(Method::Get, &format!("https://{AUTHORITY}/alive")),
    );
    assert!(
        resp.transport_error().is_none(),
        "worker wedged after malformed input: {} {:?}",
        resp.status.code(),
        resp.header("x-error-kind"),
    );
    assert_eq!(resp.body, "echo /alive");
}

#[test]
fn malformed_heads_are_dropped_without_a_response() {
    let (net, addr) = rig();
    let too_many_headers = {
        let mut msg = String::from("GET / HTTP/1.1\r\nhost: fuzz.example\r\n");
        for i in 0..codec::MAX_HEADERS {
            msg.push_str(&format!("x-pad-{i}: 1\r\n"));
        }
        msg.push_str("\r\n");
        msg
    };
    let cases: Vec<(&str, Vec<u8>)> = vec![
        ("empty input", b"".to_vec()),
        ("bare newlines", b"\n\n\n\n".to_vec()),
        ("truncated head", b"GET / HTTP/1.1\r\nhost: fuzz.example".to_vec()),
        ("head cut mid-terminator", b"GET / HTTP/1.1\r\nhost: fuzz.example\r\n\r".to_vec()),
        ("unknown method", b"BREW / HTTP/1.1\r\nhost: fuzz.example\r\n\r\n".to_vec()),
        ("wrong protocol", b"GET / GOPHER/7.0\r\nhost: fuzz.example\r\n\r\n".to_vec()),
        ("missing host header", b"GET / HTTP/1.1\r\nx-other: 1\r\n\r\n".to_vec()),
        (
            "absolute-form target",
            b"GET http://evil.example/ HTTP/1.1\r\nhost: fuzz.example\r\n\r\n".to_vec(),
        ),
        (
            "content-length beyond the message cap",
            format!(
                "POST / HTTP/1.1\r\nhost: fuzz.example\r\ncontent-length: {}\r\n\r\n",
                codec::MAX_MESSAGE_BYTES + 1
            )
            .into_bytes(),
        ),
        (
            "content-length overflowing u64",
            b"POST / HTTP/1.1\r\nhost: fuzz.example\r\ncontent-length: 99999999999999999999999999\r\n\r\nx"
                .to_vec(),
        ),
        (
            "negative content-length",
            b"POST / HTTP/1.1\r\nhost: fuzz.example\r\ncontent-length: -1\r\n\r\n".to_vec(),
        ),
        (
            "body shorter than content-length",
            b"POST / HTTP/1.1\r\nhost: fuzz.example\r\ncontent-length: 64\r\n\r\nshort".to_vec(),
        ),
        ("too many header lines", too_many_headers.into_bytes()),
        (
            "header line without a colon",
            b"GET / HTTP/1.1\r\nhost: fuzz.example\r\nnocolonhere\r\n\r\n".to_vec(),
        ),
    ];
    for (label, bytes) in &cases {
        let back = raw_exchange(addr, bytes);
        assert!(
            back.is_empty(),
            "{label}: server answered malformed input with {:?}",
            String::from_utf8_lossy(&back)
        );
    }
    assert_still_serving(&net);
}

/// Reserved `x-ucam-*` envelope headers are the codec's own channel; a
/// peer spoofing or mangling them must never panic a worker or leak the
/// raw header into the application request. Lenient cases may be served
/// — but only ever with a well-formed HTTP/1.1 answer — and strict
/// violations drop the connection.
#[test]
fn bogus_envelope_headers_never_wedge_a_worker() {
    let (net, addr) = rig();
    let cases: &[(&str, &[u8])] = &[
        (
            "duplicate x-ucam-from",
            b"GET / HTTP/1.1\r\nhost: fuzz.example\r\nx-ucam-from: a\r\nx-ucam-from: b\r\n\r\n",
        ),
        (
            "x-ucam-form garbage",
            b"GET / HTTP/1.1\r\nhost: fuzz.example\r\nx-ucam-from: p\r\nx-ucam-form: %zz%%&&==&=\r\n\r\n",
        ),
        (
            "x-ucam-form with binary escapes",
            b"GET / HTTP/1.1\r\nhost: fuzz.example\r\nx-ucam-form: k=%00%ff%fe\r\n\r\n",
        ),
        (
            "unknown x-ucam header",
            b"GET / HTTP/1.1\r\nhost: fuzz.example\r\nx-ucam-reserved-future: 1\r\n\r\n",
        ),
        (
            "empty x-ucam-from",
            b"GET / HTTP/1.1\r\nhost: fuzz.example\r\nx-ucam-from:\r\n\r\n",
        ),
    ];
    for (label, bytes) in cases {
        let back = raw_exchange(addr, bytes);
        assert!(
            back.is_empty() || back.starts_with(b"HTTP/1.1 "),
            "{label}: server sent a non-HTTP answer: {:?}",
            String::from_utf8_lossy(&back)
        );
    }
    assert_still_serving(&net);
}

/// A head split across writes — including cuts inside the `\r\n\r\n`
/// terminator — must reassemble: the incremental scan resumes where it
/// left off instead of re-scanning or giving up.
#[test]
fn split_crlf_heads_reassemble_across_writes() {
    let (net, addr) = rig();
    let wire = b"GET /split HTTP/1.1\r\nhost: fuzz.example\r\nx-ucam-from: probe\r\n\r\n";
    // Cut everywhere interesting: inside the request line, inside a
    // header line's CRLF, and at every byte of the final terminator.
    let cuts = [
        1,
        4,
        20,
        wire.len() - 4,
        wire.len() - 3,
        wire.len() - 2,
        wire.len() - 1,
    ];
    for cut in cuts {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(PROBE_TIMEOUT)).unwrap();
        stream.write_all(&wire[..cut]).unwrap();
        // Let the server sweep the partial head before the remainder.
        std::thread::sleep(Duration::from_millis(5));
        stream.write_all(&wire[cut..]).unwrap();
        let _ = stream.shutdown(Shutdown::Write);
        let mut back = Vec::new();
        stream.read_to_end(&mut back).expect("read response");
        let text = String::from_utf8_lossy(&back);
        assert!(
            text.starts_with("HTTP/1.1 200") && text.contains("echo /split"),
            "cut at {cut}: expected a 200 echo, got {text:?}"
        );
    }
    assert_still_serving(&net);
}

proptest! {
    /// Seeded random noise: whatever the bytes, the worker either
    /// answers with well-formed HTTP or hangs up — it never panics,
    /// never sends garbage, and never stops serving.
    #[test]
    fn random_noise_never_panics_or_hangs_a_worker(
        noise in proptest::collection::vec(any::<u8>(), 0..2048)
    ) {
        let (net, addr) = shared_rig();
        let back = raw_exchange(*addr, &noise);
        prop_assert!(
            back.is_empty() || back.starts_with(b"HTTP/1.1 "),
            "noise drew a non-HTTP answer: {:?}",
            String::from_utf8_lossy(&back)
        );
        assert_still_serving(net);
    }

    /// Every strict prefix of a canonical encoded request is a
    /// truncation; none may draw a response, and the worker must keep
    /// serving afterwards.
    #[test]
    fn truncated_canonical_requests_are_dropped(cut_seed in any::<u64>()) {
        let (net, addr) = shared_rig();
        let wire = canonical_wire();
        let cut = 1 + (cut_seed as usize) % (wire.len() - 1);
        let back = raw_exchange(*addr, &wire[..cut]);
        prop_assert!(
            back.is_empty(),
            "truncation at {cut}/{} drew a response: {:?}",
            wire.len(),
            String::from_utf8_lossy(&back)
        );
        assert_still_serving(net);
    }
}

/// The canonical encoded request the truncation sweep cuts up.
fn canonical_wire() -> &'static [u8] {
    static WIRE: OnceLock<Vec<u8>> = OnceLock::new();
    WIRE.get_or_init(|| {
        let req = Request::new(Method::Post, &format!("https://{AUTHORITY}/upload"))
            .with_param("kind", "photo")
            .with_body("0123456789abcdef");
        let mut wire = Vec::new();
        codec::encode_request_into(&mut wire, "probe", &req);
        wire
    })
}

/// The untruncated canonical message is served — the positive control
/// for the truncation sweep.
#[test]
fn full_canonical_request_is_served() {
    let (net, addr) = shared_rig();
    let back = raw_exchange(*addr, canonical_wire());
    assert!(
        String::from_utf8_lossy(&back).starts_with("HTTP/1.1 200"),
        "full canonical request was not served"
    );
    assert_still_serving(net);
}

/// The client-side half of the fail-closed contract: when an authority
/// stops answering, the dispatching caller gets the classified `503`
/// taxonomy — `unreachable` for a dead listener, `timeout` for a
/// silent one — never a hang and never an unclassified error.
#[test]
fn client_surfaces_the_503_taxonomy_for_dead_and_silent_peers() {
    let (net, _addr) = rig();
    let probe = || Request::new(Method::Get, &format!("https://{AUTHORITY}/probe"));

    net.kill_listener(AUTHORITY);
    let resp = net.dispatch("probe", probe());
    assert_eq!(resp.status.code(), 503);
    assert_eq!(resp.header("x-error-kind"), Some("unreachable"));

    net.register(Arc::new(Echo));
    net.set_stall(AUTHORITY, true);
    let resp = net.dispatch("probe", probe());
    assert_eq!(resp.status.code(), 503);
    assert_eq!(resp.header("x-error-kind"), Some("timeout"));

    net.set_stall(AUTHORITY, false);
    assert_still_serving(&net);
}
