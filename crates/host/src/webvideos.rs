//! **WebVideos** — the §II scenario's "online video service to host video
//! clips": Bob "organizes his … videos into collections". Built on the
//! same Host framework as the other applications, with video-specific
//! editing operations (clip, thumbnail, concat).

use std::sync::Arc;

use ucam_crypto::{base64url_decode, base64url_encode};
use ucam_policy::Action;
use ucam_webenv::{Method, Request, Response, SimClock, Status, Transport, WebApp};

use crate::shell::AppShell;
use crate::video::Video;

/// The online video service application.
///
/// Videos live under ids `collections/<collection>/<video>`; bodies travel
/// base64url-encoded in the [`Video::to_bytes`] format.
///
/// | Route | Meaning |
/// |---|---|
/// | `POST /collections?name=c` | create a collection (owner session) |
/// | `POST /videos?collection=c&id=v` (body) | upload |
/// | `GET /videos/<c>/<v>` | watch (read-enforced) |
/// | `GET /videos/<c>/<v>/thumbnail?w&h` | poster frame (read-enforced) |
/// | `POST /videos/<c>/<v>/clip?start&end` | trim (write-enforced) |
/// | `POST /videos/<c>/<v>/append?from=<c2>/<v2>` | concat (write-enforced, read-enforced on source) |
/// | `GET /collection/<c>` | list (list-enforced on `collection-meta/<c>`) |
pub struct WebVideos {
    shell: AppShell,
}

impl std::fmt::Debug for WebVideos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WebVideos")
            .field("shell", &self.shell)
            .finish()
    }
}

impl WebVideos {
    /// Creates the video service at `authority`.
    #[must_use]
    pub fn new(authority: &str, clock: SimClock) -> Arc<Self> {
        Arc::new(WebVideos {
            shell: AppShell::new(authority, clock),
        })
    }

    /// Access to the shared shell.
    #[must_use]
    pub fn shell(&self) -> &AppShell {
        &self.shell
    }

    fn create_collection(&self, req: &Request) -> Response {
        let owner = match self.shell.require_subject(req) {
            Ok(user) => user,
            Err(resp) => return resp,
        };
        let Some(name) = req.param("name") else {
            return Response::bad_request("name required");
        };
        let id = format!("collection-meta/{name}");
        match self
            .shell
            .core
            .put_resource(&id, &owner, "collection", Vec::new())
        {
            Ok(()) => Response::with_status(Status::Created).with_body(id),
            Err(e) => Response::with_status(Status::Conflict).with_body(e.to_string()),
        }
    }

    fn upload(&self, req: &Request) -> Response {
        let owner = match self.shell.require_subject(req) {
            Ok(user) => user,
            Err(resp) => return resp,
        };
        let (collection, video_id) = match (req.param("collection"), req.param("id")) {
            (Some(c), Some(v)) => (c, v),
            _ => return Response::bad_request("collection and id required"),
        };
        let Ok(bytes) = base64url_decode(&req.body) else {
            return Response::bad_request("body must be base64url video data");
        };
        if let Err(e) = Video::from_bytes(&bytes) {
            return Response::bad_request(&format!("body is not a valid video: {e}"));
        }
        let id = format!("collections/{collection}/{video_id}");
        match self.shell.core.put_resource(&id, &owner, "video", bytes) {
            Ok(()) => Response::with_status(Status::Created).with_body(id),
            Err(e) => Response::with_status(Status::Conflict).with_body(e.to_string()),
        }
    }

    fn video_route(&self, net: &dyn Transport, req: &Request) -> Response {
        let rest = req.url.path().trim_start_matches("/videos/");
        let segments: Vec<&str> = rest.split('/').filter(|s| !s.is_empty()).collect();
        let (collection, video_id, op) = match segments.as_slice() {
            [c, v] => (*c, *v, None),
            [c, v, op] => (*c, *v, Some(*op)),
            _ => return Response::bad_request("expected /videos/<collection>/<video>[/<op>]"),
        };
        let id = format!("collections/{collection}/{video_id}");
        let action = match op {
            None | Some("thumbnail") => Action::Read,
            Some(_) => Action::Write,
        };
        if let Err(resp) = self.shell.enforce_web(net, req, &id, &action) {
            return resp;
        }
        let Some(resource) = self.shell.core.resource(&id) else {
            return Response::not_found(&id);
        };
        let video = match Video::from_bytes(&resource.data) {
            Ok(v) => v,
            Err(e) => {
                return Response::bad_request(&format!("stored resource is not a video: {e}"))
            }
        };
        match op {
            None => Response::ok().with_body(base64url_encode(&resource.data)),
            Some("thumbnail") => {
                let dims = ["w", "h"].map(|k| req.param(k).and_then(|v| v.parse::<u32>().ok()));
                let [Some(w), Some(h)] = dims else {
                    return Response::bad_request("thumbnail needs numeric w, h");
                };
                match video.thumbnail(w, h) {
                    Ok(image) => Response::ok().with_body(base64url_encode(&image.to_bytes())),
                    Err(e) => Response::bad_request(&e.to_string()),
                }
            }
            Some("clip") => {
                let range =
                    ["start", "end"].map(|k| req.param(k).and_then(|v| v.parse::<usize>().ok()));
                let [Some(start), Some(end)] = range else {
                    return Response::bad_request("clip needs numeric start, end");
                };
                match video.clip(start, end) {
                    Ok(clipped) => match self.shell.core.update_resource(&id, clipped.to_bytes()) {
                        Ok(()) => Response::ok()
                            .with_body(format!("clipped to {} frames", clipped.frame_count())),
                        Err(e) => Response::not_found(&e.to_string()),
                    },
                    Err(e) => Response::bad_request(&e.to_string()),
                }
            }
            Some("append") => {
                let Some(from) = req.param("from") else {
                    return Response::bad_request("append needs from=<collection>/<video>");
                };
                let source_id = format!("collections/{from}");
                // The source is enforced too: appending republishes it.
                if let Err(resp) = self.shell.enforce_web(net, req, &source_id, &Action::Read) {
                    return resp;
                }
                let Some(source) = self.shell.core.resource(&source_id) else {
                    return Response::not_found(&source_id);
                };
                let other = match Video::from_bytes(&source.data) {
                    Ok(v) => v,
                    Err(e) => return Response::bad_request(&e.to_string()),
                };
                match video.concat(&other) {
                    Ok(joined) => match self.shell.core.update_resource(&id, joined.to_bytes()) {
                        Ok(()) => {
                            Response::ok().with_body(format!("now {} frames", joined.frame_count()))
                        }
                        Err(e) => Response::not_found(&e.to_string()),
                    },
                    Err(e) => Response::bad_request(&e.to_string()),
                }
            }
            Some(other) => Response::bad_request(&format!("unknown video operation: {other}")),
        }
    }

    fn list_collection(&self, net: &dyn Transport, req: &Request) -> Response {
        let collection = req.url.path().trim_start_matches("/collection/");
        let meta_id = format!("collection-meta/{collection}");
        if let Err(resp) = self.shell.enforce_web(net, req, &meta_id, &Action::List) {
            return resp;
        }
        let videos = self
            .shell
            .core
            .ids_with_prefix(&format!("collections/{collection}/"));
        Response::ok().with_body(videos.join("\n"))
    }
}

impl WebApp for WebVideos {
    fn authority(&self) -> &str {
        self.shell.core.authority()
    }

    fn handle(&self, net: &dyn Transport, req: &Request) -> Response {
        if let Some(resp) = self.shell.route_common(net, req) {
            return resp;
        }
        match (req.method, req.url.path()) {
            (Method::Post, "/collections") => self.create_collection(req),
            (Method::Post, "/videos") => self.upload(req),
            (_, path) if path.starts_with("/videos/") => self.video_route(net, req),
            (Method::Get, path) if path.starts_with("/collection/") => {
                self.list_collection(net, req)
            }
            (_, other) => Response::not_found(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucam_webenv::identity::IdentityProvider;
    use ucam_webenv::SimNet;

    fn setup() -> (SimNet, Arc<WebVideos>, String) {
        let net = SimNet::new();
        let videos = WebVideos::new("webvideos.example", net.clock().clone());
        let idp = IdentityProvider::new("idp.example", net.clock().clone());
        idp.register_user("bob", "pw");
        videos.shell().set_identity_verifier(idp.verifier());
        net.register(videos.clone());
        let token = idp.login("bob", "pw").unwrap().token;
        (net, videos, token)
    }

    fn upload(
        net: &dyn Transport,
        token: &str,
        collection: &str,
        id: &str,
        video: &Video,
    ) -> Response {
        net.dispatch(
            "browser:bob",
            Request::new(Method::Post, "https://webvideos.example/videos")
                .with_param("collection", collection)
                .with_param("id", id)
                .with_param("subject_token", token)
                .with_body(base64url_encode(&video.to_bytes())),
        )
    }

    #[test]
    fn upload_watch_roundtrip() {
        let (net, _, token) = setup();
        let video = Video::test_pattern(4, 4, 6);
        assert_eq!(
            upload(&net, &token, "trips", "rome", &video).status,
            Status::Created
        );
        let watch = net.dispatch(
            "browser:bob",
            Request::new(Method::Get, "https://webvideos.example/videos/trips/rome")
                .with_param("subject_token", &token),
        );
        assert_eq!(watch.status, Status::Ok);
        let bytes = base64url_decode(&watch.body).unwrap();
        assert_eq!(Video::from_bytes(&bytes).unwrap(), video);
    }

    #[test]
    fn garbage_upload_rejected() {
        let (net, _, token) = setup();
        let resp = net.dispatch(
            "browser:bob",
            Request::new(Method::Post, "https://webvideos.example/videos")
                .with_param("collection", "c")
                .with_param("id", "v")
                .with_param("subject_token", &token)
                .with_body("bm90LXZpZGVv"),
        );
        assert_eq!(resp.status, Status::BadRequest);
    }

    #[test]
    fn clip_and_thumbnail() {
        let (net, videos, token) = setup();
        upload(
            &net,
            &token,
            "trips",
            "rome",
            &Video::test_pattern(4, 4, 10),
        );
        let clip = net.dispatch(
            "browser:bob",
            Request::new(
                Method::Post,
                "https://webvideos.example/videos/trips/rome/clip",
            )
            .with_param("subject_token", &token)
            .with_param("start", "2")
            .with_param("end", "5"),
        );
        assert_eq!(clip.status, Status::Ok);
        assert!(clip.body.contains("3 frames"), "{}", clip.body);
        let stored = videos
            .shell()
            .core
            .resource("collections/trips/rome")
            .unwrap();
        assert_eq!(Video::from_bytes(&stored.data).unwrap().frame_count(), 3);

        let thumb = net.dispatch(
            "browser:bob",
            Request::new(
                Method::Get,
                "https://webvideos.example/videos/trips/rome/thumbnail",
            )
            .with_param("subject_token", &token)
            .with_param("w", "2")
            .with_param("h", "2"),
        );
        assert_eq!(thumb.status, Status::Ok);
        let image_bytes = base64url_decode(&thumb.body).unwrap();
        let image = crate::image::Image::from_bytes(&image_bytes).unwrap();
        assert_eq!((image.width(), image.height()), (2, 2));
    }

    #[test]
    fn append_concatenates() {
        let (net, videos, token) = setup();
        upload(&net, &token, "trips", "a", &Video::test_pattern(4, 4, 3));
        upload(&net, &token, "trips", "b", &Video::test_pattern(4, 4, 2));
        let resp = net.dispatch(
            "browser:bob",
            Request::new(
                Method::Post,
                "https://webvideos.example/videos/trips/a/append",
            )
            .with_param("subject_token", &token)
            .with_param("from", "trips/b"),
        );
        assert_eq!(resp.status, Status::Ok, "{}", resp.body);
        let stored = videos.shell().core.resource("collections/trips/a").unwrap();
        assert_eq!(Video::from_bytes(&stored.data).unwrap().frame_count(), 5);
    }

    #[test]
    fn collections_create_and_list() {
        let (net, _, token) = setup();
        let created = net.dispatch(
            "browser:bob",
            Request::new(Method::Post, "https://webvideos.example/collections")
                .with_param("name", "trips")
                .with_param("subject_token", &token),
        );
        assert_eq!(created.status, Status::Created);
        upload(&net, &token, "trips", "rome", &Video::test_pattern(2, 2, 1));
        let list = net.dispatch(
            "browser:bob",
            Request::new(Method::Get, "https://webvideos.example/collection/trips")
                .with_param("subject_token", &token),
        );
        assert_eq!(list.body, "collections/trips/rome");
    }

    #[test]
    fn strangers_blocked() {
        let (net, _, token) = setup();
        upload(&net, &token, "trips", "rome", &Video::test_pattern(2, 2, 1));
        let watch = net.dispatch(
            "browser:anon",
            Request::new(Method::Get, "https://webvideos.example/videos/trips/rome"),
        );
        assert_eq!(watch.status, Status::Forbidden);
        let clip = net.dispatch(
            "browser:anon",
            Request::new(
                Method::Post,
                "https://webvideos.example/videos/trips/rome/clip",
            )
            .with_param("start", "0")
            .with_param("end", "1"),
        );
        assert_eq!(clip.status, Status::Forbidden);
    }

    #[test]
    fn bad_edit_parameters() {
        let (net, _, token) = setup();
        upload(&net, &token, "trips", "rome", &Video::test_pattern(2, 2, 4));
        let bad_clip = net.dispatch(
            "browser:bob",
            Request::new(
                Method::Post,
                "https://webvideos.example/videos/trips/rome/clip",
            )
            .with_param("subject_token", &token)
            .with_param("start", "3")
            .with_param("end", "1"),
        );
        assert_eq!(bad_clip.status, Status::BadRequest);
        let unknown = net.dispatch(
            "browser:bob",
            Request::new(
                Method::Post,
                "https://webvideos.example/videos/trips/rome/explode",
            )
            .with_param("subject_token", &token),
        );
        assert_eq!(unknown.status, Status::BadRequest);
    }
}
