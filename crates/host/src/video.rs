//! A tiny video substrate for the WebVideos host.
//!
//! The §II scenario has Bob uploading "video clips" to an online video
//! service. A [`Video`] is a frame sequence over the [`Image`] raster
//! substrate with the editing operations a video host exposes: clipping a
//! frame range, extracting thumbnails, and concatenation.

use std::fmt;

use crate::image::{Image, ImageError};

/// An error constructing or transforming a video.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VideoError {
    /// No frames supplied.
    Empty,
    /// Frames disagree on dimensions.
    MixedDimensions {
        /// Dimensions of frame 0.
        expected: (u32, u32),
        /// Index of the offending frame.
        frame: usize,
    },
    /// A clip range exceeds the frame count or is inverted.
    BadRange {
        /// Requested start (inclusive).
        start: usize,
        /// Requested end (exclusive).
        end: usize,
        /// Actual frame count.
        frames: usize,
    },
    /// Underlying image problem (decode failures).
    Image(ImageError),
    /// The byte stream is not a valid serialized video.
    Malformed,
}

impl fmt::Display for VideoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VideoError::Empty => f.write_str("video needs at least one frame"),
            VideoError::MixedDimensions { expected, frame } => write!(
                f,
                "frame {frame} does not match video dimensions {}x{}",
                expected.0, expected.1
            ),
            VideoError::BadRange { start, end, frames } => {
                write!(f, "clip range {start}..{end} invalid for {frames} frames")
            }
            VideoError::Image(e) => write!(f, "frame error: {e}"),
            VideoError::Malformed => f.write_str("malformed video byte stream"),
        }
    }
}

impl std::error::Error for VideoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VideoError::Image(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ImageError> for VideoError {
    fn from(e: ImageError) -> Self {
        VideoError::Image(e)
    }
}

/// A constant-dimension frame sequence.
///
/// # Example
///
/// ```
/// use ucam_host::video::Video;
///
/// let video = Video::test_pattern(4, 4, 10);
/// assert_eq!(video.frame_count(), 10);
/// let clip = video.clip(2, 5)?;
/// assert_eq!(clip.frame_count(), 3);
/// # Ok::<(), ucam_host::video::VideoError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Video {
    frames: Vec<Image>,
}

impl Video {
    /// Builds a video from frames.
    ///
    /// # Errors
    ///
    /// Returns [`VideoError::Empty`] or [`VideoError::MixedDimensions`].
    pub fn from_frames(frames: Vec<Image>) -> Result<Self, VideoError> {
        let first = frames.first().ok_or(VideoError::Empty)?;
        let expected = (first.width(), first.height());
        for (index, frame) in frames.iter().enumerate() {
            if (frame.width(), frame.height()) != expected {
                return Err(VideoError::MixedDimensions {
                    expected,
                    frame: index,
                });
            }
        }
        Ok(Video { frames })
    }

    /// A deterministic test clip: `n` gradient frames with a per-frame
    /// brightness shift.
    ///
    /// # Panics
    ///
    /// Panics when any dimension or `n` is zero.
    #[must_use]
    pub fn test_pattern(width: u32, height: u32, n: usize) -> Self {
        assert!(n > 0, "need at least one frame");
        let frames = (0..n)
            .map(|i| {
                let base = Image::gradient(width, height);
                let pixels = base
                    .pixels()
                    .iter()
                    .map(|p| p.wrapping_add((i * 16) as u8))
                    .collect();
                Image::from_pixels(width, height, pixels).expect("gradient dims are valid")
            })
            .collect();
        Video { frames }
    }

    /// Number of frames.
    #[must_use]
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Frame dimensions (width, height).
    #[must_use]
    pub fn dimensions(&self) -> (u32, u32) {
        (self.frames[0].width(), self.frames[0].height())
    }

    /// Returns frame `index`.
    #[must_use]
    pub fn frame(&self, index: usize) -> Option<&Image> {
        self.frames.get(index)
    }

    /// Extracts frames `start..end` as a new clip.
    ///
    /// # Errors
    ///
    /// Returns [`VideoError::BadRange`] for inverted or out-of-bounds
    /// ranges (an empty result is also a bad range).
    pub fn clip(&self, start: usize, end: usize) -> Result<Video, VideoError> {
        if start >= end || end > self.frames.len() {
            return Err(VideoError::BadRange {
                start,
                end,
                frames: self.frames.len(),
            });
        }
        Ok(Video {
            frames: self.frames[start..end].to_vec(),
        })
    }

    /// The poster thumbnail: frame 0 resized to the given size.
    ///
    /// # Errors
    ///
    /// Returns [`VideoError::Image`] for a zero target size.
    pub fn thumbnail(&self, width: u32, height: u32) -> Result<Image, VideoError> {
        Ok(self.frames[0].resize(width, height)?)
    }

    /// Appends another clip (dimensions must match).
    ///
    /// # Errors
    ///
    /// Returns [`VideoError::MixedDimensions`] on mismatch.
    pub fn concat(&self, other: &Video) -> Result<Video, VideoError> {
        if self.dimensions() != other.dimensions() {
            return Err(VideoError::MixedDimensions {
                expected: self.dimensions(),
                frame: self.frames.len(),
            });
        }
        let mut frames = self.frames.clone();
        frames.extend(other.frames.iter().cloned());
        Ok(Video { frames })
    }

    /// Serializes: `u32 frame-count` then each frame via
    /// [`Image::to_bytes`] (frames are fixed-size, so no per-frame length).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.frames.len() as u32).to_be_bytes());
        for frame in &self.frames {
            out.extend_from_slice(&frame.to_bytes());
        }
        out
    }

    /// Deserializes [`Video::to_bytes`] output.
    ///
    /// # Errors
    ///
    /// Returns [`VideoError::Malformed`] for truncated or padded input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Video, VideoError> {
        if bytes.len() < 4 {
            return Err(VideoError::Malformed);
        }
        let count = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        if count == 0 {
            return Err(VideoError::Empty);
        }
        let rest = &bytes[4..];
        if rest.len() < 8 {
            return Err(VideoError::Malformed);
        }
        // Frame size comes from the first frame's header.
        let width = u32::from_be_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        let height = u32::from_be_bytes([rest[4], rest[5], rest[6], rest[7]]) as usize;
        let frame_bytes = 8 + width * height;
        if frame_bytes == 8 || rest.len() != frame_bytes * count {
            return Err(VideoError::Malformed);
        }
        let mut frames = Vec::with_capacity(count);
        for chunk in rest.chunks_exact(frame_bytes) {
            frames.push(Image::from_bytes(chunk)?);
        }
        Video::from_frames(frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(matches!(Video::from_frames(vec![]), Err(VideoError::Empty)));
        let mixed = vec![Image::gradient(2, 2), Image::gradient(3, 2)];
        assert!(matches!(
            Video::from_frames(mixed),
            Err(VideoError::MixedDimensions { frame: 1, .. })
        ));
        let ok = Video::from_frames(vec![Image::gradient(2, 2); 3]).unwrap();
        assert_eq!(ok.frame_count(), 3);
        assert_eq!(ok.dimensions(), (2, 2));
    }

    #[test]
    fn clip_ranges() {
        let video = Video::test_pattern(2, 2, 10);
        let clip = video.clip(3, 7).unwrap();
        assert_eq!(clip.frame_count(), 4);
        assert_eq!(clip.frame(0), video.frame(3));
        assert!(matches!(video.clip(5, 5), Err(VideoError::BadRange { .. })));
        assert!(matches!(video.clip(7, 3), Err(VideoError::BadRange { .. })));
        assert!(matches!(
            video.clip(0, 11),
            Err(VideoError::BadRange { .. })
        ));
    }

    #[test]
    fn thumbnail_resizes_first_frame() {
        let video = Video::test_pattern(8, 8, 3);
        let thumb = video.thumbnail(2, 2).unwrap();
        assert_eq!((thumb.width(), thumb.height()), (2, 2));
        assert!(video.thumbnail(0, 2).is_err());
    }

    #[test]
    fn concat_checks_dimensions() {
        let a = Video::test_pattern(2, 2, 2);
        let b = Video::test_pattern(2, 2, 3);
        assert_eq!(a.concat(&b).unwrap().frame_count(), 5);
        let c = Video::test_pattern(3, 2, 1);
        assert!(matches!(
            a.concat(&c),
            Err(VideoError::MixedDimensions { .. })
        ));
    }

    #[test]
    fn bytes_roundtrip() {
        let video = Video::test_pattern(5, 3, 7);
        let back = Video::from_bytes(&video.to_bytes()).unwrap();
        assert_eq!(back, video);
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(Video::from_bytes(&[]).is_err());
        assert!(Video::from_bytes(&[0, 0, 0, 0]).is_err()); // zero frames
        assert!(Video::from_bytes(&[0, 0, 0, 2, 9, 9]).is_err()); // truncated
                                                                  // Valid header, truncated frame data.
        let video = Video::test_pattern(2, 2, 2);
        let mut bytes = video.to_bytes();
        bytes.pop();
        assert!(Video::from_bytes(&bytes).is_err());
    }

    #[test]
    fn frames_differ_across_time() {
        let video = Video::test_pattern(2, 2, 3);
        assert_ne!(video.frame(0), video.frame(1));
    }

    #[test]
    fn error_display_and_source() {
        let e = VideoError::BadRange {
            start: 1,
            end: 0,
            frames: 5,
        };
        assert!(e.to_string().contains("1..0"));
        let img_err = VideoError::from(ImageError::EmptyDimension);
        assert!(std::error::Error::source(&img_err).is_some());
    }
}
