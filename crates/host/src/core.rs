//! The Host framework: resource storage plus the Policy Enforcement Point.
//!
//! "A Host can be any Web application that allows Users to create or upload
//! and then share data … access control functionality of such an
//! application is delegated to AM. Therefore, a Host is only concerned with
//! access control enforcement of decisions that are issued by AM. As such,
//! a Host acts as a policy enforcement point (PEP)." (§V.A.3)
//!
//! [`HostCore`] implements everything a concrete Host application needs:
//!
//! * a resource store with owners,
//! * delegation management — per **user** or per **resource**, possibly to
//!   different AMs ("gives Users the possibility to delegate access control
//!   for different resources to different AMs as well", §V.A.3),
//! * the PEP itself ([`HostCore::enforce`]): redirecting token-less
//!   requesters to the AM (Fig. 5), validating tokens via decision queries
//!   (Fig. 6), and the user-controllable **decision cache** (§V.B.5–6),
//! * a built-in legacy ACL mechanism (the §III status quo, used by the
//!   baselines and before any delegation is configured),
//! * a host-local access log (compared against the AM's central audit log
//!   in experiment E13).

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use ucam_crypto::sha256;
use ucam_policy::{AccessRequest, AclMatrix, Action, EvalContext, Outcome, ResourceRef};
use ucam_webenv::{
    protocol, BatchItem, DecisionBody, Method, Request, Response, RetryPolicy, SimClock, Status,
    Transport, TransportError, Url,
};

/// A stored Web resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resource {
    /// Host-local id (path-like, e.g. `albums/rome/photo-1`).
    pub id: String,
    /// Owning user.
    pub owner: String,
    /// Content kind (`photo`, `file`, `document`, …).
    pub kind: String,
    /// Content bytes.
    pub data: Vec<u8>,
    /// Creation time (simulated ms).
    pub created_at_ms: u64,
}

/// Where a user's (or resource's) access control is delegated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DelegationConfig {
    /// The chosen Authorization Manager's authority.
    pub am: String,
    /// The host access token sealing the relationship.
    pub host_token: String,
    /// Delegation id at the AM.
    pub delegation_id: String,
}

/// Default bound on cached decisions held by one host.
pub const DEFAULT_DECISION_CACHE_CAPACITY: usize = 1024;

/// Circuit breaker configuration for the Host→AM decision channel.
///
/// The breaker is **opt-in** ([`ResilienceConfig::with_breaker`] applied
/// through [`HostCore::set_resilience`]): without one the
/// PEP dispatches every decision query and fails closed on transport
/// errors, exactly as before. With one, `failure_threshold` consecutive
/// transport failures against one AM authority open the circuit for
/// `cooldown_ms`; while open, decision queries fail fast (no dispatch)
/// as if the AM were unreachable. After the cooldown the next query is a
/// half-open probe: its success closes the circuit, its failure re-opens
/// it for another cooldown.
///
/// Only transport failures trip the breaker — application answers
/// (permit, deny, 401) always reset it, so a flaky-but-deciding AM never
/// gets locked out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive transport failures that open the circuit.
    pub failure_threshold: u32,
    /// Milliseconds the circuit stays open before a half-open probe.
    pub cooldown_ms: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_ms: 5_000,
        }
    }
}

/// Per-AM-authority breaker state (guarded by one mutex off the warm
/// path: it is only touched when a decision query actually happens).
#[derive(Debug, Default)]
struct BreakerState {
    /// Consecutive transport failures observed.
    failures: u32,
    /// Clock time until which the circuit is open (0 = closed).
    open_until_ms: u64,
}

/// Opt-in resilience configuration for the Host→AM edge, applied
/// atomically with [`HostCore::set_resilience`]. All fields default to
/// "off", preserving the seed behaviour bit for bit.
///
/// This builder replaced the per-knob setters that accreted over three
/// revisions (`set_breaker`, `set_am_retry`, `set_fallback_am`,
/// `set_stale_grace_ms`); the deprecated wrappers have since been
/// removed — the builder is the only way to configure resilience.
///
/// ```
/// use ucam_host::core::{BreakerConfig, HostCore, ResilienceConfig};
/// use ucam_webenv::{RetryPolicy, SimClock};
///
/// let host = HostCore::new("h.example", SimClock::new());
/// host.set_resilience(
///     ResilienceConfig::new()
///         .with_breaker(BreakerConfig::default())
///         .with_am_retry(RetryPolicy::default())
///         .with_stale_grace_ms(15_000),
/// );
/// ```
#[derive(Debug, Clone, Default)]
pub struct ResilienceConfig {
    /// Circuit breaker on decision queries.
    breaker: Option<BreakerConfig>,
    /// Retry discipline for decision-query dispatches.
    am_retry: Option<RetryPolicy>,
    /// Fallback AM keyed by (primary AM authority, owner): the
    /// owner-specific entry (`Some(owner)`) wins over the any-owner
    /// wildcard (`None`). Queried when the primary fails at the
    /// transport level (or its circuit is open). The per-owner key is
    /// what lets two owners sharing a primary AM mirror to *different*
    /// secondaries.
    fallback_ams: HashMap<(String, Option<String>), DelegationConfig>,
    /// Degraded-mode grace window (ms past TTL expiry); 0 disables.
    stale_grace_ms: u64,
}

impl ResilienceConfig {
    /// An all-off configuration (the seed behaviour).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs the circuit breaker on the Host→AM decision channel.
    #[must_use]
    pub fn with_breaker(mut self, config: BreakerConfig) -> Self {
        self.breaker = Some(config);
        self
    }

    /// Installs a retry policy for decision-query dispatches. Only
    /// transport failures are retried; application answers return after
    /// the first attempt.
    #[must_use]
    pub fn with_am_retry(mut self, policy: RetryPolicy) -> Self {
        self.am_retry = Some(policy);
        self
    }

    /// Registers `fallback` for *any* owner whose primary AM is
    /// `primary_am` (the historical wildcard semantics). An owner-specific
    /// entry from [`ResilienceConfig::with_fallback_am_for_owner`] takes
    /// precedence.
    #[must_use]
    pub fn with_fallback_am(mut self, primary_am: &str, fallback: DelegationConfig) -> Self {
        self.fallback_ams
            .insert((primary_am.to_owned(), None), fallback);
        self
    }

    /// Registers `fallback` for `owner`'s resources specifically: two
    /// owners sharing `primary_am` may mirror to different secondaries,
    /// each holding only that owner's delegation.
    #[must_use]
    pub fn with_fallback_am_for_owner(
        mut self,
        primary_am: &str,
        owner: &str,
        fallback: DelegationConfig,
    ) -> Self {
        self.fallback_ams
            .insert((primary_am.to_owned(), Some(owner.to_owned())), fallback);
        self
    }

    /// Enables degraded mode: an expired cached permit may be served for
    /// up to `ms` past its TTL when every AM fails at the transport
    /// level. Epoch-stale entries always fail closed regardless.
    #[must_use]
    pub fn with_stale_grace_ms(mut self, ms: u64) -> Self {
        self.stale_grace_ms = ms;
        self
    }

    /// The fallback delegation for `owner` behind `primary_am`:
    /// owner-specific entry first, any-owner wildcard second.
    fn fallback_for(&self, primary_am: &str, owner: &str) -> Option<&DelegationConfig> {
        self.fallback_ams
            .get(&(primary_am.to_owned(), Some(owner.to_owned())))
            .or_else(|| self.fallback_ams.get(&(primary_am.to_owned(), None)))
    }
}

/// Batching configuration for Host→AM decision queries (the
/// `/protection/v1/decisions` channel), applied with
/// [`HostCore::set_decision_batching`].
///
/// Cache-miss queries collected by one [`HostCore::enforce_batch`] call
/// are grouped per (AM, host token, owner) and flushed in two ways:
///
/// * **flush-on-size** — every `max_batch` queries fill a batch request
///   and go out immediately;
/// * **flush-on-deadline** — a final partial batch waits `max_delay_ms`
///   for stragglers that never come. The wait is charged to the
///   [`SimClock`] (once per enforcement round, since partial batches
///   against different AMs wait concurrently), keeping runs deterministic
///   and replayable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Maximum queries per batch request, clamped to
    /// [`protocol::MAX_BATCH`] (the AM-side cap).
    pub max_batch: usize,
    /// Deadline (ms) a partial batch waits before flushing.
    pub max_delay_ms: u64,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 8,
            max_delay_ms: 5,
        }
    }
}

/// One access attempt inside a batched enforcement round — the same
/// tuple [`HostCore::enforce`] takes, owned so a round can carry many.
#[derive(Debug, Clone)]
pub struct AccessAttempt {
    /// Requesting application label.
    pub requester: String,
    /// Authenticated human subject, if any.
    pub subject: Option<String>,
    /// Resource id being accessed.
    pub resource_id: String,
    /// Action attempted.
    pub action: Action,
    /// Bearer (authorization) token presented, if any.
    pub bearer: Option<String>,
    /// Where the AM should send the requester back after authorizing.
    pub return_url: Url,
}

/// `(requester, resource id, action)` — what a cached decision answers for.
type CacheKey = (String, String, Action);

thread_local! {
    /// Last `(token, digest)` pair this thread hashed. Warm §V.B.6 loops
    /// present the same bearer token on every access, so the memo turns a
    /// per-access SHA-256 into a string compare. Pure-function cache: a
    /// stale entry is impossible, only a missed one.
    static TOKEN_DIGEST_MEMO: RefCell<(String, [u8; 32])> =
        const { RefCell::new((String::new(), [0; 32])) };
}

/// SHA-256 of `token`, memoized per thread on the last-seen token.
fn token_digest(token: &str) -> [u8; 32] {
    TOKEN_DIGEST_MEMO.with(|memo| {
        let mut memo = memo.borrow_mut();
        if memo.0 != token {
            memo.0.clear();
            memo.0.push_str(token);
            memo.1 = sha256(token.as_bytes());
        }
        memo.1
    })
}

/// One cached permit decision (§V.B.6).
///
/// A cached entry may satisfy a later request only when *all* of these
/// hold: the same requester presents the **same bearer token** (by
/// digest), the entry's TTL has not elapsed, and the owner's policy
/// epoch has not advanced since the AM stamped the decision.
#[derive(Debug)]
struct CachedDecision {
    expires_at_ms: u64,
    /// SHA-256 of the bearer token that earned the permit. A permit is
    /// bound to its token; a different (possibly garbage) bearer must
    /// take the full decision-query path.
    token_digest: [u8; 32],
    /// Resource owner whose policies produced the decision.
    owner: String,
    /// Authority of the AM whose evaluation this entry caches. A pushed
    /// decision invalidation (DESIGN.md §16) can only vouch for entries
    /// its signer decided — an entry learned from a *fallback* AM is
    /// outside the signer's decided registry and must not be re-stamped
    /// to the new epoch.
    am: String,
    /// The owner's policy epoch at decision time.
    epoch: u64,
    /// The access tuple's sieve fingerprint — the identity a pushed
    /// decision invalidation names this entry by (DESIGN.md §16).
    fingerprint: protocol::SieveFingerprint,
    /// Second-chance bit: set on every hit, cleared once by the evictor
    /// before the entry becomes an eviction victim.
    referenced: AtomicBool,
}

/// The bounded decision cache. Eviction is second-chance (clock) over
/// insertion order — deterministic for a deterministic request sequence,
/// unlike anything keyed on map iteration order.
struct DecisionCache {
    enabled: bool,
    capacity: usize,
    entries: HashMap<CacheKey, CachedDecision>,
    /// Keys in insertion order, driving the second-chance sweep.
    order: VecDeque<CacheKey>,
    /// Freshest policy epoch seen per owner (from decision responses or
    /// pushed via [`HostCore::note_policy_epoch`]). Entries stamped with
    /// an older epoch are dead.
    owner_epochs: HashMap<String, u64>,
    /// Degraded-mode grace window (ms past TTL expiry) within which an
    /// expired **permit** may still be served when the AM is unreachable
    /// at the transport level. 0 (the default) disables degraded mode.
    /// Epoch-stale entries are never grace-served: a policy change
    /// always fails closed regardless of this window.
    stale_grace_ms: u64,
}

impl DecisionCache {
    fn new() -> Self {
        DecisionCache {
            enabled: true,
            capacity: DEFAULT_DECISION_CACHE_CAPACITY,
            entries: HashMap::new(),
            order: VecDeque::new(),
            owner_epochs: HashMap::new(),
            stale_grace_ms: 0,
        }
    }

    /// Serves a hit iff enabled, unexpired, token-bound, and epoch-fresh.
    fn lookup(&self, key: &CacheKey, token_digest: &[u8; 32], now: u64) -> bool {
        if !self.enabled {
            return false;
        }
        let Some(entry) = self.entries.get(key) else {
            return false;
        };
        if entry.expires_at_ms <= now || &entry.token_digest != token_digest {
            return false;
        }
        if entry.epoch < self.owner_epochs.get(&entry.owner).copied().unwrap_or(0) {
            return false;
        }
        entry.referenced.store(true, Ordering::Relaxed);
        true
    }

    /// Degraded-mode lookup: serves an **expired** permit that is still
    /// within the grace window, token-bound and epoch-fresh. Returns the
    /// staleness (ms past expiry) on a hit; the caller asserts it stays
    /// within the window it configured. Only ever consulted after a
    /// transport-level AM failure — a fresh entry would already have been
    /// served by [`DecisionCache::lookup`].
    fn lookup_stale(&self, key: &CacheKey, token_digest: &[u8; 32], now: u64) -> Option<u64> {
        if !self.enabled || self.stale_grace_ms == 0 {
            return None;
        }
        let entry = self.entries.get(key)?;
        if &entry.token_digest != token_digest {
            return None;
        }
        // Past the grace window: fail closed, the permit is gone.
        if now >= entry.expires_at_ms.saturating_add(self.stale_grace_ms) {
            return None;
        }
        // A policy change (epoch advance) always fails closed.
        if entry.epoch < self.owner_epochs.get(&entry.owner).copied().unwrap_or(0) {
            return None;
        }
        entry.referenced.store(true, Ordering::Relaxed);
        Some(now.saturating_sub(entry.expires_at_ms))
    }

    /// Inserts under the caller's write lock, re-checking `enabled` there
    /// (no decide-then-insert race), sweeping dead entries, and evicting
    /// down to capacity.
    fn insert(&mut self, key: CacheKey, entry: CachedDecision, now: u64) {
        if !self.enabled || self.capacity == 0 {
            return;
        }
        self.sweep_dead(now);
        if !self.entries.contains_key(&key) {
            while self.entries.len() >= self.capacity {
                self.evict_one();
            }
            self.order.push_back(key.clone());
        }
        self.entries.insert(key, entry);
    }

    /// Drops expired and epoch-stale entries. With a grace window
    /// configured, expired-but-graceable permits are retained until the
    /// window closes (they are what degraded mode serves from).
    fn sweep_dead(&mut self, now: u64) {
        let entries = &mut self.entries;
        let owner_epochs = &self.owner_epochs;
        let grace = self.stale_grace_ms;
        self.order.retain(|key| {
            let live = entries.get(key).is_some_and(|e| {
                e.expires_at_ms.saturating_add(grace) > now
                    && e.epoch >= owner_epochs.get(&e.owner).copied().unwrap_or(0)
            });
            if !live {
                entries.remove(key);
            }
            live
        });
    }

    /// Second-chance eviction: recently referenced entries get one more
    /// round; the first unreferenced one goes.
    fn evict_one(&mut self) {
        while let Some(key) = self.order.pop_front() {
            let Some(entry) = self.entries.get(&key) else {
                continue;
            };
            if entry.referenced.swap(false, Ordering::Relaxed) {
                self.order.push_back(key);
            } else {
                self.entries.remove(&key);
                return;
            }
        }
    }

    /// Records a (possibly newer) policy epoch for `owner`, purging that
    /// owner's now-stale entries.
    fn note_epoch(&mut self, owner: &str, epoch: u64) {
        let known = self.owner_epochs.entry(owner.to_owned()).or_insert(0);
        if epoch <= *known {
            return;
        }
        *known = epoch;
        let entries = &mut self.entries;
        self.order.retain(|key| {
            let live = entries
                .get(key)
                .is_some_and(|e| e.owner != owner || e.epoch >= epoch);
            if !live {
                entries.remove(key);
            }
            live
        });
    }

    /// Applies a verified decision invalidation (DESIGN.md §16) signed
    /// by AM `am`: records the new epoch, evicts exactly the entries
    /// whose fingerprints the AM named, and re-stamps the owner's
    /// surviving entries *decided by that AM* to the new epoch so they
    /// keep serving — the surgical alternative to
    /// [`DecisionCache::note_epoch`]'s owner-wide purge. Entries learned
    /// from any other AM (a fallback) are outside the signer's decided
    /// registry, so its list cannot name them; they keep their old epoch
    /// and die against the advanced floor exactly as under a plain epoch
    /// note. The same goes for **TTL-expired** entries: the AM prunes
    /// expired tuples from its decided registry before compiling the
    /// list, so its silence says nothing about them — re-stamping one
    /// would let the stale-grace degraded path serve it past a
    /// revocation the push just delivered. Returns how many entries the
    /// fingerprints evicted. A push older than the known epoch is stale
    /// and applies nothing.
    fn apply_invalidation(
        &mut self,
        owner: &str,
        am: &str,
        epoch: u64,
        dead: &[protocol::SieveFingerprint],
        now: u64,
    ) -> u64 {
        let known = self.owner_epochs.entry(owner.to_owned()).or_insert(0);
        if epoch < *known {
            return 0;
        }
        *known = epoch;
        let mut evicted = 0;
        let entries = &mut self.entries;
        self.order.retain(|key| {
            let Some(entry) = entries.get_mut(key) else {
                return false;
            };
            if entry.owner != owner {
                return true;
            }
            if dead.contains(&entry.fingerprint) {
                entries.remove(key);
                evicted += 1;
                return false;
            }
            if entry.am == am && entry.expires_at_ms > now {
                // The signing AM vouched for its own survivors under the
                // new epoch.
                entry.epoch = epoch;
            }
            true
        });
        evicted
    }

    /// The epoch of an **expired** but otherwise valid entry — same
    /// token, epoch-fresh — that a conditional `if_epoch` revalidation
    /// query could cheaply re-arm. `None` when there is nothing worth
    /// revalidating (no entry, live entry, different token, stale epoch).
    fn revalidation_epoch(&self, key: &CacheKey, token_digest: &[u8; 32], now: u64) -> Option<u64> {
        if !self.enabled {
            return None;
        }
        let entry = self.entries.get(key)?;
        if entry.expires_at_ms > now || &entry.token_digest != token_digest {
            return None;
        }
        if entry.epoch < self.owner_epochs.get(&entry.owner).copied().unwrap_or(0) {
            return None;
        }
        Some(entry.epoch)
    }

    /// Re-arms an expired entry after the AM confirmed it unchanged:
    /// extends its TTL without re-learning the decision. Fail-closed on
    /// any mismatch (entry gone, different token, epoch moved) — the
    /// unchanged reply then re-arms nothing and the caller refuses.
    fn rearm(
        &mut self,
        key: &CacheKey,
        token_digest: &[u8; 32],
        epoch: u64,
        expires_at_ms: u64,
    ) -> bool {
        let Some(entry) = self.entries.get_mut(key) else {
            return false;
        };
        if &entry.token_digest != token_digest || entry.epoch != epoch {
            return false;
        }
        if entry.epoch < self.owner_epochs.get(&entry.owner).copied().unwrap_or(0) {
            return false;
        }
        entry.expires_at_ms = expires_at_ms;
        entry.referenced.store(true, Ordering::Relaxed);
        true
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
    }
}

/// A host-local access-log entry (the per-host view E13 contrasts with the
/// AM's central audit log).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostLogEntry {
    /// Event time (ms).
    pub at_ms: u64,
    /// Requester label.
    pub requester: String,
    /// Resource id.
    pub resource_id: String,
    /// Action attempted.
    pub action: Action,
    /// `true` when access was granted.
    pub granted: bool,
    /// How the decision was reached.
    pub via: DecisionPath,
}

/// How the PEP reached its verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionPath {
    /// Fresh decision query to the AM (Fig. 6).
    AmQuery,
    /// Served from the decision cache (§V.B.6).
    Cache,
    /// Evaluated by the built-in legacy ACLs (§III status quo).
    LegacyAcl,
    /// Requester had no token: redirected to the AM (Fig. 5).
    RedirectedToAm,
    /// Rejected without consulting anything (bad token, AM unreachable…).
    Refused,
    /// Degraded mode: an expired cached permit served within its grace
    /// window because the AM was unreachable (DESIGN.md §10).
    StaleGrace,
}

/// PEP counters for the experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PepStats {
    /// Decision queries sent to AMs.
    pub am_queries: u64,
    /// Permits served from the decision cache.
    pub cache_hits: u64,
    /// Redirects of token-less requesters to an AM.
    pub redirects: u64,
    /// Accesses decided by legacy ACLs.
    pub legacy_checks: u64,
    /// Expired permits served within the degraded-mode grace window.
    pub stale_served: u64,
    /// Decision queries answered without a dispatch because the AM's
    /// circuit was open.
    pub breaker_fast_fails: u64,
    /// Decision queries sent to a fallback AM after the primary failed
    /// at the transport level.
    pub fallback_queries: u64,
    /// Extra dispatch attempts spent retrying transport failures.
    pub am_retries: u64,
    /// Batch decision requests flushed to an AM (each carries up to
    /// [`BatchConfig::max_batch`] queries in one round trip).
    pub batch_flushes: u64,
    /// Accesses granted by the tier-1 capability sieve: a lock-free
    /// snapshot read that touched no cache, no state lock and no log
    /// (DESIGN.md §12).
    pub sieve_hits: u64,
    /// Sieve probes that missed (or hit an expired entry) and fell
    /// through to the tier-2 protocol path. Zero while no sieve is
    /// installed — an absent sieve is "disabled", not "all misses".
    pub sieve_misses: u64,
    /// Pushed sieve bodies accepted and installed (signature verified,
    /// epoch fresh).
    pub sieve_installs: u64,
    /// Pushed sieve bodies rejected fail-closed (bad signature, stale
    /// epoch, unknown owner/resource, delegation mismatch).
    pub sieve_rejects: u64,
    /// Pushed sieve *deltas* applied on top of an installed base
    /// (DESIGN.md §13). Disjoint from `sieve_installs`, which counts
    /// full-body installs.
    pub sieve_delta_installs: u64,
    /// Sieve deltas refused because the installed base generation did not
    /// match; each answers [`protocol::SIEVE_RESYNC`] so the AM reships a
    /// full body. Not a trust failure — those count as `sieve_rejects`.
    pub sieve_resyncs: u64,
    /// Pushed decision invalidations verified and applied surgically
    /// (DESIGN.md §16) — each spared the owner's surviving cached
    /// permits the owner-wide epoch purge.
    pub invalidations_applied: u64,
    /// Cached permits evicted by name through applied invalidations (the
    /// exact fingerprints the AM said died).
    pub invalidated_evictions: u64,
    /// Conditional `/protection/v2/decision` revalidation queries sent
    /// with an `if_epoch` precondition.
    pub revalidations: u64,
    /// Conditional queries the AM collapsed to an *unchanged* reply that
    /// re-armed the expired cached permit.
    pub revalidations_unchanged: u64,
}

/// What the PEP tells the application to do with a request.
#[derive(Debug, Clone)]
pub enum Enforcement {
    /// Serve the resource.
    Grant,
    /// Send this response instead (redirect to AM, 401, 403, 404, 503…).
    Block(Response),
}

impl Enforcement {
    /// Returns `true` for [`Enforcement::Grant`].
    #[must_use]
    pub fn is_grant(&self) -> bool {
        matches!(self, Enforcement::Grant)
    }
}

/// Outcome of applying a pushed sieve delta ([`HostCore::install_sieve_delta`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SieveDeltaOutcome {
    /// The delta verified and applied on top of the installed base.
    Installed,
    /// The installed base generation does not match the delta's
    /// `base_epoch` (or no sieve is installed for the owner at all). The
    /// web layer answers [`protocol::SIEVE_RESYNC`] so the AM reships a
    /// full body.
    BaseMismatch,
    /// The delta failed verification or validation and was dropped
    /// fail-closed, exactly like a bad full body.
    Rejected,
}

/// An error from host-side storage operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostError {
    /// No such resource.
    NotFound(String),
    /// A resource with this id already exists.
    AlreadyExists(String),
}

impl fmt::Display for HostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostError::NotFound(id) => write!(f, "no such resource: {id}"),
            HostError::AlreadyExists(id) => write!(f, "resource already exists: {id}"),
        }
    }
}

impl std::error::Error for HostError {}

#[derive(Default)]
struct HostState {
    resources: BTreeMap<String, Resource>,
    /// user -> delegation for all their resources on this host.
    user_delegations: HashMap<String, DelegationConfig>,
    /// resource id -> delegation override (different AM per resource).
    resource_delegations: HashMap<String, DelegationConfig>,
    /// resource id -> built-in ACL (legacy mechanism).
    legacy_acls: HashMap<String, AclMatrix>,
}

/// Stripe count for the tier-1 sieve hit/miss counters. The sieve hot
/// path is the one place where *every* thread bumps a counter on *every*
/// access, so a single shared cache line would serialize the very path
/// this PR un-serializes. Threads are spread round-robin over the
/// stripes; `snapshot()` sums them.
const SIEVE_STAT_SHARDS: usize = 16;

/// One cache-line-aligned stripe of sieve counters, so two stripes never
/// false-share a line.
#[repr(align(64))]
#[derive(Default)]
struct SieveStatShard {
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Round-robin source for each thread's stripe assignment.
static NEXT_SIEVE_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's stripe index, fixed at first use.
    static SIEVE_SHARD_INDEX: usize =
        NEXT_SIEVE_SHARD.fetch_add(1, Ordering::Relaxed) % SIEVE_STAT_SHARDS;
}

/// Lock-free PEP counters: the enforcement hot path bumps these without
/// touching any lock the store or the cache is behind.
///
/// `snapshot()`/`reset()` form a seqlock: `generation` is odd while a
/// reset is mid-flight, and a snapshot retries until it reads the same
/// even generation before and after its loads. Without this, a reader
/// racing `reset()` could observe a half-reset snapshot (some counters
/// zeroed, others not) — torn totals that break any invariant relating
/// two counters. Ordinary increments still race a snapshot (each counter
/// is independently `Relaxed`), which is inherent and fine: a snapshot
/// is a point-in-time reading, not a barrier.
struct AtomicPepStats {
    /// Seqlock generation; odd ⇒ a reset is in progress.
    generation: AtomicU64,
    am_queries: AtomicU64,
    cache_hits: AtomicU64,
    redirects: AtomicU64,
    legacy_checks: AtomicU64,
    stale_served: AtomicU64,
    breaker_fast_fails: AtomicU64,
    fallback_queries: AtomicU64,
    am_retries: AtomicU64,
    batch_flushes: AtomicU64,
    sieve_installs: AtomicU64,
    sieve_rejects: AtomicU64,
    sieve_delta_installs: AtomicU64,
    sieve_resyncs: AtomicU64,
    invalidations_applied: AtomicU64,
    invalidated_evictions: AtomicU64,
    revalidations: AtomicU64,
    revalidations_unchanged: AtomicU64,
    /// Striped tier-1 hit/miss counters (see [`SIEVE_STAT_SHARDS`]).
    /// Inside this struct so the seqlock covers them too.
    sieve_shards: [SieveStatShard; SIEVE_STAT_SHARDS],
}

impl Default for AtomicPepStats {
    fn default() -> Self {
        AtomicPepStats {
            generation: AtomicU64::new(0),
            am_queries: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            redirects: AtomicU64::new(0),
            legacy_checks: AtomicU64::new(0),
            stale_served: AtomicU64::new(0),
            breaker_fast_fails: AtomicU64::new(0),
            fallback_queries: AtomicU64::new(0),
            am_retries: AtomicU64::new(0),
            batch_flushes: AtomicU64::new(0),
            sieve_installs: AtomicU64::new(0),
            sieve_rejects: AtomicU64::new(0),
            sieve_delta_installs: AtomicU64::new(0),
            sieve_resyncs: AtomicU64::new(0),
            invalidations_applied: AtomicU64::new(0),
            invalidated_evictions: AtomicU64::new(0),
            revalidations: AtomicU64::new(0),
            revalidations_unchanged: AtomicU64::new(0),
            sieve_shards: std::array::from_fn(|_| SieveStatShard::default()),
        }
    }
}

impl AtomicPepStats {
    /// Records a tier-1 sieve hit on this thread's stripe.
    fn bump_sieve_hit(&self) {
        SIEVE_SHARD_INDEX.with(|&i| self.sieve_shards[i].hits.fetch_add(1, Ordering::Relaxed));
    }

    /// Records a tier-1 sieve miss on this thread's stripe.
    fn bump_sieve_miss(&self) {
        SIEVE_SHARD_INDEX.with(|&i| self.sieve_shards[i].misses.fetch_add(1, Ordering::Relaxed));
    }

    fn snapshot(&self) -> PepStats {
        loop {
            let before = self.generation.load(Ordering::Acquire);
            if before & 1 == 1 {
                // A reset is mid-flight; wait for it to finish.
                std::hint::spin_loop();
                continue;
            }
            let stats = PepStats {
                am_queries: self.am_queries.load(Ordering::Relaxed),
                cache_hits: self.cache_hits.load(Ordering::Relaxed),
                redirects: self.redirects.load(Ordering::Relaxed),
                legacy_checks: self.legacy_checks.load(Ordering::Relaxed),
                stale_served: self.stale_served.load(Ordering::Relaxed),
                breaker_fast_fails: self.breaker_fast_fails.load(Ordering::Relaxed),
                fallback_queries: self.fallback_queries.load(Ordering::Relaxed),
                am_retries: self.am_retries.load(Ordering::Relaxed),
                batch_flushes: self.batch_flushes.load(Ordering::Relaxed),
                sieve_hits: self
                    .sieve_shards
                    .iter()
                    .map(|s| s.hits.load(Ordering::Relaxed))
                    .sum(),
                sieve_misses: self
                    .sieve_shards
                    .iter()
                    .map(|s| s.misses.load(Ordering::Relaxed))
                    .sum(),
                sieve_installs: self.sieve_installs.load(Ordering::Relaxed),
                sieve_rejects: self.sieve_rejects.load(Ordering::Relaxed),
                sieve_delta_installs: self.sieve_delta_installs.load(Ordering::Relaxed),
                sieve_resyncs: self.sieve_resyncs.load(Ordering::Relaxed),
                invalidations_applied: self.invalidations_applied.load(Ordering::Relaxed),
                invalidated_evictions: self.invalidated_evictions.load(Ordering::Relaxed),
                revalidations: self.revalidations.load(Ordering::Relaxed),
                revalidations_unchanged: self.revalidations_unchanged.load(Ordering::Relaxed),
            };
            if self.generation.load(Ordering::Acquire) == before {
                return stats;
            }
            // A reset landed between our two generation reads; retry.
        }
    }

    fn reset(&self) {
        // Odd generation: snapshots in flight will discard and retry.
        self.generation.fetch_add(1, Ordering::AcqRel);
        self.am_queries.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.redirects.store(0, Ordering::Relaxed);
        self.legacy_checks.store(0, Ordering::Relaxed);
        self.stale_served.store(0, Ordering::Relaxed);
        self.breaker_fast_fails.store(0, Ordering::Relaxed);
        self.fallback_queries.store(0, Ordering::Relaxed);
        self.am_retries.store(0, Ordering::Relaxed);
        self.batch_flushes.store(0, Ordering::Relaxed);
        self.sieve_installs.store(0, Ordering::Relaxed);
        self.sieve_rejects.store(0, Ordering::Relaxed);
        self.sieve_delta_installs.store(0, Ordering::Relaxed);
        self.sieve_resyncs.store(0, Ordering::Relaxed);
        self.invalidations_applied.store(0, Ordering::Relaxed);
        self.invalidated_evictions.store(0, Ordering::Relaxed);
        self.revalidations.store(0, Ordering::Relaxed);
        self.revalidations_unchanged.store(0, Ordering::Relaxed);
        for shard in &self.sieve_shards {
            shard.hits.store(0, Ordering::Relaxed);
            shard.misses.store(0, Ordering::Relaxed);
        }
        // Back to even: the stats are coherent again.
        self.generation.fetch_add(1, Ordering::Release);
    }
}

// -- tier-1 capability sieve (DESIGN.md §12) ----------------------------------

/// Hasher for sieve fingerprints. A fingerprint is already the truncated
/// output of SHA-256, so its first 8 bytes are a uniformly distributed
/// hash value — feeding them through SipHash again would only add cost
/// to the hottest lookup in the system. The last `write` wins, which for
/// a `[u8; 16]` key means the fingerprint bytes themselves (the slice
/// length prefix written first is overwritten).
#[derive(Default, Clone)]
struct FpHasher(u64);

impl Hasher for FpHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut buf = [0u8; 8];
        let n = bytes.len().min(8);
        buf[..n].copy_from_slice(&bytes[..n]);
        self.0 = u64::from_le_bytes(buf);
    }
}

/// [`BuildHasher`] for [`FpHasher`].
#[derive(Default, Clone)]
struct FpHashBuilder;

impl BuildHasher for FpHashBuilder {
    type Hasher = FpHasher;

    fn build_hasher(&self) -> FpHasher {
        FpHasher(0)
    }
}

/// The immutable tier-1 enforcement table: every fingerprint the AM has
/// vouched for, with its expiry. Readers clone an `Arc` to it and probe
/// without any lock; writers (install/purge — all cold paths) build a
/// modified copy and swap it in under [`HostCore::sieve`]'s mutex.
///
/// Entries are **exact** (full fingerprints, not a Bloom filter): a
/// false positive here would *grant* an access the AM never permitted,
/// which no space saving justifies. A false negative merely costs a
/// tier-2 round trip.
#[derive(Default, Clone)]
struct SieveSnapshot {
    /// fingerprint → expiry (ms since epoch). A probe is a hit iff the
    /// fingerprint is present and `now < expiry`.
    entries: HashMap<protocol::SieveFingerprint, u64, FpHashBuilder>,
    /// owner → that owner's fingerprints, for epoch and delegation-change
    /// purges.
    owner_index: HashMap<String, Vec<protocol::SieveFingerprint>>,
    /// resource id → fingerprints, for resource deletion / re-delegation
    /// purges.
    resource_index: HashMap<String, Vec<protocol::SieveFingerprint>>,
    /// owner → policy epoch the installed sieve was compiled under. Kept
    /// monotonic: an arriving sieve stamped older than this is rejected.
    owner_epochs: HashMap<String, u64>,
}

impl SieveSnapshot {
    /// Drops every entry belonging to `owner`. Keeps `owner_epochs` — the
    /// epoch floor must survive the purge or a delayed old sieve could
    /// resurrect revoked permits.
    fn purge_owner(&mut self, owner: &str) {
        if let Some(fps) = self.owner_index.remove(owner) {
            for fp in &fps {
                self.entries.remove(fp);
            }
            let entries = &self.entries;
            for list in self.resource_index.values_mut() {
                list.retain(|fp| entries.contains_key(fp));
            }
            self.resource_index.retain(|_, v| !v.is_empty());
        }
    }

    /// Drops every entry for `resource_id` (deleted or re-delegated).
    fn purge_resource(&mut self, resource_id: &str) {
        if let Some(fps) = self.resource_index.remove(resource_id) {
            for fp in &fps {
                self.entries.remove(fp);
            }
            let entries = &self.entries;
            for list in self.owner_index.values_mut() {
                list.retain(|fp| entries.contains_key(fp));
            }
            self.owner_index.retain(|_, v| !v.is_empty());
        }
    }

    /// Drops a specific fingerprint set (a delta's `removed` list).
    /// Removal only narrows access, so no ownership check is needed —
    /// the worst a bad list can do is force extra tier-2 round trips.
    fn remove_fingerprints(&mut self, dead: &[protocol::SieveFingerprint]) {
        if dead.is_empty() {
            return;
        }
        for fp in dead {
            self.entries.remove(fp);
        }
        let entries = &self.entries;
        for list in self.owner_index.values_mut() {
            list.retain(|fp| entries.contains_key(fp));
        }
        self.owner_index.retain(|_, v| !v.is_empty());
        for list in self.resource_index.values_mut() {
            list.retain(|fp| entries.contains_key(fp));
        }
        self.resource_index.retain(|_, v| !v.is_empty());
    }
}

/// Per-process id source for [`HostCore::sieve_id`], keying the
/// thread-local snapshot slots below.
static NEXT_SIEVE_ID: AtomicU64 = AtomicU64::new(1);

/// How many distinct `HostCore`s a thread caches sieve snapshots for.
const SIEVE_CACHE_SLOTS: usize = 8;

thread_local! {
    /// Per-thread `(host id, generation, snapshot)` slots. The warm path
    /// revalidates with one `Acquire` load of the generation and only
    /// touches [`HostCore::sieve`]'s mutex when an install/purge actually
    /// happened — the same pattern `SimNet` uses for its config snapshot.
    static SIEVE_SNAPSHOT_CACHE: RefCell<Vec<(u64, u64, Arc<SieveSnapshot>)>> =
        const { RefCell::new(Vec::new()) };
}

thread_local! {
    /// Last `(token, resource, action, requester) → fingerprint` this
    /// thread computed. Warm §V.B.6 loops probe the same tuple on every
    /// access, so the memo turns the per-access SHA-256 into four string
    /// compares — the same pure-function trick as [`TOKEN_DIGEST_MEMO`].
    static SIEVE_FP_MEMO: RefCell<(String, String, String, String, protocol::SieveFingerprint)> =
        const {
            RefCell::new((
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                [0; 16],
            ))
        };
}

/// [`protocol::sieve_fingerprint`], memoized per thread on the last-seen
/// tuple.
fn sieve_fingerprint_memo(
    token: &str,
    resource: &str,
    action: &str,
    requester: &str,
) -> protocol::SieveFingerprint {
    SIEVE_FP_MEMO.with(|memo| {
        let mut memo = memo.borrow_mut();
        let (t, r, a, q, fp) = &mut *memo;
        if t != token || r != resource || a != action || q != requester {
            t.clear();
            t.push_str(token);
            r.clear();
            r.push_str(resource);
            a.clear();
            a.push_str(action);
            q.clear();
            q.push_str(requester);
            *fp = protocol::sieve_fingerprint(token, resource, action, requester);
        }
        *fp
    })
}

/// The bare action label used in sieve fingerprints — matches both the
/// `Display` form and what the AM's compiler feeds
/// [`protocol::sieve_fingerprint`], without the hot path paying
/// `to_string()`.
fn action_label(action: &Action) -> &str {
    match action {
        Action::Read => "read",
        Action::Write => "write",
        Action::Delete => "delete",
        Action::List => "list",
        Action::Share => "share",
        Action::Custom(name) => name.as_str(),
    }
}

/// The Host framework core. Concrete applications (WebPics, WebStorage,
/// WebDocs) embed one and add their domain routes on top.
///
/// # Example
///
/// ```
/// use ucam_host::core::HostCore;
/// use ucam_webenv::SimClock;
///
/// let host = HostCore::new("webpics.example", SimClock::new());
/// host.put_resource("photo-1", "bob", "photo", b"...".to_vec()).unwrap();
/// assert_eq!(host.resource("photo-1").unwrap().owner, "bob");
/// ```
pub struct HostCore {
    authority: String,
    clock: SimClock,
    /// Resource store and delegation config.
    state: RwLock<HostState>,
    /// The decision cache, behind its own lock so the hot path never
    /// contends with resource CRUD.
    cache: RwLock<DecisionCache>,
    /// Host-local access log, separate from both of the above.
    log: Mutex<Vec<HostLogEntry>>,
    stats: AtomicPepStats,
    /// Opt-in Host→AM resilience knobs (DESIGN.md §10). Read-mostly:
    /// taken once per decision query, never on the warm cache path.
    resilience: RwLock<ResilienceConfig>,
    /// Opt-in decision-query batching (`None` = off, the seed behaviour:
    /// one round trip per cache miss).
    batching: RwLock<Option<BatchConfig>>,
    /// Per-AM circuit state; only touched when a breaker is configured.
    breaker_states: Mutex<HashMap<String, BreakerState>>,
    /// High-water mark of staleness (ms past expiry) ever served by
    /// degraded mode — the chaos soak asserts it never exceeds the
    /// configured grace window.
    max_served_staleness_ms: AtomicU64,
    /// Current tier-1 capability sieve (DESIGN.md §12). The mutex guards
    /// the *swap*, not reads: the warm path clones the `Arc` from a
    /// thread-local slot revalidated against [`HostCore::sieve_gen`].
    sieve: Mutex<Arc<SieveSnapshot>>,
    /// Bumped (Release) on every sieve install/purge; readers load it
    /// (Acquire) to revalidate their thread-local snapshot.
    sieve_gen: AtomicU64,
    /// Process-unique id keying this core's thread-local snapshot slots.
    sieve_id: u64,
    /// Opt-in conditional revalidation (DESIGN.md §16): when set, a
    /// TTL-expired cached permit is revalidated with a v2 `if_epoch`
    /// decision query instead of a full v1 query. Off by default — the
    /// v1 wire traffic then stays byte-identical.
    conditional_revalidation: AtomicBool,
}

impl fmt::Debug for HostCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HostCore")
            .field("authority", &self.authority)
            .field("resources", &self.state.read().resources.len())
            .finish_non_exhaustive()
    }
}

impl HostCore {
    /// Creates an empty host addressed as `authority`, with the decision
    /// cache enabled.
    #[must_use]
    pub fn new(authority: &str, clock: SimClock) -> Self {
        HostCore {
            authority: authority.to_owned(),
            clock,
            state: RwLock::new(HostState::default()),
            cache: RwLock::new(DecisionCache::new()),
            log: Mutex::new(Vec::new()),
            stats: AtomicPepStats::default(),
            resilience: RwLock::new(ResilienceConfig::default()),
            batching: RwLock::new(None),
            breaker_states: Mutex::new(HashMap::new()),
            max_served_staleness_ms: AtomicU64::new(0),
            sieve: Mutex::new(Arc::new(SieveSnapshot::default())),
            sieve_gen: AtomicU64::new(0),
            sieve_id: NEXT_SIEVE_ID.fetch_add(1, Ordering::Relaxed),
            conditional_revalidation: AtomicBool::new(false),
        }
    }

    /// The host's authority.
    #[must_use]
    pub fn authority(&self) -> &str {
        &self.authority
    }

    /// Enables or disables the decision cache (E7 ablation knob).
    pub fn set_cache_enabled(&self, enabled: bool) {
        let mut cache = self.cache.write();
        cache.enabled = enabled;
        if !enabled {
            cache.clear();
        }
    }

    /// Bounds the number of cached decisions (default
    /// [`DEFAULT_DECISION_CACHE_CAPACITY`]); 0 disables caching outright.
    pub fn set_decision_cache_capacity(&self, capacity: usize) {
        let mut cache = self.cache.write();
        cache.capacity = capacity;
        let now = self.clock.now_ms();
        cache.sweep_dead(now);
        while cache.entries.len() > cache.capacity {
            cache.evict_one();
        }
    }

    /// Number of currently cached decisions (test/observability hook).
    #[must_use]
    pub fn decision_cache_len(&self) -> usize {
        self.cache.read().entries.len()
    }

    /// Drops all cached decisions (e.g. after the user edited policies).
    pub fn flush_decision_cache(&self) {
        self.cache.write().clear();
    }

    /// Records that `owner`'s policies are now at `epoch` (pushed by the
    /// AM or relayed by the environment). Cached decisions stamped with
    /// an older epoch are dropped and will never be served again, and any
    /// installed sieve compiled under an older epoch is purged the same
    /// way — both tiers go stale together.
    pub fn note_policy_epoch(&self, owner: &str, epoch: u64) {
        self.cache.write().note_epoch(owner, epoch);
        let needs_purge = {
            let current = self.sieve.lock();
            current
                .owner_epochs
                .get(owner)
                .is_some_and(|&installed| installed < epoch)
        };
        if needs_purge {
            let mut slot = self.sieve.lock();
            // Re-check under the lock: a concurrent install may have
            // brought the owner up to (or past) this epoch already.
            if slot
                .owner_epochs
                .get(owner)
                .is_some_and(|&installed| installed < epoch)
            {
                let mut next = (**slot).clone();
                next.purge_owner(owner);
                next.owner_epochs.insert(owner.to_owned(), epoch);
                *slot = Arc::new(next);
                self.sieve_gen.fetch_add(1, Ordering::Release);
            }
        }
    }

    /// Applies a pushed decision invalidation (DESIGN.md §16),
    /// fail-closed on any doubt. Returns `true` iff the body verified
    /// and was applied — the caller (the web layer's epoch-push route)
    /// must otherwise fall back to [`HostCore::note_policy_epoch`]'s
    /// owner-wide purge, which is always safe.
    ///
    /// Trust chain mirrors [`HostCore::install_sieve`]: the body must
    /// verify under the `host_token` of the user-level delegation this
    /// Host holds for the claimed owner. That signer speaks for the
    /// owner's policy epoch — the same authority the plain epoch push
    /// rides on. Eviction by fingerprint only narrows access; the one
    /// *widening* effect (surviving cached permits are re-stamped to the
    /// new epoch instead of purged) is exactly what the signature vouches
    /// for.
    pub fn install_invalidation(&self, body: &protocol::InvalidationBody) -> bool {
        let (key, signer) = {
            let state = self.state.read();
            let Some(delegation) = state.user_delegations.get(&body.owner) else {
                return false;
            };
            (delegation.host_token.clone(), delegation.am.clone())
        };
        if !body.verify(key.as_bytes()) {
            return false;
        }
        self.apply_invalidation(&body.owner, &signer, body.epoch, &body.invalidated);
        true
    }

    /// The surgical counterpart of [`HostCore::note_policy_epoch`]:
    /// advances `owner`'s epoch, evicts exactly the named fingerprints
    /// from both tiers, and lets everything else keep serving. Trust is
    /// the caller's problem — [`HostCore::install_invalidation`] is the
    /// verified entry point.
    ///
    /// The decision cache gets the full treatment (evict the dead,
    /// re-stamp the survivors). An installed tier-1 sieve only gets the
    /// narrowing half: its dead fingerprints are removed, but entries
    /// compiled under an older epoch are still purged wholesale, because
    /// sieve grants never take the decision path the invalidation list
    /// was compiled from — their survival cannot be vouched for here.
    /// (In practice the AM only pushes invalidations where no sieve body
    /// superseded them, so the purge is almost always a no-op.)
    fn apply_invalidation(
        &self,
        owner: &str,
        signer: &str,
        epoch: u64,
        dead: &[protocol::SieveFingerprint],
    ) {
        let now = self.clock.now_ms();
        let evicted = self
            .cache
            .write()
            .apply_invalidation(owner, signer, epoch, dead, now);
        if evicted > 0 {
            self.stats
                .invalidated_evictions
                .fetch_add(evicted, Ordering::Relaxed);
        }
        self.stats
            .invalidations_applied
            .fetch_add(1, Ordering::Relaxed);
        let sieve_work = {
            let current = self.sieve.lock();
            let has_dead = dead.iter().any(|fp| current.entries.contains_key(fp));
            let stale = current
                .owner_epochs
                .get(owner)
                .is_some_and(|&installed| installed < epoch);
            has_dead || stale
        };
        if sieve_work {
            self.update_sieve(|sieve| {
                sieve.remove_fingerprints(dead);
                if sieve
                    .owner_epochs
                    .get(owner)
                    .is_some_and(|&installed| installed < epoch)
                {
                    sieve.purge_owner(owner);
                    sieve.owner_epochs.insert(owner.to_owned(), epoch);
                }
            });
        }
    }

    /// Enables conditional revalidation (DESIGN.md §16): TTL-expired
    /// cached permits are refreshed with `/protection/v2/decision`
    /// `if_epoch` queries, which the AM collapses to a tiny *unchanged*
    /// reply when the owner's epoch has not moved. Off by default; the
    /// v1 wire surface is untouched while off.
    pub fn set_conditional_revalidation(&self, enabled: bool) {
        self.conditional_revalidation
            .store(enabled, Ordering::Relaxed);
    }

    // -- tier-1 capability sieve (DESIGN.md §12) ------------------------------

    /// The current sieve snapshot, via this thread's slot cache. One
    /// `Acquire` generation load on the warm path; the mutex is taken
    /// only when an install or purge actually changed the sieve.
    fn sieve_snapshot(&self) -> Arc<SieveSnapshot> {
        let generation = self.sieve_gen.load(Ordering::Acquire);
        SIEVE_SNAPSHOT_CACHE.with(|slots| {
            let mut slots = slots.borrow_mut();
            if let Some(slot) = slots.iter_mut().find(|(id, _, _)| *id == self.sieve_id) {
                if slot.1 != generation {
                    *slot = (self.sieve_id, generation, Arc::clone(&self.sieve.lock()));
                }
                return Arc::clone(&slot.2);
            }
            let snapshot = Arc::clone(&self.sieve.lock());
            if slots.len() >= SIEVE_CACHE_SLOTS {
                slots.remove(0);
            }
            slots.push((self.sieve_id, generation, Arc::clone(&snapshot)));
            snapshot
        })
    }

    /// Applies `mutate` to a copy of the sieve and swaps it in. Cold path
    /// only (installs and purges).
    fn update_sieve(&self, mutate: impl FnOnce(&mut SieveSnapshot)) {
        let mut slot = self.sieve.lock();
        let mut next = (**slot).clone();
        mutate(&mut next);
        *slot = Arc::new(next);
        self.sieve_gen.fetch_add(1, Ordering::Release);
    }

    /// Drops `owner`'s sieve entries (their delegation changed, so the
    /// signing key the entries were vouched under is void).
    fn purge_sieve_owner(&self, owner: &str) {
        let has_entries = self.sieve.lock().owner_index.contains_key(owner);
        if has_entries {
            self.update_sieve(|sieve| sieve.purge_owner(owner));
        }
    }

    /// Drops `resource_id`'s sieve entries (deleted or re-delegated).
    fn purge_sieve_resource(&self, resource_id: &str) {
        let has_entries = self.sieve.lock().resource_index.contains_key(resource_id);
        if has_entries {
            self.update_sieve(|sieve| sieve.purge_resource(resource_id));
        }
    }

    /// Installs a pushed capability sieve, fail-closed on any doubt.
    /// Returns `true` iff the sieve was installed.
    ///
    /// Trust chain: the body must verify under the `host_token` of the
    /// delegation this Host itself holds for the claimed owner — the
    /// shared secret from the delegation handshake, which only the real
    /// AM knows. Per entry, the resource must exist here, belong to the
    /// owner, and be governed by that same delegation (a per-resource
    /// override pointing at a different AM means the signer does not
    /// speak for it). The body's epoch must be no older than the freshest
    /// epoch this Host has seen for the owner from *either* tier, so a
    /// delayed push can never resurrect revoked permits.
    pub fn install_sieve(&self, sieve: &protocol::SieveBody) -> bool {
        let now = self.clock.now_ms();
        let accepted: Option<Vec<&protocol::SieveEntry>> = {
            let state = self.state.read();
            match state.user_delegations.get(&sieve.owner) {
                Some(config) if sieve.verify(config.host_token.as_bytes()) => {
                    let mut entries = Vec::with_capacity(sieve.entries.len());
                    let mut all_valid = true;
                    for entry in &sieve.entries {
                        let resource_ok = state
                            .resources
                            .get(&entry.resource)
                            .is_some_and(|r| r.owner == sieve.owner);
                        let delegation_ok = match state.resource_delegations.get(&entry.resource) {
                            // A per-resource override must still point at
                            // the same shared secret the body verified
                            // under; otherwise the signer doesn't govern
                            // this resource.
                            Some(over) => over.host_token == config.host_token,
                            None => true,
                        };
                        if resource_ok && delegation_ok && entry.expires_at_ms > now {
                            entries.push(entry);
                        } else {
                            // One bad entry poisons the whole body: a
                            // well-behaved AM never compiles one, so this
                            // is either corruption or forgery.
                            all_valid = false;
                            break;
                        }
                    }
                    all_valid.then_some(entries)
                }
                _ => None,
            }
        };
        let Some(accepted) = accepted else {
            self.stats.sieve_rejects.fetch_add(1, Ordering::Relaxed);
            return false;
        };
        // Epoch floor: freshest epoch known from the decision cache or a
        // previously installed sieve.
        let cache_epoch = self
            .cache
            .read()
            .owner_epochs
            .get(&sieve.owner)
            .copied()
            .unwrap_or(0);
        let installed = {
            let mut slot = self.sieve.lock();
            let floor = slot
                .owner_epochs
                .get(&sieve.owner)
                .copied()
                .unwrap_or(0)
                .max(cache_epoch);
            if sieve.epoch < floor {
                false
            } else {
                let mut next = (**slot).clone();
                next.purge_owner(&sieve.owner);
                for entry in accepted {
                    next.entries.insert(entry.fingerprint, entry.expires_at_ms);
                    next.owner_index
                        .entry(sieve.owner.clone())
                        .or_default()
                        .push(entry.fingerprint);
                    next.resource_index
                        .entry(entry.resource.clone())
                        .or_default()
                        .push(entry.fingerprint);
                }
                next.owner_epochs.insert(sieve.owner.clone(), sieve.epoch);
                *slot = Arc::new(next);
                self.sieve_gen.fetch_add(1, Ordering::Release);
                true
            }
        };
        if installed {
            // Keep the decision cache's epoch floor in step.
            self.cache.write().note_epoch(&sieve.owner, sieve.epoch);
            self.stats.sieve_installs.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.sieve_rejects.fetch_add(1, Ordering::Relaxed);
        }
        installed
    }

    /// Applies a pushed sieve *delta* on top of the installed base
    /// (DESIGN.md §13). Trust rules are identical to
    /// [`HostCore::install_sieve`] — same signing key (under the delta's
    /// own domain separator), same per-entry owner/delegation/expiry
    /// validation for everything `added`. On top of that, a delta only
    /// applies when the installed sieve for the owner sits **exactly** at
    /// the delta's `base_epoch` and the delta's epoch clears every epoch
    /// floor; any mismatch returns
    /// [`SieveDeltaOutcome::BaseMismatch`] so the caller can request a
    /// full-body resync. Removals need no ownership proof: dropping an
    /// entry can only narrow access.
    pub fn install_sieve_delta(&self, delta: &protocol::SieveDeltaBody) -> SieveDeltaOutcome {
        let now = self.clock.now_ms();
        let accepted: Option<Vec<&protocol::SieveEntry>> = {
            let state = self.state.read();
            match state.user_delegations.get(&delta.owner) {
                Some(config) if delta.verify(config.host_token.as_bytes()) => {
                    let mut entries = Vec::with_capacity(delta.added.len());
                    let mut all_valid = true;
                    for entry in &delta.added {
                        let resource_ok = state
                            .resources
                            .get(&entry.resource)
                            .is_some_and(|r| r.owner == delta.owner);
                        let delegation_ok = match state.resource_delegations.get(&entry.resource) {
                            Some(over) => over.host_token == config.host_token,
                            None => true,
                        };
                        if resource_ok && delegation_ok && entry.expires_at_ms > now {
                            entries.push(entry);
                        } else {
                            all_valid = false;
                            break;
                        }
                    }
                    all_valid.then_some(entries)
                }
                _ => None,
            }
        };
        let Some(accepted) = accepted else {
            self.stats.sieve_rejects.fetch_add(1, Ordering::Relaxed);
            return SieveDeltaOutcome::Rejected;
        };
        let cache_epoch = self
            .cache
            .read()
            .owner_epochs
            .get(&delta.owner)
            .copied()
            .unwrap_or(0);
        let outcome = {
            let mut slot = self.sieve.lock();
            let base = slot.owner_epochs.get(&delta.owner).copied();
            // Exact base match, and the result must clear both epoch
            // floors — a delta that would rewind either tier resyncs.
            if base != Some(delta.base_epoch)
                || delta.epoch < delta.base_epoch
                || delta.epoch < cache_epoch
            {
                SieveDeltaOutcome::BaseMismatch
            } else {
                let mut next = (**slot).clone();
                next.remove_fingerprints(&delta.removed);
                for entry in accepted {
                    // `insert` returning a prior expiry means the entry
                    // only moved its deadline; the indexes already know
                    // the fingerprint.
                    if next
                        .entries
                        .insert(entry.fingerprint, entry.expires_at_ms)
                        .is_none()
                    {
                        next.owner_index
                            .entry(delta.owner.clone())
                            .or_default()
                            .push(entry.fingerprint);
                        next.resource_index
                            .entry(entry.resource.clone())
                            .or_default()
                            .push(entry.fingerprint);
                    }
                }
                next.owner_epochs.insert(delta.owner.clone(), delta.epoch);
                *slot = Arc::new(next);
                self.sieve_gen.fetch_add(1, Ordering::Release);
                SieveDeltaOutcome::Installed
            }
        };
        match outcome {
            SieveDeltaOutcome::Installed => {
                self.cache.write().note_epoch(&delta.owner, delta.epoch);
                self.stats
                    .sieve_delta_installs
                    .fetch_add(1, Ordering::Relaxed);
            }
            SieveDeltaOutcome::BaseMismatch => {
                self.stats.sieve_resyncs.fetch_add(1, Ordering::Relaxed);
            }
            SieveDeltaOutcome::Rejected => {}
        }
        outcome
    }

    /// Tier-1 probe: grants iff the sieve holds an unexpired entry for
    /// exactly this `(token, resource, action, requester)`. No locks, no
    /// cache, no log write — the §V.B.6 warm path in one hash lookup.
    /// Returns `false` (fall through to tier-2) on any doubt.
    fn sieve_probe(
        &self,
        net: &dyn Transport,
        requester: &str,
        resource_id: &str,
        action: &Action,
        token: &str,
        now: u64,
    ) -> bool {
        let snapshot = self.sieve_snapshot();
        if snapshot.entries.is_empty() {
            // No sieve installed: tier-1 is simply absent, not missing.
            return false;
        }
        let fp = sieve_fingerprint_memo(token, resource_id, action_label(action), requester);
        match snapshot.entries.get(&fp) {
            Some(&expires_at_ms) if now < expires_at_ms => {
                self.stats.bump_sieve_hit();
                net.trace().note_with(&self.authority, || {
                    format!("sieve hit: {requester} {action} {resource_id}")
                });
                true
            }
            _ => {
                self.stats.bump_sieve_miss();
                false
            }
        }
    }

    // -- resilience knobs (DESIGN.md §10) -------------------------------------

    /// Applies a full [`ResilienceConfig`] atomically: breaker, retry,
    /// fallback AMs and the stale-grace window all switch together, and
    /// all circuit state resets. This is the single entry point for
    /// resilience configuration.
    pub fn set_resilience(&self, config: ResilienceConfig) {
        let grace = config.stale_grace_ms;
        *self.resilience.write() = config;
        self.breaker_states.lock().clear();
        let mut cache = self.cache.write();
        cache.stale_grace_ms = grace;
        // Shrinking the window may strand now-dead entries; sweep them.
        let now = self.clock.now_ms();
        cache.sweep_dead(now);
    }

    /// A snapshot of the current resilience configuration — read, adjust
    /// with the builder methods, and re-apply with
    /// [`HostCore::set_resilience`].
    #[must_use]
    pub fn resilience(&self) -> ResilienceConfig {
        self.resilience.read().clone()
    }

    /// Enables (or disables, with `None`) decision-query batching for
    /// [`HostCore::enforce_batch`] rounds. Off by default — and
    /// [`HostCore::enforce`] always takes the single-query path, so
    /// per-request latency is unchanged whenever batching is off or a
    /// round holds a single miss.
    pub fn set_decision_batching(&self, config: Option<BatchConfig>) {
        *self.batching.write() = config;
    }

    /// The maximum staleness (ms past TTL expiry) degraded mode has ever
    /// served — the invariant gauge for the chaos soak: it must never
    /// exceed the configured grace window.
    #[must_use]
    pub fn max_served_staleness_ms(&self) -> u64 {
        self.max_served_staleness_ms.load(Ordering::Relaxed)
    }

    /// Whether the circuit for `am` is currently open (fast-failing).
    #[must_use]
    pub fn breaker_open(&self, am: &str) -> bool {
        if self.resilience.read().breaker.is_none() {
            return false;
        }
        let now = self.clock.now_ms();
        self.breaker_states
            .lock()
            .get(am)
            .is_some_and(|s| s.open_until_ms > now)
    }

    /// Returns the PEP counters.
    #[must_use]
    pub fn stats(&self) -> PepStats {
        self.stats.snapshot()
    }

    /// Zeroes the PEP counters and the served-staleness high-water mark.
    pub fn reset_stats(&self) {
        self.stats.reset();
        self.max_served_staleness_ms.store(0, Ordering::Relaxed);
    }

    /// Returns a snapshot of the host-local access log.
    #[must_use]
    pub fn log(&self) -> Vec<HostLogEntry> {
        self.log.lock().clone()
    }

    // -- resource store ------------------------------------------------------

    /// Stores a new resource.
    ///
    /// # Errors
    ///
    /// Returns [`HostError::AlreadyExists`] when the id is taken.
    pub fn put_resource(
        &self,
        id: &str,
        owner: &str,
        kind: &str,
        data: Vec<u8>,
    ) -> Result<(), HostError> {
        let mut state = self.state.write();
        if state.resources.contains_key(id) {
            return Err(HostError::AlreadyExists(id.to_owned()));
        }
        state.resources.insert(
            id.to_owned(),
            Resource {
                id: id.to_owned(),
                owner: owner.to_owned(),
                kind: kind.to_owned(),
                data,
                created_at_ms: self.clock.now_ms(),
            },
        );
        Ok(())
    }

    /// Replaces a resource's content.
    ///
    /// # Errors
    ///
    /// Returns [`HostError::NotFound`] when absent.
    pub fn update_resource(&self, id: &str, data: Vec<u8>) -> Result<(), HostError> {
        let mut state = self.state.write();
        let resource = state
            .resources
            .get_mut(id)
            .ok_or_else(|| HostError::NotFound(id.to_owned()))?;
        resource.data = data;
        Ok(())
    }

    /// Reads a resource.
    #[must_use]
    pub fn resource(&self, id: &str) -> Option<Resource> {
        self.state.read().resources.get(id).cloned()
    }

    /// Reads only a resource's content bytes — the serving path after a
    /// grant, which has no use for the metadata [`HostCore::resource`]
    /// would also clone.
    #[must_use]
    pub fn resource_data(&self, id: &str) -> Option<Vec<u8>> {
        self.state.read().resources.get(id).map(|r| r.data.clone())
    }

    /// Deletes a resource.
    ///
    /// # Errors
    ///
    /// Returns [`HostError::NotFound`] when absent.
    pub fn delete_resource(&self, id: &str) -> Result<Resource, HostError> {
        let removed = self
            .state
            .write()
            .resources
            .remove(id)
            .ok_or_else(|| HostError::NotFound(id.to_owned()))?;
        // A sieve entry must never outlive its resource.
        self.purge_sieve_resource(id);
        Ok(removed)
    }

    /// Lists resources owned by `owner` (sorted by id).
    #[must_use]
    pub fn resources_of(&self, owner: &str) -> Vec<Resource> {
        self.state
            .read()
            .resources
            .values()
            .filter(|r| r.owner == owner)
            .cloned()
            .collect()
    }

    /// Lists resource ids with the given id prefix (directory listing).
    #[must_use]
    pub fn ids_with_prefix(&self, prefix: &str) -> Vec<String> {
        self.state
            .read()
            .resources
            .keys()
            .filter(|id| id.starts_with(prefix))
            .cloned()
            .collect()
    }

    // -- delegation management (Fig. 3) ---------------------------------------

    /// Records that `user` delegated access control (for all their
    /// resources here) to the AM in `config`.
    pub fn set_user_delegation(&self, user: &str, config: DelegationConfig) {
        self.state
            .write()
            .user_delegations
            .insert(user.to_owned(), config);
        // Entries were vouched under the old delegation's secret.
        self.purge_sieve_owner(user);
    }

    /// Records a per-resource delegation override (possibly a different AM
    /// than the user-level one, §V.A.3).
    pub fn set_resource_delegation(&self, resource_id: &str, config: DelegationConfig) {
        self.state
            .write()
            .resource_delegations
            .insert(resource_id.to_owned(), config);
        // The overriding AM, not the sieve's signer, now governs it.
        self.purge_sieve_resource(resource_id);
    }

    /// Removes `user`'s delegation (back to built-in access control).
    pub fn clear_user_delegation(&self, user: &str) -> Option<DelegationConfig> {
        let removed = self.state.write().user_delegations.remove(user);
        self.purge_sieve_owner(user);
        removed
    }

    /// The delegation governing `resource_id` owned by `owner`:
    /// resource-level override first, then user-level.
    #[must_use]
    pub fn delegation_for(&self, resource_id: &str, owner: &str) -> Option<DelegationConfig> {
        let state = self.state.read();
        state
            .resource_delegations
            .get(resource_id)
            .or_else(|| state.user_delegations.get(owner))
            .cloned()
    }

    // -- legacy built-in ACLs (§III) -------------------------------------------

    /// Sets the built-in ACL for a resource (the pre-delegation mechanism;
    /// "Both Hosts have a built-in access control functionality", §VI).
    pub fn set_legacy_acl(&self, resource_id: &str, acl: AclMatrix) {
        self.state
            .write()
            .legacy_acls
            .insert(resource_id.to_owned(), acl);
    }

    /// Reads the built-in ACL for a resource.
    #[must_use]
    pub fn legacy_acl(&self, resource_id: &str) -> Option<AclMatrix> {
        self.state.read().legacy_acls.get(resource_id).cloned()
    }

    // -- the PEP ---------------------------------------------------------------

    /// Enforces access control for one request against `resource_id`.
    ///
    /// * Owner sessions (`subject == Some(owner)`) are always granted —
    ///   users manage their own resources through the Host UI.
    /// * Delegated resources follow the paper's protocol: token-less
    ///   requesters are redirected to the AM (Fig. 5); token-bearing ones
    ///   are checked against the decision cache and, on a miss, through an
    ///   AM decision query (Fig. 6).
    /// * Undelegated resources fall back to the built-in legacy ACLs.
    #[allow(clippy::too_many_arguments)] // the PEP consumes the full request tuple
    pub fn enforce(
        &self,
        net: &dyn Transport,
        requester: &str,
        subject: Option<&str>,
        resource_id: &str,
        action: &Action,
        bearer: Option<&str>,
        return_url: &Url,
    ) -> Enforcement {
        let now = self.clock.now_ms();
        // Tier-1 (DESIGN.md §12): an AM-pushed sieve entry for exactly
        // this (token, resource, action, requester) grants before any
        // lock is taken. Entries only exist for resources that were
        // present and delegated at install time, and every mutation that
        // could invalidate them (deletion, re-delegation, epoch advance)
        // purges, so a hit is as trustworthy as a decision-cache hit.
        if let Some(token) = bearer {
            if self.sieve_probe(net, requester, resource_id, action, token, now) {
                return Enforcement::Grant;
            }
        }
        let state = self.state.read();
        let Some(resource) = state.resources.get(resource_id) else {
            return Enforcement::Block(Response::not_found(resource_id));
        };

        // The owner manages their own data.
        if subject == Some(resource.owner.as_str()) {
            return Enforcement::Grant;
        }

        let delegation = state
            .resource_delegations
            .get(resource_id)
            .or_else(|| state.user_delegations.get(&resource.owner));
        match delegation {
            Some(delegation) => {
                // §V.B.6 warm path: a bearer whose decision is cached is
                // granted while everything is still borrowed from the one
                // state read — no resource/delegation clones, no dispatch.
                if let Some(token) = bearer {
                    let cache_key = (requester.to_owned(), resource_id.to_owned(), action.clone());
                    let digest = token_digest(token);
                    if self.cache.read().lookup(&cache_key, &digest, now) {
                        drop(state);
                        self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                        net.trace().note_with(&self.authority, || {
                            format!("decision cache hit: {requester} {action} {resource_id}")
                        });
                        self.record(
                            now,
                            requester,
                            resource_id,
                            action,
                            true,
                            DecisionPath::Cache,
                        );
                        return Enforcement::Grant;
                    }
                }
                // Redirect or decision query: clone out what the slow path
                // needs and release the state lock before dispatching.
                let delegation = delegation.clone();
                let resource = resource.clone();
                drop(state);
                self.enforce_delegated(
                    net,
                    &delegation,
                    &resource,
                    requester,
                    resource_id,
                    action,
                    bearer,
                    return_url,
                    now,
                )
            }
            None => {
                let resource = resource.clone();
                drop(state);
                self.enforce_legacy(subject, requester, &resource, action, now)
            }
        }
    }

    /// Enforces a whole round of access attempts, coalescing cache-miss
    /// decision queries into `/protection/v1/decisions` batch requests.
    ///
    /// With batching disabled ([`HostCore::set_decision_batching`]`(None)`,
    /// the default) this is exactly [`HostCore::enforce`] applied in
    /// order — same round trips, same responses, same log entries. With
    /// batching on, misses are grouped by (AM, host token, owner); every
    /// full `max_batch`-sized chunk flushes immediately, and the final
    /// partial chunks wait out `max_delay_ms` — charged to the shared
    /// [`SimClock`] **once** per round, since partial batches against
    /// different AMs wait concurrently — before flushing. N misses
    /// against one AM thus cost ⌈N/B⌉ round trips (experiment E7b).
    pub fn enforce_batch(
        &self,
        net: &dyn Transport,
        attempts: &[AccessAttempt],
    ) -> Vec<Enforcement> {
        let batching = *self.batching.read();
        let Some(config) = batching else {
            return attempts
                .iter()
                .map(|a| {
                    self.enforce(
                        net,
                        &a.requester,
                        a.subject.as_deref(),
                        &a.resource_id,
                        &a.action,
                        a.bearer.as_deref(),
                        &a.return_url,
                    )
                })
                .collect();
        };

        let now = self.clock.now_ms();
        let mut results: Vec<Option<Enforcement>> = (0..attempts.len()).map(|_| None).collect();
        let mut is_pending = vec![false; attempts.len()];
        let mut pending: Vec<PendingQuery> = Vec::new();
        {
            // One state read to sieve the round: only cache-missing,
            // token-bearing, delegated accesses need an AM round trip.
            let state = self.state.read();
            for (index, attempt) in attempts.iter().enumerate() {
                let Some(resource) = state.resources.get(&attempt.resource_id) else {
                    continue;
                };
                if attempt.subject.as_deref() == Some(resource.owner.as_str()) {
                    continue;
                }
                let Some(delegation) = state
                    .resource_delegations
                    .get(&attempt.resource_id)
                    .or_else(|| state.user_delegations.get(&resource.owner))
                else {
                    continue;
                };
                let Some(token) = attempt.bearer.as_deref() else {
                    continue;
                };
                // Tier-1 first, mirroring `enforce`: a sieve hit settles
                // the attempt here and never joins a batch.
                if self.sieve_probe(
                    net,
                    &attempt.requester,
                    &attempt.resource_id,
                    &attempt.action,
                    token,
                    now,
                ) {
                    results[index] = Some(Enforcement::Grant);
                    continue;
                }
                let cache_key = (
                    attempt.requester.clone(),
                    attempt.resource_id.clone(),
                    attempt.action.clone(),
                );
                let digest = token_digest(token);
                if self.cache.read().lookup(&cache_key, &digest, now) {
                    continue;
                }
                is_pending[index] = true;
                pending.push(PendingQuery {
                    index,
                    delegation: delegation.clone(),
                    owner: resource.owner.clone(),
                    token: token.to_owned(),
                    cache_key,
                    token_digest: digest,
                });
            }
        }

        // Everything the scan skipped (404s, owner sessions, legacy
        // ACLs, redirects, cache hits) settles through the single path —
        // none of it involves an AM round trip. Sieve hits already
        // settled above.
        for (index, attempt) in attempts.iter().enumerate() {
            if results[index].is_none() && !is_pending[index] {
                results[index] = Some(self.enforce(
                    net,
                    &attempt.requester,
                    attempt.subject.as_deref(),
                    &attempt.resource_id,
                    &attempt.action,
                    attempt.bearer.as_deref(),
                    &attempt.return_url,
                ));
            }
        }

        // Group per (AM, host token, owner): one batch request carries one
        // host token, and keying on owner keeps the per-owner fallback
        // lookup unambiguous. BTreeMap iteration keeps rounds replayable.
        let resilience = self.resilience.read().clone();
        let mut groups: BTreeMap<(String, String, String), Vec<PendingQuery>> = BTreeMap::new();
        for query in pending {
            let key = (
                query.delegation.am.clone(),
                query.delegation.host_token.clone(),
                query.owner.clone(),
            );
            groups.entry(key).or_default().push(query);
        }
        let max_batch = config.max_batch.clamp(1, protocol::MAX_BATCH);
        let mut full_chunks: Vec<Vec<PendingQuery>> = Vec::new();
        let mut partial_chunks: Vec<Vec<PendingQuery>> = Vec::new();
        for (_, queries) in groups {
            // flush-on-size: full chunks go out first …
            let mut queries = queries.into_iter();
            loop {
                let chunk: Vec<PendingQuery> = queries.by_ref().take(max_batch).collect();
                if chunk.is_empty() {
                    break;
                }
                if chunk.len() == max_batch {
                    full_chunks.push(chunk);
                } else {
                    partial_chunks.push(chunk);
                    break;
                }
            }
        }
        self.flush_batches(net, &resilience, full_chunks, &mut results);
        if !partial_chunks.is_empty() {
            // … and flush-on-deadline: the stragglers that would fill the
            // partial chunks never arrive, so they wait out the deadline
            // (all of them concurrently: one clock charge) and flush.
            self.clock.advance_ms(config.max_delay_ms);
            self.flush_batches(net, &resilience, partial_chunks, &mut results);
        }

        results
            .into_iter()
            .map(|r| r.expect("every attempt in the round settles exactly once"))
            .collect()
    }

    /// Flushes a round's batch chunks. With plain resilience (no breaker,
    /// no retry policy) the chunks are independent wire requests, so they
    /// go out through [`Transport::dispatch_pipelined`]: over HTTP each
    /// AM's chunks share one buffered write on its persistent connection,
    /// over [`SimNet`](ucam_webenv::SimNet) the default implementation
    /// dispatches them sequentially — identical responses, identical
    /// accounting, on either backend. A breaker or retry policy makes
    /// each dispatch outcome feed the next admission decision, so those
    /// configurations keep the serialized per-chunk path.
    fn flush_batches(
        &self,
        net: &dyn Transport,
        resilience: &ResilienceConfig,
        chunks: Vec<Vec<PendingQuery>>,
        results: &mut [Option<Enforcement>],
    ) {
        if chunks.len() <= 1 || resilience.breaker.is_some() || resilience.am_retry.is_some() {
            for chunk in chunks {
                self.flush_batch(net, resilience, chunk, results);
            }
            return;
        }
        let mut reqs = Vec::with_capacity(chunks.len());
        for chunk in &chunks {
            let am = chunk[0].delegation.am.as_str();
            let items = batch_items(chunk);
            self.stats.batch_flushes.fetch_add(1, Ordering::Relaxed);
            self.stats.am_queries.fetch_add(1, Ordering::Relaxed);
            net.trace().note_with(&self.authority, || {
                format!("batch flush: {} decision queries -> {am}", items.len())
            });
            reqs.push(
                Request::new(
                    Method::Post,
                    &format!("https://{am}{}", protocol::BATCH_DECISIONS_PATH),
                )
                .with_param("host_token", &chunk[0].delegation.host_token)
                .with_body(protocol::encode_batch_request(&items).as_str()),
            );
        }
        let resps = net.dispatch_pipelined(&self.authority, reqs);
        for (chunk, mut resp) in chunks.into_iter().zip(resps) {
            let mut answered_by = chunk[0].delegation.am.clone();
            if resp.transport_error().is_some() {
                if let Some(fallback) =
                    resilience.fallback_for(&chunk[0].delegation.am, &chunk[0].owner)
                {
                    self.stats.fallback_queries.fetch_add(1, Ordering::Relaxed);
                    let am = chunk[0].delegation.am.clone();
                    net.trace().note_with(&self.authority, || {
                        format!("failing over batch query: {am} -> {}", fallback.am)
                    });
                    let body = protocol::encode_batch_request(&batch_items(&chunk));
                    let fallback_am = fallback.am.clone();
                    let fallback_token = fallback.host_token.clone();
                    resp = self.dispatch_protected(net, resilience, &fallback_am, &|| {
                        Request::new(
                            Method::Post,
                            &format!("https://{fallback_am}{}", protocol::BATCH_DECISIONS_PATH),
                        )
                        .with_param("host_token", &fallback_token)
                        .with_body(body.as_str())
                    });
                    answered_by = fallback_am;
                }
            }
            self.settle_batch_chunk(net, &resp, chunk, &answered_by, results);
        }
    }

    /// Dispatches one batch chunk — all members share an (AM, host token,
    /// owner) — and settles every member through the shared decision path.
    fn flush_batch(
        &self,
        net: &dyn Transport,
        resilience: &ResilienceConfig,
        chunk: Vec<PendingQuery>,
        results: &mut [Option<Enforcement>],
    ) {
        let am = chunk[0].delegation.am.clone();
        let host_token = chunk[0].delegation.host_token.clone();
        let owner = chunk[0].owner.clone();
        let items = batch_items(&chunk);
        self.stats.batch_flushes.fetch_add(1, Ordering::Relaxed);
        net.trace().note_with(&self.authority, || {
            format!("batch flush: {} decision queries -> {am}", items.len())
        });
        let body = protocol::encode_batch_request(&items);
        let mut resp = self.dispatch_protected(net, resilience, &am, &|| {
            Request::new(
                Method::Post,
                &format!("https://{am}{}", protocol::BATCH_DECISIONS_PATH),
            )
            .with_param("host_token", &host_token)
            .with_body(body.as_str())
        });
        let mut answered_by = am.clone();
        if resp.transport_error().is_some() {
            if let Some(fallback) = resilience.fallback_for(&am, &owner) {
                self.stats.fallback_queries.fetch_add(1, Ordering::Relaxed);
                net.trace().note_with(&self.authority, || {
                    format!("failing over batch query: {am} -> {}", fallback.am)
                });
                let fallback_am = fallback.am.clone();
                let fallback_token = fallback.host_token.clone();
                resp = self.dispatch_protected(net, resilience, &fallback_am, &|| {
                    Request::new(
                        Method::Post,
                        &format!("https://{fallback_am}{}", protocol::BATCH_DECISIONS_PATH),
                    )
                    .with_param("host_token", &fallback_token)
                    .with_body(body.as_str())
                });
                answered_by = fallback_am;
            }
        }
        self.settle_batch_chunk(net, &resp, chunk, &answered_by, results);
    }

    /// Settles every member of one answered batch chunk through the
    /// shared decision path — common tail of the serialized and
    /// pipelined flush paths.
    fn settle_batch_chunk(
        &self,
        net: &dyn Transport,
        resp: &Response,
        chunk: Vec<PendingQuery>,
        decided_by: &str,
        results: &mut [Option<Enforcement>],
    ) {
        let now = self.clock.now_ms();
        let outcomes = classify_batch(resp, chunk.len());
        for (query, outcome) in chunk.into_iter().zip(outcomes) {
            let PendingQuery {
                index,
                owner,
                token,
                cache_key,
                token_digest,
                ..
            } = query;
            let requester = cache_key.0.clone();
            let resource_id = cache_key.1.clone();
            let action = cache_key.2.clone();
            let fingerprint =
                sieve_fingerprint_memo(&token, &resource_id, action_label(&action), &requester);
            results[index] = Some(self.settle_decision(
                net,
                outcome,
                &owner,
                &requester,
                &resource_id,
                &action,
                cache_key,
                token_digest,
                fingerprint,
                // Batch queries never carry an `if_epoch` precondition,
                // so a stray *unchanged* item fails closed.
                None,
                decided_by,
                now,
            ));
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn enforce_delegated(
        &self,
        net: &dyn Transport,
        delegation: &DelegationConfig,
        resource: &Resource,
        requester: &str,
        resource_id: &str,
        action: &Action,
        bearer: Option<&str>,
        return_url: &Url,
        now: u64,
    ) -> Enforcement {
        let Some(token) = bearer else {
            // Fig. 5: "a Host redirects a Requester to the AM along with
            // information about the Host and the resource".
            self.record(
                now,
                requester,
                resource_id,
                action,
                false,
                DecisionPath::RedirectedToAm,
            );
            self.stats.redirects.fetch_add(1, Ordering::Relaxed);
            let authorize = Url::new(&delegation.am, "/authorize")
                .with_query("host", &self.authority)
                .with_query("owner", &resource.owner)
                .with_query("resource", resource_id)
                .with_query("action", &action.to_string())
                .with_query("requester", requester)
                .with_query("return", &return_url.to_string());
            return Enforcement::Block(
                Response::redirect(&authorize)
                    .with_header("www-authenticate", "Bearer realm=\"ucam\""),
            );
        };

        // §V.B.6: consult the cached decision first. The hit is only
        // valid for the same bearer token (by digest), within its TTL,
        // and while the owner's policy epoch is unchanged.
        let cache_key = (requester.to_owned(), resource_id.to_owned(), action.clone());
        let token_digest = token_digest(token);
        if self.cache.read().lookup(&cache_key, &token_digest, now) {
            self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            // Lazy label: free (one atomic load) while tracing is off.
            net.trace().note_with(&self.authority, || {
                format!("decision cache hit: {requester} {action} {resource_id}")
            });
            self.record(
                now,
                requester,
                resource_id,
                action,
                true,
                DecisionPath::Cache,
            );
            return Enforcement::Grant;
        }

        // DESIGN.md §16: with conditional revalidation on, a TTL-expired
        // but epoch-fresh entry for this same token turns the full query
        // into an `if_epoch` precondition the AM can collapse to a tiny
        // *unchanged* reply.
        let if_epoch = if self.conditional_revalidation.load(Ordering::Relaxed) {
            self.cache
                .read()
                .revalidation_epoch(&cache_key, &token_digest, now)
        } else {
            None
        };
        if if_epoch.is_some() {
            self.stats.revalidations.fetch_add(1, Ordering::Relaxed);
        }

        // Fig. 6: decision query to the AM — hardened per DESIGN.md §10.
        // The primary is tried under the breaker and retry policy; a
        // transport failure falls over to the configured fallback AM. Only
        // transport failures can reach degraded mode below: an AM that
        // *answers* (permit, deny, 401, even an application 5xx) is always
        // taken at its word.
        let resilience = self.resilience.read().clone();
        let mut answered_by = delegation.am.clone();
        let mut resp = self.query_decision(
            net,
            &resilience,
            delegation,
            token,
            resource_id,
            action,
            requester,
            if_epoch,
        );
        if resp.transport_error().is_some() {
            if let Some(fallback) = resilience.fallback_for(&delegation.am, &resource.owner) {
                self.stats.fallback_queries.fetch_add(1, Ordering::Relaxed);
                net.trace().note_with(&self.authority, || {
                    format!(
                        "failing over decision query: {} -> {}",
                        delegation.am, fallback.am
                    )
                });
                // Never conditional against the fallback: the cached
                // entry's epoch lives in the *primary* AM's epoch space,
                // and a numerically equal epoch at the mirror would
                // falsely re-arm it.
                answered_by = fallback.am.clone();
                resp = self.query_decision(
                    net,
                    &resilience,
                    fallback,
                    token,
                    resource_id,
                    action,
                    requester,
                    None,
                );
            }
        }

        let fingerprint =
            sieve_fingerprint_memo(token, resource_id, action_label(action), requester);
        self.settle_decision(
            net,
            classify_decision(&resp),
            &resource.owner,
            requester,
            resource_id,
            action,
            cache_key,
            token_digest,
            fingerprint,
            if_epoch,
            &answered_by,
            now,
        )
    }

    /// Concludes one decision query (or batch item) from its normalized
    /// [`DecisionOutcome`]: caches and grants permits, fails everything
    /// else closed, and gives transport failures — and only those — the
    /// degraded-mode chance at an expired-but-graceable permit.
    /// `if_epoch` is the precondition the query carried, if any — an
    /// *unchanged* reply re-arms the cached permit at exactly that epoch
    /// (the reply does not echo it; the AM only says "unchanged" when
    /// the epochs are equal).
    #[allow(clippy::too_many_arguments)]
    fn settle_decision(
        &self,
        net: &dyn Transport,
        outcome: DecisionOutcome,
        owner: &str,
        requester: &str,
        resource_id: &str,
        action: &Action,
        cache_key: CacheKey,
        token_digest: [u8; 32],
        fingerprint: protocol::SieveFingerprint,
        if_epoch: Option<u64>,
        decided_by: &str,
        now: u64,
    ) -> Enforcement {
        match outcome {
            DecisionOutcome::Unchanged(body) => {
                // DESIGN.md §16: the AM confirmed the expired permit is
                // still good at the epoch we presented. Re-arm it in
                // place; if the entry is gone or moved (evicted, token
                // churn, epoch advance raced us), or the query never
                // carried a precondition for the reply to confirm, the
                // unchanged reply vouches for nothing we still hold —
                // fail closed, per the wire contract.
                let rearmed = match if_epoch {
                    Some(epoch) => self.cache.write().rearm(
                        &cache_key,
                        &token_digest,
                        epoch,
                        now + body.cacheable_ms,
                    ),
                    None => false,
                };
                if rearmed {
                    self.stats
                        .revalidations_unchanged
                        .fetch_add(1, Ordering::Relaxed);
                    net.trace().note_with(&self.authority, || {
                        format!(
                            "revalidated unchanged: {requester} {action} {resource_id} \
                             ({} ms)",
                            body.cacheable_ms
                        )
                    });
                    self.record(
                        now,
                        requester,
                        resource_id,
                        action,
                        true,
                        DecisionPath::AmQuery,
                    );
                    return Enforcement::Grant;
                }
                self.record(
                    now,
                    requester,
                    resource_id,
                    action,
                    false,
                    DecisionPath::Refused,
                );
                Enforcement::Block(
                    Response::with_status(Status::Unavailable).with_body(
                        "unchanged reply without a matching cached permit; access denied",
                    ),
                )
            }
            DecisionOutcome::Body(body) if body.is_permit() => {
                let cacheable_ms = body.cacheable_ms.unwrap_or(0);
                if cacheable_ms > 0 {
                    // One write lock for the whole insert: the enabled
                    // flag is re-checked inside, so a concurrent
                    // `set_cache_enabled(false)` cannot be overtaken.
                    let mut cache = self.cache.write();
                    let epoch = body.policy_epoch.unwrap_or(0);
                    if let Some(epoch) = body.policy_epoch {
                        cache.note_epoch(owner, epoch);
                    }
                    cache.insert(
                        cache_key,
                        CachedDecision {
                            expires_at_ms: now + cacheable_ms,
                            token_digest,
                            owner: owner.to_owned(),
                            am: decided_by.to_owned(),
                            epoch,
                            fingerprint,
                            referenced: AtomicBool::new(false),
                        },
                        now,
                    );
                    net.trace().note_with(&self.authority, || {
                        format!(
                            "cached permit: {requester} {action} {resource_id} \
                             ({cacheable_ms} ms)"
                        )
                    });
                }
                self.record(
                    now,
                    requester,
                    resource_id,
                    action,
                    true,
                    DecisionPath::AmQuery,
                );
                Enforcement::Grant
            }
            DecisionOutcome::Body(body) if body.is_error() => {
                // A per-item protocol failure inside a batch — same
                // contract as a single-query 401: re-authorize.
                self.record(
                    now,
                    requester,
                    resource_id,
                    action,
                    false,
                    DecisionPath::Refused,
                );
                Enforcement::Block(
                    Response::with_status(Status::Unauthorized)
                        .with_body("authorization token rejected; re-authorize"),
                )
            }
            DecisionOutcome::Body(_) => {
                self.record(
                    now,
                    requester,
                    resource_id,
                    action,
                    false,
                    DecisionPath::AmQuery,
                );
                Enforcement::Block(Response::forbidden(
                    "access denied by authorization manager",
                ))
            }
            DecisionOutcome::Malformed => {
                // A 200 with an unparsable body is a protocol error,
                // not a permit. Fail closed.
                self.record(
                    now,
                    requester,
                    resource_id,
                    action,
                    false,
                    DecisionPath::Refused,
                );
                Enforcement::Block(
                    Response::with_status(Status::Unavailable)
                        .with_body("malformed decision response; access denied"),
                )
            }
            DecisionOutcome::TokenRejected => {
                // Bad/expired token: requester must obtain a fresh one.
                self.record(
                    now,
                    requester,
                    resource_id,
                    action,
                    false,
                    DecisionPath::Refused,
                );
                Enforcement::Block(
                    Response::with_status(Status::Unauthorized)
                        .with_body("authorization token rejected; re-authorize"),
                )
            }
            DecisionOutcome::Transport => {
                // Degraded mode (opt-in): a transport-level failure — and
                // only that — may serve an expired cached permit within
                // its grace window.
                let stale_now = self.clock.now_ms();
                if let Some(staleness) =
                    self.cache
                        .read()
                        .lookup_stale(&cache_key, &token_digest, stale_now)
                {
                    self.stats.stale_served.fetch_add(1, Ordering::Relaxed);
                    self.max_served_staleness_ms
                        .fetch_max(staleness, Ordering::Relaxed);
                    net.trace().note_with(&self.authority, || {
                        format!(
                            "degraded: stale permit served {staleness} ms past TTL: \
                             {requester} {action} {resource_id}"
                        )
                    });
                    self.record(
                        stale_now,
                        requester,
                        resource_id,
                        action,
                        true,
                        DecisionPath::StaleGrace,
                    );
                    return Enforcement::Grant;
                }
                self.fail_closed_unreachable(now, requester, resource_id, action)
            }
            DecisionOutcome::Unavailable => {
                // Application 5xxs and everything else never reach
                // degraded mode: fail closed.
                self.fail_closed_unreachable(now, requester, resource_id, action)
            }
        }
    }

    fn fail_closed_unreachable(
        &self,
        now: u64,
        requester: &str,
        resource_id: &str,
        action: &Action,
    ) -> Enforcement {
        self.record(
            now,
            requester,
            resource_id,
            action,
            false,
            DecisionPath::Refused,
        );
        Enforcement::Block(
            Response::with_status(Status::Unavailable)
                .with_body("authorization manager unreachable; access denied"),
        )
    }

    /// Sends one decision query to `delegation`'s AM under the breaker
    /// and retry policy. Breaker fast-fails synthesize an
    /// [`TransportError::Unreachable`] response without dispatching.
    /// With `if_epoch` set, the query goes to the v2 conditional route
    /// carrying the precondition; without it, the v1 wire request is
    /// byte-identical to what it always was.
    #[allow(clippy::too_many_arguments)]
    fn query_decision(
        &self,
        net: &dyn Transport,
        resilience: &ResilienceConfig,
        delegation: &DelegationConfig,
        token: &str,
        resource_id: &str,
        action: &Action,
        requester: &str,
        if_epoch: Option<u64>,
    ) -> Response {
        let am = delegation.am.as_str();
        let path = if if_epoch.is_some() {
            protocol::DECISION_V2_PATH
        } else {
            protocol::DECISION_PATH
        };
        self.dispatch_protected(net, resilience, am, &|| {
            let mut req = Request::new(Method::Post, &format!("https://{am}{path}"))
                .with_param("host_token", &delegation.host_token)
                .with_param("token", token)
                .with_param("resource", resource_id)
                .with_param("action", &action.to_string())
                .with_param("requester", requester);
            if let Some(epoch) = if_epoch {
                req = req.with_param("if_epoch", &epoch.to_string());
            }
            req
        })
    }

    /// Dispatches one AM request under the breaker and retry policy —
    /// shared by the single-query and batch paths. Breaker fast-fails
    /// synthesize a [`TransportError::Unreachable`] response without
    /// dispatching.
    fn dispatch_protected(
        &self,
        net: &dyn Transport,
        resilience: &ResilienceConfig,
        am: &str,
        build: &dyn Fn() -> Request,
    ) -> Response {
        if resilience.breaker.is_some() && !self.breaker_admits(am) {
            self.stats
                .breaker_fast_fails
                .fetch_add(1, Ordering::Relaxed);
            net.trace().note_with(&self.authority, || {
                format!("circuit open: fast-failing decision query to {am}")
            });
            return Response::with_status(Status::Unavailable)
                .with_body(format!("circuit open for {am}"))
                .with_transport_error(TransportError::Unreachable);
        }
        self.stats.am_queries.fetch_add(1, Ordering::Relaxed);
        let resp = match &resilience.am_retry {
            Some(policy) => {
                let (resp, report) =
                    policy.run(net.clock(), |_| net.dispatch(&self.authority, build()));
                if report.attempts > 1 {
                    self.stats
                        .am_retries
                        .fetch_add(u64::from(report.attempts - 1), Ordering::Relaxed);
                }
                resp
            }
            None => net.dispatch(&self.authority, build()),
        };
        if let Some(cfg) = resilience.breaker {
            self.breaker_observe(am, resp.transport_error().is_some(), cfg);
        }
        resp
    }

    /// Whether a decision query to `am` may go out: the circuit is
    /// closed, or its cooldown has elapsed (the query then acts as the
    /// half-open probe — its outcome closes or re-opens the circuit).
    fn breaker_admits(&self, am: &str) -> bool {
        let now = self.clock.now_ms();
        let mut states = self.breaker_states.lock();
        states.entry(am.to_owned()).or_default().open_until_ms <= now
    }

    /// Feeds one query outcome into `am`'s circuit: a transport failure
    /// counts toward (or extends) the open state, an application answer
    /// closes the circuit outright.
    fn breaker_observe(&self, am: &str, transport_failure: bool, cfg: BreakerConfig) {
        let mut states = self.breaker_states.lock();
        let state = states.entry(am.to_owned()).or_default();
        if transport_failure {
            state.failures = state.failures.saturating_add(1);
            if state.failures >= cfg.failure_threshold {
                state.open_until_ms = self.clock.now_ms() + cfg.cooldown_ms;
            }
        } else {
            state.failures = 0;
            state.open_until_ms = 0;
        }
    }

    fn enforce_legacy(
        &self,
        subject: Option<&str>,
        requester: &str,
        resource: &Resource,
        action: &Action,
        now: u64,
    ) -> Enforcement {
        self.stats.legacy_checks.fetch_add(1, Ordering::Relaxed);
        let acl = self.legacy_acl(&resource.id).unwrap_or_default();
        let mut access =
            AccessRequest::new(&self.authority, &resource.id, action.clone()).via_app(requester);
        if let Some(subject) = subject {
            access = access.by_user(subject);
        }
        let ctx = EvalContext::new(&access, now);
        let granted = acl.evaluate(&ctx) == Outcome::Permit;
        self.record(
            now,
            requester,
            &resource.id,
            action,
            granted,
            DecisionPath::LegacyAcl,
        );
        if granted {
            Enforcement::Grant
        } else {
            Enforcement::Block(Response::forbidden("access denied by host access control"))
        }
    }

    fn record(
        &self,
        at_ms: u64,
        requester: &str,
        resource_id: &str,
        action: &Action,
        granted: bool,
        via: DecisionPath,
    ) {
        self.log.lock().push(HostLogEntry {
            at_ms,
            requester: requester.to_owned(),
            resource_id: resource_id.to_owned(),
            action: action.clone(),
            granted,
            via,
        });
    }

    /// Builds the global reference for a resource on this host.
    #[must_use]
    pub fn resource_ref(&self, resource_id: &str) -> ResourceRef {
        ResourceRef::new(&self.authority, resource_id)
    }
}

/// How one decision query (or batch item) concluded, normalized across
/// the single and batched wire paths so both settle through
/// [`HostCore::settle_decision`].
enum DecisionOutcome {
    /// A parsed 200 decision body (permit, deny, or per-item `error`).
    Body(DecisionBody),
    /// A parsed 200 *unchanged* reply to a conditional v2 query — the
    /// permit the Host already holds is still good (DESIGN.md §16).
    Unchanged(protocol::UnchangedBody),
    /// A 200 whose body did not parse — a protocol error, failed closed.
    Malformed,
    /// 401: the AM rejected the authorization token.
    TokenRejected,
    /// The query never got an application answer (timeout/unreachable);
    /// the only outcome eligible for degraded-mode stale service.
    Transport,
    /// Any other application failure (5xx and the rest): the AM answered,
    /// so it is taken at its word and degraded mode is skipped.
    Unavailable,
}

/// Normalizes a single-query `/protection/v1/decision` response. The body
/// is parsed as JSON rather than by substring search: a deny whose reason
/// happens to *contain* the text `"permit"` must stay a deny.
fn classify_decision(resp: &Response) -> DecisionOutcome {
    match resp.status {
        Status::Ok => {
            // The two reply kinds have disjoint required fields
            // (`unchanged: true` vs a string `decision`), so trying the
            // unchanged form first cannot misread a v1 body.
            if let Ok(body) = protocol::UnchangedBody::from_json(&resp.body) {
                return DecisionOutcome::Unchanged(body);
            }
            match DecisionBody::from_json(&resp.body) {
                Ok(body) => DecisionOutcome::Body(body),
                Err(_) => DecisionOutcome::Malformed,
            }
        }
        Status::Unauthorized => DecisionOutcome::TokenRejected,
        _ if resp.transport_error().is_some() => DecisionOutcome::Transport,
        _ => DecisionOutcome::Unavailable,
    }
}

/// Normalizes a `/protection/v1/decisions` batch response into one
/// outcome per batch member. A response-level failure (transport, 401,
/// 5xx, short/unparsable array) applies to every member: a batch is one
/// wire exchange, so its members share its fate.
fn classify_batch(resp: &Response, expected: usize) -> Vec<DecisionOutcome> {
    if matches!(resp.status, Status::Ok) {
        if let Ok(bodies) = protocol::parse_batch_response(&resp.body) {
            if bodies.len() == expected {
                return bodies.into_iter().map(DecisionOutcome::Body).collect();
            }
        }
        return (0..expected).map(|_| DecisionOutcome::Malformed).collect();
    }
    (0..expected)
        .map(|_| match resp.status {
            Status::Unauthorized => DecisionOutcome::TokenRejected,
            _ if resp.transport_error().is_some() => DecisionOutcome::Transport,
            _ => DecisionOutcome::Unavailable,
        })
        .collect()
}

/// A cache-missing, token-bearing delegated access waiting on its AM
/// round trip inside a batched enforcement round.
struct PendingQuery {
    /// Position in the round's `attempts` slice.
    index: usize,
    delegation: DelegationConfig,
    owner: String,
    token: String,
    cache_key: CacheKey,
    token_digest: [u8; 32],
}

/// Encodes one batch chunk's members as `/protection/v1/decisions`
/// request items.
fn batch_items(chunk: &[PendingQuery]) -> Vec<BatchItem> {
    chunk
        .iter()
        .map(|q| BatchItem {
            token: q.token.clone(),
            resource: q.cache_key.1.clone(),
            action: q.cache_key.2.to_string(),
            requester: q.cache_key.0.clone(),
        })
        .collect()
}

/// Extracts `cacheable_ms` from a decision response body; 0 unless the
/// body is a well-formed permit carrying one. Delegates to the shared
/// wire type; this wrapper keeps the historical parsing contract pinned
/// down by tests.
#[cfg(test)]
fn parse_cacheable_ms(body: &str) -> u64 {
    DecisionBody::parse_cacheable_ms(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use ucam_policy::Subject;
    use ucam_webenv::protocol::SieveBody;
    use ucam_webenv::SimNet;
    use ucam_webenv::WebApp;

    fn host() -> HostCore {
        let host = HostCore::new("h.example", SimClock::new());
        host.put_resource("r1", "bob", "file", b"data".to_vec())
            .unwrap();
        host
    }

    /// A scripted AM: answers `/decision` with the canned body registered
    /// for the presented authorization token, 401 for anything else.
    struct FakeAm {
        authority: String,
        grants: Mutex<HashMap<String, String>>,
    }

    impl FakeAm {
        fn new() -> Arc<Self> {
            FakeAm::new_at("am.example")
        }

        fn new_at(authority: &str) -> Arc<Self> {
            Arc::new(FakeAm {
                authority: authority.to_owned(),
                grants: Mutex::new(HashMap::new()),
            })
        }

        fn grant(&self, token: &str, body: &str) {
            self.grants.lock().insert(token.to_owned(), body.to_owned());
        }

        fn revoke(&self, token: &str) {
            self.grants.lock().remove(token);
        }
    }

    impl WebApp for FakeAm {
        fn authority(&self) -> &str {
            &self.authority
        }

        fn handle(&self, _net: &dyn Transport, req: &Request) -> Response {
            if req.url.path() == protocol::BATCH_DECISIONS_PATH {
                let Ok(items) = protocol::parse_batch_request(&req.body) else {
                    return Response::bad_request("bad batch");
                };
                let grants = self.grants.lock();
                let bodies: Vec<DecisionBody> = items
                    .iter()
                    .map(|item| match grants.get(&item.token) {
                        Some(body) => DecisionBody::from_json(body).expect("canned body"),
                        None => DecisionBody::error("bad token"),
                    })
                    .collect();
                return Response::ok().with_body(protocol::encode_batch_response(&bodies));
            }
            let token = req.param("token").unwrap_or("");
            match self.grants.lock().get(token) {
                Some(body) => Response::ok().with_body(body.clone()),
                None => Response::with_status(Status::Unauthorized).with_body("bad token"),
            }
        }
    }

    fn permit_body(cacheable_ms: u64, epoch: u64) -> String {
        format!(
            "{{\"decision\":\"permit\",\"cacheable_ms\":{cacheable_ms},\"policy_epoch\":{epoch}}}"
        )
    }

    /// A host on `net` with `r1` owned by bob, delegated to the fake AM.
    fn delegated_host(net: &dyn Transport) -> HostCore {
        let h = HostCore::new("h.example", net.clock().clone());
        h.put_resource("r1", "bob", "file", b"data".to_vec())
            .unwrap();
        h.set_user_delegation(
            "bob",
            DelegationConfig {
                am: "am.example".into(),
                host_token: "ht".into(),
                delegation_id: "d-1".into(),
            },
        );
        h
    }

    #[test]
    fn cached_permit_is_bound_to_bearer_token() {
        let net = SimNet::new();
        let am = FakeAm::new();
        am.grant("good", &permit_body(60_000, 1));
        net.register(am.clone());
        let h = delegated_host(&net);
        let url = Url::new("h.example", "/r1");

        // Fresh query populates the cache; the repeat is served from it.
        assert!(h
            .enforce(&net, "req", None, "r1", &Action::Read, Some("good"), &url)
            .is_grant());
        assert!(h
            .enforce(&net, "req", None, "r1", &Action::Read, Some("good"), &url)
            .is_grant());
        assert_eq!(h.stats().am_queries, 1);
        assert_eq!(h.stats().cache_hits, 1);

        // A different (garbage) bearer must not ride the warm cache: it
        // goes to the AM, which rejects it.
        match h.enforce(&net, "req", None, "r1", &Action::Read, Some("junk"), &url) {
            Enforcement::Block(resp) => assert_eq!(resp.status, Status::Unauthorized),
            Enforcement::Grant => panic!("garbage bearer must not be served from the cache"),
        }
        assert_eq!(h.stats().am_queries, 2);
        assert_eq!(h.stats().cache_hits, 1);
    }

    #[test]
    fn deny_body_containing_permit_text_stays_denied() {
        let net = SimNet::new();
        let am = FakeAm::new();
        // Adversarial body: a deny whose reason contains the magic string.
        am.grant(
            "tricky",
            "{\"decision\":\"deny\",\"reason\":\"say \\\"permit\\\" and \\\"cacheable_ms\\\":60000\"}",
        );
        net.register(am.clone());
        let h = delegated_host(&net);
        let url = Url::new("h.example", "/r1");
        match h.enforce(&net, "req", None, "r1", &Action::Read, Some("tricky"), &url) {
            Enforcement::Block(resp) => assert_eq!(resp.status, Status::Forbidden),
            Enforcement::Grant => panic!("deny body must not be mistaken for a permit"),
        }
        assert_eq!(h.decision_cache_len(), 0);
    }

    #[test]
    fn malformed_decision_body_fails_closed() {
        let net = SimNet::new();
        let am = FakeAm::new();
        am.grant("odd", "certainly! \"permit\" granted");
        net.register(am.clone());
        let h = delegated_host(&net);
        let url = Url::new("h.example", "/r1");
        match h.enforce(&net, "req", None, "r1", &Action::Read, Some("odd"), &url) {
            Enforcement::Block(resp) => assert_eq!(resp.status, Status::Unavailable),
            Enforcement::Grant => panic!("malformed body must fail closed"),
        }
    }

    #[test]
    fn cache_stays_bounded_and_sweeps_expired_entries() {
        let net = SimNet::new();
        let am = FakeAm::new();
        am.grant("good", &permit_body(60_000, 1));
        net.register(am.clone());
        let h = delegated_host(&net);
        h.set_decision_cache_capacity(4);
        for i in 0..10 {
            let id = format!("x{i}");
            h.put_resource(&id, "bob", "file", vec![]).unwrap();
            let url = Url::new("h.example", &format!("/{id}"));
            assert!(h
                .enforce(&net, "req", None, &id, &Action::Read, Some("good"), &url)
                .is_grant());
            assert!(h.decision_cache_len() <= 4, "cache exceeded its bound");
        }
        assert_eq!(h.decision_cache_len(), 4);

        // Everything expires; the next insert sweeps the corpses out.
        net.clock().advance_ms(120_000);
        let url = Url::new("h.example", "/r1");
        assert!(h
            .enforce(&net, "req", None, "r1", &Action::Read, Some("good"), &url)
            .is_grant());
        assert_eq!(h.decision_cache_len(), 1);
    }

    #[test]
    fn policy_epoch_advance_invalidates_cached_permit() {
        let net = SimNet::new();
        let am = FakeAm::new();
        am.grant("good", &permit_body(60_000, 5));
        net.register(am.clone());
        let h = delegated_host(&net);
        let url = Url::new("h.example", "/r1");
        assert!(h
            .enforce(&net, "req", None, "r1", &Action::Read, Some("good"), &url)
            .is_grant());
        assert!(h
            .enforce(&net, "req", None, "r1", &Action::Read, Some("good"), &url)
            .is_grant());
        assert_eq!(h.stats().cache_hits, 1);

        // Bob edits his policies: the AM now denies, and the epoch push
        // reaches the host. The cached permit must die with the epoch.
        am.revoke("good");
        h.note_policy_epoch("bob", 6);
        match h.enforce(&net, "req", None, "r1", &Action::Read, Some("good"), &url) {
            Enforcement::Block(_) => {}
            Enforcement::Grant => panic!("stale permit served after epoch advance"),
        }
        assert_eq!(h.stats().cache_hits, 1);
        assert_eq!(h.stats().am_queries, 2);
    }

    #[test]
    fn resource_crud() {
        let h = host();
        assert_eq!(h.resource("r1").unwrap().data, b"data");
        assert!(matches!(
            h.put_resource("r1", "bob", "file", vec![]),
            Err(HostError::AlreadyExists(_))
        ));
        h.update_resource("r1", b"new".to_vec()).unwrap();
        assert_eq!(h.resource("r1").unwrap().data, b"new");
        assert_eq!(h.resources_of("bob").len(), 1);
        assert!(h.resources_of("alice").is_empty());
        h.delete_resource("r1").unwrap();
        assert!(matches!(
            h.delete_resource("r1"),
            Err(HostError::NotFound(_))
        ));
    }

    #[test]
    fn prefix_listing() {
        let h = HostCore::new("h.example", SimClock::new());
        h.put_resource("dir/a", "bob", "file", vec![]).unwrap();
        h.put_resource("dir/b", "bob", "file", vec![]).unwrap();
        h.put_resource("other/c", "bob", "file", vec![]).unwrap();
        assert_eq!(h.ids_with_prefix("dir/"), vec!["dir/a", "dir/b"]);
    }

    #[test]
    fn owner_always_granted() {
        let h = host();
        let net = SimNet::new();
        let url = Url::new("h.example", "/r1");
        let result = h.enforce(
            &net,
            "browser:bob",
            Some("bob"),
            "r1",
            &Action::Delete,
            None,
            &url,
        );
        assert!(result.is_grant());
    }

    #[test]
    fn missing_resource_blocks_404() {
        let h = host();
        let net = SimNet::new();
        let url = Url::new("h.example", "/ghost");
        match h.enforce(&net, "x", None, "ghost", &Action::Read, None, &url) {
            Enforcement::Block(resp) => assert_eq!(resp.status, Status::NotFound),
            Enforcement::Grant => panic!("must not grant a missing resource"),
        }
    }

    #[test]
    fn undelegated_falls_back_to_legacy_acl() {
        let h = host();
        let net = SimNet::new();
        let url = Url::new("h.example", "/r1");
        // Default-deny without an ACL.
        match h.enforce(&net, "req", Some("alice"), "r1", &Action::Read, None, &url) {
            Enforcement::Block(resp) => assert_eq!(resp.status, Status::Forbidden),
            Enforcement::Grant => panic!("expected deny"),
        }
        // Grant Alice read via the built-in mechanism.
        h.set_legacy_acl(
            "r1",
            AclMatrix::new().allow(Subject::User("alice".into()), Action::Read),
        );
        assert!(h
            .enforce(&net, "req", Some("alice"), "r1", &Action::Read, None, &url)
            .is_grant());
        assert_eq!(h.stats().legacy_checks, 2);
        assert_eq!(h.log().len(), 2);
    }

    #[test]
    fn delegated_without_token_redirects_to_am() {
        let h = host();
        h.set_user_delegation(
            "bob",
            DelegationConfig {
                am: "am.example".into(),
                host_token: "ht".into(),
                delegation_id: "d-1".into(),
            },
        );
        let net = SimNet::new();
        let url = Url::new("h.example", "/r1").with_query("x", "1");
        match h.enforce(&net, "requester:app", None, "r1", &Action::Read, None, &url) {
            Enforcement::Block(resp) => {
                assert_eq!(resp.status, Status::Found);
                let loc = resp.location().unwrap();
                assert_eq!(loc.authority(), "am.example");
                assert_eq!(loc.path(), "/authorize");
                assert_eq!(loc.query("owner"), Some("bob"));
                assert_eq!(loc.query("resource"), Some("r1"));
                assert_eq!(loc.query("requester"), Some("requester:app"));
                assert!(loc.query("return").unwrap().contains("h.example"));
            }
            Enforcement::Grant => panic!("expected redirect"),
        }
        assert_eq!(h.stats().redirects, 1);
    }

    #[test]
    fn resource_delegation_overrides_user_delegation() {
        let h = host();
        h.set_user_delegation(
            "bob",
            DelegationConfig {
                am: "am-a.example".into(),
                host_token: "t".into(),
                delegation_id: "d".into(),
            },
        );
        h.set_resource_delegation(
            "r1",
            DelegationConfig {
                am: "am-b.example".into(),
                host_token: "t2".into(),
                delegation_id: "d2".into(),
            },
        );
        assert_eq!(h.delegation_for("r1", "bob").unwrap().am, "am-b.example");
        assert_eq!(h.delegation_for("r2", "bob").unwrap().am, "am-a.example");
        h.clear_user_delegation("bob");
        assert_eq!(h.delegation_for("r2", "bob"), None);
    }

    #[test]
    fn am_unreachable_fails_closed() {
        let h = host();
        h.set_user_delegation(
            "bob",
            DelegationConfig {
                am: "ghost-am.example".into(),
                host_token: "ht".into(),
                delegation_id: "d-1".into(),
            },
        );
        let net = SimNet::new(); // no AM registered
        let url = Url::new("h.example", "/r1");
        match h.enforce(&net, "req", None, "r1", &Action::Read, Some("token"), &url) {
            Enforcement::Block(resp) => assert_eq!(resp.status, Status::Unavailable),
            Enforcement::Grant => panic!("must fail closed"),
        }
    }

    #[test]
    fn parse_cacheable_ms_variants() {
        assert_eq!(
            parse_cacheable_ms("{\"decision\":\"permit\",\"cacheable_ms\":60000}"),
            60000
        );
        assert_eq!(
            parse_cacheable_ms("{\"decision\":\"permit\",\"cacheable_ms\":0}"),
            0
        );
        assert_eq!(parse_cacheable_ms("{\"decision\":\"deny\"}"), 0);
        // Adversarial: a deny advertising a TTL must not yield one, and
        // non-JSON bodies parse to 0.
        assert_eq!(
            parse_cacheable_ms("{\"decision\":\"deny\",\"cacheable_ms\":60000}"),
            0
        );
        assert_eq!(parse_cacheable_ms("\"cacheable_ms\":5"), 0);
        assert_eq!(parse_cacheable_ms("not json at all"), 0);
    }

    #[test]
    fn stale_grace_serves_expired_permit_until_window_closes() {
        let net = SimNet::new();
        let am = FakeAm::new();
        am.grant("good", &permit_body(1_000, 1));
        net.register(am.clone());
        let h = delegated_host(&net);
        h.set_resilience(ResilienceConfig::new().with_stale_grace_ms(500));
        let url = Url::new("h.example", "/r1");

        assert!(h
            .enforce(&net, "req", None, "r1", &Action::Read, Some("good"), &url)
            .is_grant());
        // Permit expires; AM partitions away. Within the grace window the
        // expired permit still serves.
        net.clock().advance_ms(1_100);
        net.set_offline("am.example", true);
        assert!(h
            .enforce(&net, "req", None, "r1", &Action::Read, Some("good"), &url)
            .is_grant());
        assert_eq!(h.stats().stale_served, 1);
        assert_eq!(h.max_served_staleness_ms(), 100);
        assert!(h.max_served_staleness_ms() <= 500, "grace invariant");
        assert!(matches!(
            h.log().last().unwrap().via,
            DecisionPath::StaleGrace
        ));

        // Past the window: fail closed.
        net.clock().advance_ms(500); // 600 ms past expiry
        match h.enforce(&net, "req", None, "r1", &Action::Read, Some("good"), &url) {
            Enforcement::Block(resp) => assert_eq!(resp.status, Status::Unavailable),
            Enforcement::Grant => panic!("permit past its grace window must fail closed"),
        }
        assert_eq!(h.stats().stale_served, 1);

        // Healing restores normal service.
        net.set_offline("am.example", false);
        assert!(h
            .enforce(&net, "req", None, "r1", &Action::Read, Some("good"), &url)
            .is_grant());
    }

    #[test]
    fn epoch_stale_permit_is_never_grace_served() {
        let net = SimNet::new();
        let am = FakeAm::new();
        am.grant("good", &permit_body(1_000, 5));
        net.register(am.clone());
        let h = delegated_host(&net);
        h.set_resilience(ResilienceConfig::new().with_stale_grace_ms(60_000));
        let url = Url::new("h.example", "/r1");
        assert!(h
            .enforce(&net, "req", None, "r1", &Action::Read, Some("good"), &url)
            .is_grant());
        // Bob edits his policies, the epoch push lands, then the AM
        // partitions. The huge grace window must NOT resurrect the permit:
        // a policy change always fails closed.
        h.note_policy_epoch("bob", 6);
        net.set_offline("am.example", true);
        match h.enforce(&net, "req", None, "r1", &Action::Read, Some("good"), &url) {
            Enforcement::Block(_) => {}
            Enforcement::Grant => panic!("epoch-stale permit grace-served"),
        }
        assert_eq!(h.stats().stale_served, 0);
    }

    #[test]
    fn application_answers_never_reach_degraded_mode() {
        let net = SimNet::new();
        let am = FakeAm::new();
        am.grant("good", &permit_body(1_000, 1));
        net.register(am.clone());
        let h = delegated_host(&net);
        h.set_resilience(ResilienceConfig::new().with_stale_grace_ms(60_000));
        let url = Url::new("h.example", "/r1");
        assert!(h
            .enforce(&net, "req", None, "r1", &Action::Read, Some("good"), &url)
            .is_grant());
        // Permit expires but the AM stays up and now rejects the token.
        // The AM answered — degraded mode must not override it.
        net.clock().advance_ms(1_100);
        am.revoke("good");
        match h.enforce(&net, "req", None, "r1", &Action::Read, Some("good"), &url) {
            Enforcement::Block(resp) => assert_eq!(resp.status, Status::Unauthorized),
            Enforcement::Grant => panic!("an answering AM must be taken at its word"),
        }
        assert_eq!(h.stats().stale_served, 0);
    }

    #[test]
    fn breaker_opens_after_threshold_and_probes_closed_again() {
        let net = SimNet::new();
        let am = FakeAm::new();
        am.grant("good", &permit_body(0, 1)); // uncacheable: every access queries
        net.register(am.clone());
        let h = delegated_host(&net);
        h.set_resilience(ResilienceConfig::new().with_breaker(BreakerConfig {
            failure_threshold: 2,
            cooldown_ms: 1_000,
        }));
        let url = Url::new("h.example", "/r1");
        let go =
            |h: &HostCore| h.enforce(&net, "req", None, "r1", &Action::Read, Some("good"), &url);

        net.set_offline("am.example", true);
        // Two real failures open the circuit…
        assert!(!go(&h).is_grant());
        assert!(!go(&h).is_grant());
        assert_eq!(h.stats().am_queries, 2);
        assert!(h.breaker_open("am.example"));
        // …after which queries fast-fail without a dispatch.
        assert!(!go(&h).is_grant());
        assert_eq!(h.stats().am_queries, 2);
        assert_eq!(h.stats().breaker_fast_fails, 1);

        // Cooldown elapses while the AM heals: the half-open probe goes
        // through, succeeds, and closes the circuit.
        net.clock().advance_ms(1_001);
        net.set_offline("am.example", false);
        assert!(go(&h).is_grant());
        assert!(!h.breaker_open("am.example"));
        assert_eq!(h.stats().am_queries, 3);

        // A failed probe re-opens for another cooldown.
        net.set_offline("am.example", true);
        assert!(!go(&h).is_grant());
        assert!(!go(&h).is_grant());
        assert!(h.breaker_open("am.example"));
        net.clock().advance_ms(1_001);
        assert!(!go(&h).is_grant()); // probe fails
        assert!(h.breaker_open("am.example"), "failed probe must re-open");
    }

    #[test]
    fn fallback_am_answers_when_primary_is_partitioned() {
        let net = SimNet::new();
        let primary = FakeAm::new();
        let secondary = FakeAm::new_at("am-b.example");
        secondary.grant("good", &permit_body(60_000, 1));
        net.register(primary.clone());
        net.register(secondary.clone());
        let h = delegated_host(&net);
        h.set_resilience(ResilienceConfig::new().with_fallback_am(
            "am.example",
            DelegationConfig {
                am: "am-b.example".into(),
                host_token: "ht-b".into(),
                delegation_id: "d-b".into(),
            },
        ));
        let url = Url::new("h.example", "/r1");

        net.set_offline("am.example", true);
        assert!(h
            .enforce(&net, "req", None, "r1", &Action::Read, Some("good"), &url)
            .is_grant());
        assert_eq!(h.stats().fallback_queries, 1);
        assert_eq!(h.stats().am_queries, 2, "primary try + fallback try");
        // The fallback's permit was cached like any other.
        assert!(h
            .enforce(&net, "req", None, "r1", &Action::Read, Some("good"), &url)
            .is_grant());
        assert_eq!(h.stats().cache_hits, 1);
        // An answering primary is never failed over: a deny from the
        // primary stands even though the fallback would permit.
        net.set_offline("am.example", false);
        h.flush_decision_cache();
        match h.enforce(&net, "req", None, "r1", &Action::Read, Some("good"), &url) {
            Enforcement::Block(resp) => assert_eq!(resp.status, Status::Unauthorized),
            Enforcement::Grant => panic!("primary's answer must stand"),
        }
        assert_eq!(h.stats().fallback_queries, 1);
    }

    #[test]
    fn am_retry_rides_out_transient_loss() {
        let net = SimNet::new();
        let am = FakeAm::new();
        am.grant("good", &permit_body(0, 1));
        net.register(am.clone());
        let h = delegated_host(&net);
        h.set_resilience(
            ResilienceConfig::new().with_am_retry(ucam_webenv::RetryPolicy::default()),
        );
        let url = Url::new("h.example", "/r1");
        // Every 2nd dispatch is lost starting with the first: the initial
        // attempt times out, the retry lands.
        net.set_loss_every(2, 0);
        assert!(h
            .enforce(&net, "req", None, "r1", &Action::Read, Some("good"), &url)
            .is_grant());
        assert_eq!(h.stats().am_retries, 1);
        assert_eq!(h.stats().am_queries, 1, "one logical query");
        net.set_loss_every(0, 0);
    }

    #[test]
    fn cache_toggle_clears() {
        let net = SimNet::new();
        let am = FakeAm::new();
        am.grant("good", &permit_body(60_000, 1));
        net.register(am.clone());
        let h = delegated_host(&net);
        let url = Url::new("h.example", "/r1");
        assert!(h
            .enforce(&net, "req", None, "r1", &Action::Read, Some("good"), &url)
            .is_grant());
        assert_eq!(h.decision_cache_len(), 1);
        h.set_cache_enabled(false);
        assert_eq!(h.decision_cache_len(), 0);
        // Disabled: repeat accesses query the AM every time, nothing is
        // inserted.
        assert!(h
            .enforce(&net, "req", None, "r1", &Action::Read, Some("good"), &url)
            .is_grant());
        assert_eq!(h.decision_cache_len(), 0);
        assert_eq!(h.stats().cache_hits, 0);
        h.set_cache_enabled(true);
        h.flush_decision_cache();
    }

    /// Builds a token-bearing read attempt for a batched round.
    fn read_attempt(requester: &str, resource_id: &str, token: &str) -> AccessAttempt {
        AccessAttempt {
            requester: requester.to_owned(),
            subject: None,
            resource_id: resource_id.to_owned(),
            action: Action::Read,
            bearer: Some(token.to_owned()),
            return_url: Url::new("h.example", &format!("/{resource_id}")),
        }
    }

    #[test]
    fn resilience_builder_round_trips_every_knob() {
        // The builder (the only resilience entry point since the
        // deprecated per-knob setters were removed) must land every
        // field exactly as written, and re-applying a config with a
        // knob absent must clear it.
        let b = HostCore::new("h.example", SimClock::new());
        b.set_resilience(
            ResilienceConfig::new()
                .with_breaker(BreakerConfig {
                    failure_threshold: 3,
                    cooldown_ms: 250,
                })
                .with_am_retry(RetryPolicy::default())
                .with_fallback_am(
                    "am.example",
                    DelegationConfig {
                        am: "am-b.example".into(),
                        host_token: "ht-b".into(),
                        delegation_id: "d-b".into(),
                    },
                )
                .with_stale_grace_ms(1_234),
        );
        let rb = b.resilience();
        assert_eq!(
            rb.breaker,
            Some(BreakerConfig {
                failure_threshold: 3,
                cooldown_ms: 250,
            })
        );
        assert_eq!(rb.stale_grace_ms, 1_234);
        assert!(rb.am_retry.is_some());
        assert_eq!(
            rb.fallback_ams.get(&("am.example".to_owned(), None)),
            Some(&DelegationConfig {
                am: "am-b.example".into(),
                host_token: "ht-b".into(),
                delegation_id: "d-b".into(),
            })
        );
        assert_eq!(
            rb.fallback_for("am.example", "anyone").map(|d| &d.am),
            Some(&"am-b.example".to_owned())
        );
        // Dropping the fallback is just applying a config without it.
        b.set_resilience(ResilienceConfig::new());
        let cleared = b.resilience();
        assert!(cleared.fallback_ams.is_empty());
        assert_eq!(cleared.breaker, None);
        assert!(cleared.am_retry.is_none());
        assert_eq!(cleared.stale_grace_ms, 0);
    }

    #[test]
    fn batched_round_coalesces_misses_into_ceil_n_over_b_round_trips() {
        let net = SimNet::new();
        let am = FakeAm::new();
        am.grant("good", &permit_body(60_000, 1));
        net.register(am.clone());
        let h = delegated_host(&net);
        for i in 2..=5 {
            h.put_resource(&format!("r{i}"), "bob", "file", b"data".to_vec())
                .unwrap();
        }
        h.set_decision_batching(Some(BatchConfig {
            max_batch: 2,
            max_delay_ms: 5,
        }));
        let attempts: Vec<AccessAttempt> = (1..=5)
            .map(|i| read_attempt("req", &format!("r{i}"), "good"))
            .collect();

        let results = h.enforce_batch(&net, &attempts);
        assert!(results.iter().all(Enforcement::is_grant));
        // N=5 misses at B=2: exactly ⌈5/2⌉ = 3 wire round trips — two
        // full flushes plus one deadline flush.
        assert_eq!(net.stats().edge("h.example", "am.example"), 3);
        assert_eq!(h.stats().batch_flushes, 3);
        assert_eq!(h.stats().am_queries, 3);

        // The whole round is now cached: a repeat costs zero round trips.
        let results = h.enforce_batch(&net, &attempts);
        assert!(results.iter().all(Enforcement::is_grant));
        assert_eq!(net.stats().edge("h.example", "am.example"), 3);
        assert_eq!(h.stats().cache_hits, 5);
    }

    #[test]
    fn batching_off_round_matches_single_path_exactly() {
        let run = |batching: Option<BatchConfig>| {
            let net = SimNet::new();
            let am = FakeAm::new();
            am.grant("good", &permit_body(60_000, 1));
            net.register(am.clone());
            let h = delegated_host(&net);
            h.put_resource("r2", "bob", "file", b"data".to_vec())
                .unwrap();
            h.set_decision_batching(batching);
            let attempts = vec![
                read_attempt("req", "r1", "good"),
                read_attempt("req", "r2", "good"),
            ];
            let grants = h
                .enforce_batch(&net, &attempts)
                .iter()
                .filter(|e| e.is_grant())
                .count();
            (grants, net.stats().edge("h.example", "am.example"))
        };
        // Off: one round trip per miss, bit-identical to serial enforce().
        assert_eq!(run(None), (2, 2));
        // On with a roomy batch: the same round costs one round trip.
        assert_eq!(run(Some(BatchConfig::default())), (2, 1));
    }

    #[test]
    fn partial_batches_against_different_ams_share_one_deadline_charge() {
        let net = SimNet::new();
        let am_a = FakeAm::new();
        let am_b = FakeAm::new_at("am-b.example");
        am_a.grant("good", &permit_body(60_000, 1));
        am_b.grant("good", &permit_body(60_000, 1));
        net.register(am_a.clone());
        net.register(am_b.clone());
        let h = delegated_host(&net);
        h.put_resource("r2", "carol", "file", b"data".to_vec())
            .unwrap();
        h.set_user_delegation(
            "carol",
            DelegationConfig {
                am: "am-b.example".into(),
                host_token: "ht-b".into(),
                delegation_id: "d-2".into(),
            },
        );
        h.set_decision_batching(Some(BatchConfig {
            max_batch: 8,
            max_delay_ms: 7,
        }));
        let before = net.clock().now_ms();
        let results = h.enforce_batch(
            &net,
            &[
                read_attempt("req", "r1", "good"),
                read_attempt("req", "r2", "good"),
            ],
        );
        assert!(results.iter().all(Enforcement::is_grant));
        // Two partial batches (one per AM) wait out the deadline
        // concurrently: the clock moves once, not twice.
        assert_eq!(net.clock().now_ms() - before, 7);
        assert_eq!(h.stats().batch_flushes, 2);
    }

    #[test]
    fn batch_error_item_maps_to_token_rejection() {
        let net = SimNet::new();
        let am = FakeAm::new();
        am.grant("good", &permit_body(60_000, 1));
        net.register(am.clone());
        let h = delegated_host(&net);
        h.put_resource("r2", "bob", "file", b"data".to_vec())
            .unwrap();
        h.set_decision_batching(Some(BatchConfig::default()));
        let results = h.enforce_batch(
            &net,
            &[
                read_attempt("req", "r1", "good"),
                read_attempt("req", "r2", "expired"),
            ],
        );
        assert!(results[0].is_grant());
        match &results[1] {
            Enforcement::Block(resp) => assert_eq!(resp.status, Status::Unauthorized),
            Enforcement::Grant => panic!("a per-item batch error must block"),
        }
    }

    #[test]
    fn per_owner_fallback_routes_each_owner_to_their_own_mirror() {
        let net = SimNet::new();
        let primary = FakeAm::new();
        let mirror_b = FakeAm::new_at("am-b.example");
        let mirror_c = FakeAm::new_at("am-c.example");
        // Each mirror only holds its own owner's delegation: bob's token
        // validates only at am-b, carol's only at am-c.
        mirror_b.grant("tok-bob", &permit_body(60_000, 1));
        mirror_c.grant("tok-carol", &permit_body(60_000, 1));
        net.register(primary.clone());
        net.register(mirror_b.clone());
        net.register(mirror_c.clone());
        let h = delegated_host(&net);
        h.put_resource("r2", "carol", "file", b"data".to_vec())
            .unwrap();
        h.set_user_delegation(
            "carol",
            DelegationConfig {
                am: "am.example".into(),
                host_token: "ht".into(),
                delegation_id: "d-2".into(),
            },
        );
        h.set_resilience(
            ResilienceConfig::new()
                .with_fallback_am_for_owner(
                    "am.example",
                    "bob",
                    DelegationConfig {
                        am: "am-b.example".into(),
                        host_token: "ht-b".into(),
                        delegation_id: "d-b".into(),
                    },
                )
                .with_fallback_am_for_owner(
                    "am.example",
                    "carol",
                    DelegationConfig {
                        am: "am-c.example".into(),
                        host_token: "ht-c".into(),
                        delegation_id: "d-c".into(),
                    },
                ),
        );
        net.set_offline("am.example", true);
        let url = Url::new("h.example", "/r");
        // Both owners share the partitioned primary, yet each query fails
        // over to that owner's own mirror — the old single-key fallback
        // map sent every owner to whichever mirror was registered last.
        assert!(h
            .enforce(
                &net,
                "req",
                None,
                "r1",
                &Action::Read,
                Some("tok-bob"),
                &url
            )
            .is_grant());
        assert!(h
            .enforce(
                &net,
                "req",
                None,
                "r2",
                &Action::Read,
                Some("tok-carol"),
                &url
            )
            .is_grant());
        assert_eq!(net.stats().edge("h.example", "am-b.example"), 1);
        assert_eq!(net.stats().edge("h.example", "am-c.example"), 1);
    }

    #[test]
    fn partial_batches_share_one_deadline_charge_across_fallbacks() {
        // The single-AM invariant ("all partial chunks share ONE clock
        // charge") must survive the worst case: every chunk's primary is
        // partitioned and each settles through a different per-owner
        // fallback mirror. The deadline is charged once, before any
        // dispatch — fallback failover adds round trips, never waits.
        let net = SimNet::new();
        let mirror_b = FakeAm::new_at("am-c.example");
        let mirror_c = FakeAm::new_at("am-d.example");
        mirror_b.grant("tok-bob", &permit_body(60_000, 1));
        mirror_c.grant("tok-carol", &permit_body(60_000, 1));
        net.register(FakeAm::new());
        net.register(FakeAm::new_at("am-b.example"));
        net.register(mirror_b.clone());
        net.register(mirror_c.clone());
        let h = delegated_host(&net);
        h.put_resource("r2", "carol", "file", b"data".to_vec())
            .unwrap();
        h.set_user_delegation(
            "carol",
            DelegationConfig {
                am: "am-b.example".into(),
                host_token: "ht-b".into(),
                delegation_id: "d-2".into(),
            },
        );
        h.set_resilience(
            ResilienceConfig::new()
                .with_fallback_am_for_owner(
                    "am.example",
                    "bob",
                    DelegationConfig {
                        am: "am-c.example".into(),
                        host_token: "ht-c".into(),
                        delegation_id: "d-c".into(),
                    },
                )
                .with_fallback_am_for_owner(
                    "am-b.example",
                    "carol",
                    DelegationConfig {
                        am: "am-d.example".into(),
                        host_token: "ht-d".into(),
                        delegation_id: "d-d".into(),
                    },
                ),
        );
        h.set_decision_batching(Some(BatchConfig {
            max_batch: 8,
            max_delay_ms: 7,
        }));
        net.set_offline("am.example", true);
        net.set_offline("am-b.example", true);
        let before = net.clock().now_ms();
        let results = h.enforce_batch(
            &net,
            &[
                read_attempt("req", "r1", "tok-bob"),
                read_attempt("req", "r2", "tok-carol"),
            ],
        );
        assert!(results.iter().all(Enforcement::is_grant));
        // One 7 ms deadline charge for both chunks, despite two distinct
        // primaries failing over to two distinct mirrors.
        assert_eq!(net.clock().now_ms() - before, 7);
        assert_eq!(h.stats().batch_flushes, 2);
        assert_eq!(h.stats().fallback_queries, 2);
        assert_eq!(net.stats().edge("h.example", "am-c.example"), 1);
        assert_eq!(net.stats().edge("h.example", "am-d.example"), 1);
    }

    #[test]
    fn stats_snapshot_never_observes_a_half_reset() {
        // Regression for the snapshot/reset tear: reset() used to zero
        // each counter independently, so a concurrent stats() could see
        // am_queries already zeroed while cache_hits still held its old
        // value. The writer below always bumps the two counters in
        // lock-step, so any coherent snapshot (reset or not) satisfies
        // |am_queries − cache_hits| ≤ 1; a torn one shows a gap.
        let h = Arc::new(HostCore::new("h.example", SimClock::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let h = Arc::clone(&h);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i: u64 = 0;
                while !stop.load(Ordering::Relaxed) {
                    h.stats.am_queries.fetch_add(1, Ordering::Relaxed);
                    h.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                    if i.is_multiple_of(64) {
                        h.reset_stats();
                    }
                }
            })
        };
        for _ in 0..200_000 {
            let snap = h.stats();
            assert!(
                snap.am_queries.abs_diff(snap.cache_hits) <= 1,
                "torn snapshot: am_queries={} cache_hits={}",
                snap.am_queries,
                snap.cache_hits
            );
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }

    #[test]
    fn reset_clears_every_counter_and_gauge() {
        let h = host();
        h.stats.am_queries.fetch_add(3, Ordering::Relaxed);
        h.stats.bump_sieve_hit();
        h.stats.bump_sieve_miss();
        h.stats.sieve_installs.fetch_add(1, Ordering::Relaxed);
        h.stats.sieve_rejects.fetch_add(1, Ordering::Relaxed);
        h.max_served_staleness_ms.store(99, Ordering::Relaxed);
        h.reset_stats();
        assert_eq!(h.stats(), PepStats::default());
        assert_eq!(h.max_served_staleness_ms(), 0);
    }

    // -- tier-1 capability sieve ----------------------------------------------

    /// A signed sieve for `delegated_host`'s bob (key `"ht"`) covering
    /// the given (token, resource, action, requester) tuples.
    fn sieve_of(epoch: u64, expires_at_ms: u64, tuples: &[(&str, &str, &str, &str)]) -> SieveBody {
        let entries = tuples
            .iter()
            .map(
                |(token, resource, action, requester)| protocol::SieveEntry {
                    fingerprint: protocol::sieve_fingerprint(token, resource, action, requester),
                    resource: (*resource).to_owned(),
                    expires_at_ms,
                },
            )
            .collect();
        SieveBody::build("bob", epoch, entries, b"ht")
    }

    #[test]
    fn sieve_hit_grants_without_am_cache_or_log() {
        let net = SimNet::new();
        net.register(FakeAm::new()); // would 401 this token if consulted
        let h = delegated_host(&net);
        assert!(h.install_sieve(&sieve_of(1, 60_000, &[("tok", "r1", "read", "req")])));
        let url = Url::new("h.example", "/r1");
        assert!(h
            .enforce(&net, "req", None, "r1", &Action::Read, Some("tok"), &url)
            .is_grant());
        let stats = h.stats();
        assert_eq!(stats.sieve_installs, 1);
        assert_eq!(stats.sieve_hits, 1);
        assert_eq!(stats.am_queries, 0);
        assert_eq!(stats.cache_hits, 0);
        // The tier-1 path writes nothing shared — not even the log.
        assert!(h.log().is_empty());
        // Wrong action, requester or token: exact-match miss, tier-2
        // decides (and the fake AM rejects).
        assert!(!h
            .enforce(&net, "req", None, "r1", &Action::Write, Some("tok"), &url)
            .is_grant());
        assert!(!h
            .enforce(&net, "eve", None, "r1", &Action::Read, Some("tok"), &url)
            .is_grant());
        assert!(h.stats().sieve_misses >= 2);
    }

    #[test]
    fn sieve_installs_fail_closed_on_any_doubt() {
        let net = SimNet::new();
        let h = delegated_host(&net);
        h.put_resource("r2", "carol", "file", b"data".to_vec())
            .unwrap();

        // Wrong signing key.
        let bad_key = SieveBody::build(
            "bob",
            1,
            vec![protocol::SieveEntry {
                fingerprint: protocol::sieve_fingerprint("tok", "r1", "read", "req"),
                resource: "r1".into(),
                expires_at_ms: 60_000,
            }],
            b"not-ht",
        );
        assert!(!h.install_sieve(&bad_key));

        // Owner with no delegation here.
        let no_owner = SieveBody::build("mallory", 1, Vec::new(), b"ht");
        assert!(!h.install_sieve(&no_owner));

        // Entry for a resource bob does not own.
        assert!(!h.install_sieve(&sieve_of(1, 60_000, &[("tok", "r2", "read", "req")])));

        // Entry for a resource that does not exist.
        assert!(!h.install_sieve(&sieve_of(1, 60_000, &[("tok", "ghost", "read", "req")])));

        // Entry for a resource overridden to a different AM: the signer
        // does not govern it.
        h.put_resource("r3", "bob", "file", b"data".to_vec())
            .unwrap();
        h.set_resource_delegation(
            "r3",
            DelegationConfig {
                am: "other-am.example".into(),
                host_token: "other-ht".into(),
                delegation_id: "d-x".into(),
            },
        );
        assert!(!h.install_sieve(&sieve_of(1, 60_000, &[("tok", "r3", "read", "req")])));

        assert_eq!(h.stats().sieve_rejects, 5);
        assert_eq!(h.stats().sieve_installs, 0);
    }

    /// A signed delta for `delegated_host`'s bob (key `"ht"`): `added`
    /// tuples become full entries, `removed` tuples bare fingerprints.
    fn delta_of(
        epoch: u64,
        base_epoch: u64,
        added: &[(&str, &str, &str, &str)],
        removed: &[(&str, &str, &str, &str)],
    ) -> protocol::SieveDeltaBody {
        let added = added
            .iter()
            .map(
                |(token, resource, action, requester)| protocol::SieveEntry {
                    fingerprint: protocol::sieve_fingerprint(token, resource, action, requester),
                    resource: (*resource).to_owned(),
                    expires_at_ms: 60_000,
                },
            )
            .collect();
        let removed = removed
            .iter()
            .map(|(token, resource, action, requester)| {
                protocol::sieve_fingerprint(token, resource, action, requester)
            })
            .collect();
        protocol::SieveDeltaBody::build("bob", epoch, base_epoch, added, removed, b"ht")
    }

    #[test]
    fn sieve_delta_applies_on_exact_base_and_narrows() {
        let net = SimNet::new();
        net.register(FakeAm::new()); // rejects anything that reaches tier-2
        let h = delegated_host(&net);
        h.put_resource("r2", "bob", "file", b"data".to_vec())
            .unwrap();
        assert!(h.install_sieve(&sieve_of(3, 60_000, &[("tok", "r1", "read", "req")])));

        // base 3 → epoch 4: add r2's entry, drop r1's.
        let delta = delta_of(
            4,
            3,
            &[("tok2", "r2", "read", "req")],
            &[("tok", "r1", "read", "req")],
        );
        assert_eq!(h.install_sieve_delta(&delta), SieveDeltaOutcome::Installed);

        let url = Url::new("h.example", "/r");
        // The added entry serves on tier-1; the removed one falls through
        // to tier-2 where the fake AM rejects it.
        assert!(h
            .enforce(&net, "req", None, "r2", &Action::Read, Some("tok2"), &url)
            .is_grant());
        assert!(!h
            .enforce(&net, "req", None, "r1", &Action::Read, Some("tok"), &url)
            .is_grant());
        let stats = h.stats();
        assert_eq!(stats.sieve_installs, 1);
        assert_eq!(stats.sieve_delta_installs, 1);
        assert_eq!(stats.sieve_resyncs, 0);
        assert_eq!(stats.sieve_hits, 1);

        // Re-adding an already-known fingerprint only moves its deadline:
        // the indexes must not grow a duplicate.
        let rebump = delta_of(5, 4, &[("tok2", "r2", "read", "req")], &[]);
        assert_eq!(h.install_sieve_delta(&rebump), SieveDeltaOutcome::Installed);
        let snap = h.sieve_snapshot();
        assert_eq!(snap.entries.len(), 1);
        assert_eq!(snap.owner_index.get("bob").map(Vec::len), Some(1));
    }

    #[test]
    fn sieve_delta_base_mismatch_answers_resync() {
        let net = SimNet::new();
        net.register(FakeAm::new());
        let h = delegated_host(&net);

        // No sieve installed at all: nothing to base a delta on.
        let orphan = delta_of(1, 0, &[("tok", "r1", "read", "req")], &[]);
        assert_eq!(
            h.install_sieve_delta(&orphan),
            SieveDeltaOutcome::BaseMismatch
        );

        assert!(h.install_sieve(&sieve_of(5, 60_000, &[("tok", "r1", "read", "req")])));
        // Stale base (4 ≠ 5), and a delta that would rewind the epoch.
        let stale = delta_of(6, 4, &[], &[]);
        assert_eq!(
            h.install_sieve_delta(&stale),
            SieveDeltaOutcome::BaseMismatch
        );
        let rewind = delta_of(3, 5, &[], &[]);
        assert_eq!(
            h.install_sieve_delta(&rewind),
            SieveDeltaOutcome::BaseMismatch
        );

        // A policy-epoch advance purges the sieve: the next delta finds
        // no base and must trigger a full reship.
        h.note_policy_epoch("bob", 6);
        let after_purge = delta_of(7, 5, &[], &[]);
        assert_eq!(
            h.install_sieve_delta(&after_purge),
            SieveDeltaOutcome::BaseMismatch
        );

        let stats = h.stats();
        assert_eq!(stats.sieve_resyncs, 4);
        assert_eq!(stats.sieve_delta_installs, 0);
        assert_eq!(stats.sieve_rejects, 0);
    }

    #[test]
    fn sieve_delta_rejects_fail_closed() {
        let net = SimNet::new();
        net.register(FakeAm::new());
        let h = delegated_host(&net);
        h.put_resource("r2", "carol", "file", b"data".to_vec())
            .unwrap();
        assert!(h.install_sieve(&sieve_of(1, 60_000, &[("tok", "r1", "read", "req")])));

        // Wrong signing key.
        let bad_key = protocol::SieveDeltaBody::build("bob", 2, 1, Vec::new(), Vec::new(), b"no");
        assert_eq!(h.install_sieve_delta(&bad_key), SieveDeltaOutcome::Rejected);

        // Tampered after signing.
        let mut tampered = delta_of(2, 1, &[], &[]);
        tampered.epoch = 9;
        assert_eq!(
            h.install_sieve_delta(&tampered),
            SieveDeltaOutcome::Rejected
        );

        // An added entry for a resource bob does not own, and one for a
        // resource that does not exist: one bad entry rejects the body.
        for resource in ["r2", "ghost"] {
            let foreign = delta_of(2, 1, &[("tok", resource, "read", "req")], &[]);
            assert_eq!(h.install_sieve_delta(&foreign), SieveDeltaOutcome::Rejected);
        }

        // Owner with no delegation here.
        let no_owner = protocol::SieveDeltaBody::build("mallory", 2, 1, vec![], vec![], b"ht");
        assert_eq!(
            h.install_sieve_delta(&no_owner),
            SieveDeltaOutcome::Rejected
        );

        let stats = h.stats();
        assert_eq!(stats.sieve_rejects, 5);
        assert_eq!(stats.sieve_delta_installs, 0);
        // The installed sieve is untouched by every rejected delta.
        let url = Url::new("h.example", "/r");
        assert!(h
            .enforce(&net, "req", None, "r1", &Action::Read, Some("tok"), &url)
            .is_grant());
    }

    #[test]
    fn epoch_advance_purges_the_sieve_and_blocks_stale_reinstalls() {
        let net = SimNet::new();
        let am = FakeAm::new();
        am.grant("tok", &permit_body(60_000, 7));
        net.register(am.clone());
        let h = delegated_host(&net);
        let url = Url::new("h.example", "/r1");
        assert!(h.install_sieve(&sieve_of(5, 60_000, &[("tok", "r1", "read", "req")])));

        // The owner's policy moves to epoch 6: tier-1 empties, the next
        // access takes the wire (and is granted there).
        h.note_policy_epoch("bob", 6);
        assert!(h
            .enforce(&net, "req", None, "r1", &Action::Read, Some("tok"), &url)
            .is_grant());
        assert_eq!(h.stats().sieve_hits, 0);
        assert_eq!(h.stats().am_queries, 1);

        // A delayed push of the epoch-5 sieve must not resurrect it.
        assert!(!h.install_sieve(&sieve_of(5, 60_000, &[("tok", "r1", "read", "req")])));
        // A same-or-newer one installs fine.
        assert!(h.install_sieve(&sieve_of(7, 60_000, &[("tok", "r1", "read", "req")])));
        assert!(h
            .enforce(&net, "req", None, "r1", &Action::Read, Some("tok"), &url)
            .is_grant());
        assert_eq!(h.stats().sieve_hits, 1);
    }

    #[test]
    fn sieve_entries_expire_and_fall_through_to_tier2() {
        let net = SimNet::new();
        let am = FakeAm::new();
        am.grant("tok", &permit_body(60_000, 1));
        net.register(am.clone());
        let h = delegated_host(&net);
        let now = net.clock().now_ms();
        assert!(h.install_sieve(&sieve_of(1, now + 50, &[("tok", "r1", "read", "req")])));
        net.clock().advance_ms(60);
        let url = Url::new("h.example", "/r1");
        assert!(h
            .enforce(&net, "req", None, "r1", &Action::Read, Some("tok"), &url)
            .is_grant());
        assert_eq!(h.stats().sieve_hits, 0);
        assert_eq!(h.stats().sieve_misses, 1);
        assert_eq!(h.stats().am_queries, 1);
    }

    #[test]
    fn deletion_and_redelegation_purge_their_sieve_entries() {
        let net = SimNet::new();
        net.register(FakeAm::new());
        let h = delegated_host(&net);
        h.put_resource("r2", "bob", "file", b"data".to_vec())
            .unwrap();
        assert!(h.install_sieve(&sieve_of(
            1,
            60_000,
            &[("tok", "r1", "read", "req"), ("tok", "r2", "read", "req")],
        )));
        let url = Url::new("h.example", "/r1");

        // Deleting r1 drops its entry: the attempt now 404s instead of
        // riding a stale grant.
        h.delete_resource("r1").unwrap();
        match h.enforce(&net, "req", None, "r1", &Action::Read, Some("tok"), &url) {
            Enforcement::Block(resp) => assert_eq!(resp.status, Status::NotFound),
            Enforcement::Grant => panic!("sieve entry outlived its resource"),
        }
        // r2's entry survives the purge of r1 …
        assert!(h
            .enforce(&net, "req", None, "r2", &Action::Read, Some("tok"), &url)
            .is_grant());
        assert_eq!(h.stats().sieve_hits, 1);

        // … until the owner re-delegates, which voids the signing key.
        h.set_user_delegation(
            "bob",
            DelegationConfig {
                am: "am-b.example".into(),
                host_token: "ht-2".into(),
                delegation_id: "d-2".into(),
            },
        );
        assert!(!h
            .enforce(&net, "req", None, "r2", &Action::Read, Some("tok"), &url)
            .is_grant());
        assert_eq!(h.stats().sieve_hits, 1);
    }

    #[test]
    fn sieve_hits_settle_batched_rounds_off_the_wire() {
        let net = SimNet::new();
        net.register(FakeAm::new());
        let h = delegated_host(&net);
        h.put_resource("r2", "bob", "file", b"data".to_vec())
            .unwrap();
        h.set_decision_batching(Some(BatchConfig::default()));
        assert!(h.install_sieve(&sieve_of(
            1,
            60_000,
            &[("tok", "r1", "read", "req"), ("tok", "r2", "read", "req")],
        )));
        let results = h.enforce_batch(
            &net,
            &[
                read_attempt("req", "r1", "tok"),
                read_attempt("req", "r2", "tok"),
            ],
        );
        assert!(results.iter().all(Enforcement::is_grant));
        assert_eq!(net.stats().edge("h.example", "am.example"), 0);
        assert_eq!(h.stats().sieve_hits, 2);
        assert_eq!(h.stats().batch_flushes, 0);
    }
}
