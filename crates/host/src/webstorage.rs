//! **WebStorage** — the paper's prototype "online storage service": "an
//! online file system accessible over a Web browser where users can upload
//! arbitrary files and create an arbitrary directory structure" (§VI).
//!
//! It can also act as a Requester: "the storage service can access photos
//! hosted at the online gallery. For example, it may act as a backup
//! service for online photo albums" — see the `/backup` route.

use std::sync::Arc;

use parking_lot::Mutex;

use ucam_policy::Action;
use ucam_requester::{AccessOutcome, AccessSpec, RequesterClient};
use ucam_webenv::{Method, Request, Response, SimClock, Status, Transport, Url, WebApp};

use crate::shell::AppShell;

/// The online storage service application.
///
/// Routes (all resource routes are PEP-enforced):
///
/// | Route | Meaning |
/// |---|---|
/// | `POST /files?path=p` (body) | upload a file (owner session required) |
/// | `GET /files/<path>` | read a file |
/// | `POST /files/<path>` (body) | overwrite a file |
/// | `DELETE /files/<path>` | delete a file |
/// | `POST /mkdir?path=d` | create a directory |
/// | `GET /list?dir=d` | list a directory |
/// | `POST /backup?from=h&src=r&dest=p` | fetch a remote resource (acting as a Requester) and store it |
/// | common | `/delegate/setup`, `/delegate/done`, `/share`, `/acl` from [`AppShell`] |
pub struct WebStorage {
    shell: AppShell,
    client: Mutex<RequesterClient>,
}

impl std::fmt::Debug for WebStorage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WebStorage")
            .field("shell", &self.shell)
            .finish()
    }
}

impl WebStorage {
    /// Creates the storage service at `authority`.
    #[must_use]
    pub fn new(authority: &str, clock: SimClock) -> Arc<Self> {
        Arc::new(WebStorage {
            client: Mutex::new(RequesterClient::new(&format!("requester:{authority}"))),
            shell: AppShell::new(authority, clock),
        })
    }

    /// Access to the shared shell (delegations, PEP, resources).
    #[must_use]
    pub fn shell(&self) -> &AppShell {
        &self.shell
    }

    fn upload(&self, req: &Request) -> Response {
        let owner = match self.shell.require_subject(req) {
            Ok(user) => user,
            Err(resp) => return resp,
        };
        let Some(path) = req.param("path") else {
            return Response::bad_request("path required");
        };
        let id = format!("files/{path}");
        match self
            .shell
            .core
            .put_resource(&id, &owner, "file", req.body.clone().into_bytes())
        {
            Ok(()) => Response::with_status(Status::Created).with_body(id),
            Err(e) => Response::with_status(Status::Conflict).with_body(e.to_string()),
        }
    }

    fn mkdir(&self, req: &Request) -> Response {
        let owner = match self.shell.require_subject(req) {
            Ok(user) => user,
            Err(resp) => return resp,
        };
        let Some(path) = req.param("path") else {
            return Response::bad_request("path required");
        };
        let id = format!("dirs/{path}");
        match self.shell.core.put_resource(&id, &owner, "dir", Vec::new()) {
            Ok(()) => Response::with_status(Status::Created).with_body(id),
            Err(e) => Response::with_status(Status::Conflict).with_body(e.to_string()),
        }
    }

    fn file_route(&self, net: &dyn Transport, req: &Request) -> Response {
        let path = req.url.path().trim_start_matches("/files/");
        let id = format!("files/{path}");
        let action = match req.method {
            Method::Get => Action::Read,
            Method::Post | Method::Put => Action::Write,
            Method::Delete => Action::Delete,
        };
        if let Err(resp) = self.shell.enforce_web(net, req, &id, &action) {
            return resp;
        }
        match action {
            Action::Read => match self.shell.core.resource_data(&id) {
                Some(data) => Response::ok().with_body(String::from_utf8_lossy(&data).into_owned()),
                None => Response::not_found(&id),
            },
            Action::Write => match self
                .shell
                .core
                .update_resource(&id, req.body.clone().into_bytes())
            {
                Ok(()) => Response::ok().with_body("updated"),
                Err(e) => Response::not_found(&e.to_string()),
            },
            Action::Delete => match self.shell.core.delete_resource(&id) {
                Ok(_) => Response::with_status(Status::NoContent),
                Err(e) => Response::not_found(&e.to_string()),
            },
            _ => Response::bad_request("unsupported action"),
        }
    }

    fn list(&self, net: &dyn Transport, req: &Request) -> Response {
        let Some(dir) = req.param("dir") else {
            return Response::bad_request("dir required");
        };
        let dir_id = format!("dirs/{dir}");
        if let Err(resp) = self.shell.enforce_web(net, req, &dir_id, &Action::List) {
            return resp;
        }
        let children = self.shell.core.ids_with_prefix(&format!("files/{dir}/"));
        Response::ok().with_body(children.join("\n"))
    }

    /// Acting as a Requester (§VI): fetch a resource from another Host via
    /// the full token flow and store it locally as a backup.
    fn backup(&self, net: &dyn Transport, req: &Request) -> Response {
        let owner = match self.shell.require_subject(req) {
            Ok(user) => user,
            Err(resp) => return resp,
        };
        let (from, src, dest) = match (req.param("from"), req.param("src"), req.param("dest")) {
            (Some(f), Some(s), Some(d)) => (f.to_owned(), s.to_owned(), d.to_owned()),
            _ => return Response::bad_request("from, src, dest required"),
        };
        let spec = AccessSpec::read(Url::new(&from, &format!("/{src}")));
        let mut client = self.client.lock();
        // Pass the caller's identity through to the AM: the storage service
        // requests on behalf of the logged-in user.
        if let Some(token) = req.param("subject_token") {
            client.set_subject_token(Some(token.to_owned()));
        }
        match client.access(net, &spec) {
            AccessOutcome::Granted(resp) => {
                let id = format!("files/{dest}");
                match self
                    .shell
                    .core
                    .put_resource(&id, &owner, "file", resp.body.into_bytes())
                {
                    Ok(()) => Response::with_status(Status::Created).with_body(id),
                    Err(e) => Response::with_status(Status::Conflict).with_body(e.to_string()),
                }
            }
            AccessOutcome::Denied(reason) => Response::forbidden(&reason),
            AccessOutcome::PendingConsent { consent_id, .. } => {
                Response::with_status(Status::Accepted).with_body(consent_id)
            }
            AccessOutcome::NeedsClaims(msg) => {
                Response::with_status(Status::PaymentRequired).with_body(msg)
            }
            AccessOutcome::Failed(resp) => resp,
        }
    }
}

impl WebApp for WebStorage {
    fn authority(&self) -> &str {
        self.shell.core.authority()
    }

    fn handle(&self, net: &dyn Transport, req: &Request) -> Response {
        if let Some(resp) = self.shell.route_common(net, req) {
            return resp;
        }
        match (req.method, req.url.path()) {
            (Method::Post, "/files") => self.upload(req),
            (Method::Post, "/mkdir") => self.mkdir(req),
            (_, path) if path.starts_with("/files/") => self.file_route(net, req),
            (Method::Get, "/list") => self.list(net, req),
            (Method::Post, "/backup") => self.backup(net, req),
            (_, other) => Response::not_found(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucam_webenv::identity::IdentityProvider;
    use ucam_webenv::SimNet;

    fn setup() -> (SimNet, Arc<WebStorage>, String) {
        let net = SimNet::new();
        let storage = WebStorage::new("webstorage.example", net.clock().clone());
        let idp = IdentityProvider::new("idp.example", net.clock().clone());
        idp.register_user("bob", "pw");
        storage.shell().set_identity_verifier(idp.verifier());
        net.register(storage.clone());
        let token = idp.login("bob", "pw").unwrap().token;
        (net, storage, token)
    }

    #[test]
    fn upload_requires_session() {
        let (net, _, _) = setup();
        let resp = net.dispatch(
            "browser:anon",
            Request::new(Method::Post, "https://webstorage.example/files")
                .with_param("path", "a.txt")
                .with_body("hello"),
        );
        assert_eq!(resp.status, Status::Unauthorized);
    }

    #[test]
    fn upload_read_update_delete_by_owner() {
        let (net, _, token) = setup();
        let upload = net.dispatch(
            "browser:bob",
            Request::new(Method::Post, "https://webstorage.example/files")
                .with_param("path", "trips/rome.txt")
                .with_param("subject_token", &token)
                .with_body("trip notes"),
        );
        assert_eq!(upload.status, Status::Created);

        let read = net.dispatch(
            "browser:bob",
            Request::new(
                Method::Get,
                "https://webstorage.example/files/trips/rome.txt",
            )
            .with_param("subject_token", &token),
        );
        assert_eq!(read.status, Status::Ok);
        assert_eq!(read.body, "trip notes");

        let update = net.dispatch(
            "browser:bob",
            Request::new(
                Method::Post,
                "https://webstorage.example/files/trips/rome.txt",
            )
            .with_param("subject_token", &token)
            .with_body("updated notes"),
        );
        assert_eq!(update.status, Status::Ok);

        let del = net.dispatch(
            "browser:bob",
            Request::new(
                Method::Delete,
                "https://webstorage.example/files/trips/rome.txt",
            )
            .with_param("subject_token", &token),
        );
        assert_eq!(del.status, Status::NoContent);
    }

    #[test]
    fn duplicate_upload_conflicts() {
        let (net, _, token) = setup();
        for _ in 0..2 {
            let last = net.dispatch(
                "browser:bob",
                Request::new(Method::Post, "https://webstorage.example/files")
                    .with_param("path", "a.txt")
                    .with_param("subject_token", &token)
                    .with_body("x"),
            );
            if last.status == Status::Created {
                continue;
            }
            assert_eq!(last.status, Status::Conflict);
            return;
        }
        panic!("second upload must conflict");
    }

    #[test]
    fn stranger_read_denied_by_default() {
        let (net, _, token) = setup();
        net.dispatch(
            "browser:bob",
            Request::new(Method::Post, "https://webstorage.example/files")
                .with_param("path", "secret.txt")
                .with_param("subject_token", &token)
                .with_body("secret"),
        );
        // Anonymous, undelegated: legacy default-deny.
        let read = net.dispatch(
            "browser:anon",
            Request::new(Method::Get, "https://webstorage.example/files/secret.txt"),
        );
        assert_eq!(read.status, Status::Forbidden);
    }

    #[test]
    fn mkdir_and_list() {
        let (net, _, token) = setup();
        let mk = net.dispatch(
            "browser:bob",
            Request::new(Method::Post, "https://webstorage.example/mkdir")
                .with_param("path", "trips")
                .with_param("subject_token", &token),
        );
        assert_eq!(mk.status, Status::Created);
        for name in ["trips/rome.txt", "trips/oslo.txt", "other.txt"] {
            net.dispatch(
                "browser:bob",
                Request::new(Method::Post, "https://webstorage.example/files")
                    .with_param("path", name)
                    .with_param("subject_token", &token)
                    .with_body("x"),
            );
        }
        let list = net.dispatch(
            "browser:bob",
            Request::new(Method::Get, "https://webstorage.example/list")
                .with_param("dir", "trips")
                .with_param("subject_token", &token),
        );
        assert_eq!(list.status, Status::Ok);
        assert_eq!(list.body, "files/trips/oslo.txt\nfiles/trips/rome.txt");
    }

    #[test]
    fn unknown_route_404() {
        let (net, _, _) = setup();
        let resp = net.dispatch(
            "x",
            Request::new(Method::Get, "https://webstorage.example/nope"),
        );
        assert_eq!(resp.status, Status::NotFound);
    }
}
