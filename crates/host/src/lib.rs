//! Host (PEP) framework and concrete Web applications for the UCAM system.
//!
//! "A Host can be any Web application that allows Users to create or upload
//! and then share data with other users or services on the Web" (§V.A.3).
//! This crate provides:
//!
//! * [`core`] — the framework: resource store, delegation management
//!   (per-user or per-resource, possibly to different AMs), the Policy
//!   Enforcement Point with redirect-to-AM (Fig. 5), decision queries
//!   (Fig. 6), the user-controllable decision cache (§V.B.5–6), built-in
//!   legacy ACLs (the §III status quo), and a host-local access log,
//! * [`shell`] — shared Web routes every Host exposes (delegation setup,
//!   the "Share" redirect to the AM's policy editor, legacy ACL editing),
//! * [`image`] — a small raster-image substrate for the gallery's editing
//!   operations,
//! * three concrete applications matching the paper's §II scenario and §VI
//!   prototype: [`webpics::WebPics`] (photo gallery & editor),
//!   [`webstorage::WebStorage`] (online file system),
//!   [`webdocs::WebDocs`] (word processor).
//!
//! WebPics and WebStorage can also act as Requesters against each other
//! (photo import / backup), exactly as the prototype describes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod core;
pub mod image;
pub mod shell;
pub mod video;
pub mod webdocs;
pub mod webpics;
pub mod webstorage;
pub mod webvideos;

pub use crate::core::{
    AccessAttempt, BatchConfig, BreakerConfig, DecisionPath, DelegationConfig, Enforcement,
    HostCore, HostError, HostLogEntry, PepStats, ResilienceConfig, Resource,
};
pub use crate::image::Image;
pub use crate::shell::AppShell;
pub use crate::video::Video;
pub use crate::webdocs::WebDocs;
pub use crate::webpics::WebPics;
pub use crate::webstorage::WebStorage;
pub use crate::webvideos::WebVideos;
