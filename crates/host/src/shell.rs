//! Shared Web plumbing for the concrete Host applications.
//!
//! Every Host in the paper exposes the same protocol-facing surface:
//! delegation setup (Fig. 3), the "Share …" redirect to the AM's policy
//! editor (Fig. 4), and PEP enforcement on resource routes (Figs. 5–6).
//! [`AppShell`] implements that surface once; WebPics, WebStorage and
//! WebDocs embed a shell and add their domain routes.

use parking_lot::RwLock;

use ucam_policy::{Action, Subject};
use ucam_webenv::identity::IdentityVerifier;
use ucam_webenv::{protocol, Request, Response, SimClock, Status, Transport, Url};

use crate::core::{DelegationConfig, Enforcement, HostCore, SieveDeltaOutcome};

/// The common Host application shell.
pub struct AppShell {
    /// The framework core (resources + PEP).
    pub core: HostCore,
    idp: RwLock<Option<IdentityVerifier>>,
}

impl std::fmt::Debug for AppShell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppShell")
            .field("core", &self.core)
            .finish()
    }
}

impl AppShell {
    /// Creates a shell for a host at `authority`.
    #[must_use]
    pub fn new(authority: &str, clock: SimClock) -> Self {
        AppShell {
            core: HostCore::new(authority, clock),
            idp: RwLock::new(None),
        }
    }

    /// Configures the identity provider whose assertions this host accepts
    /// for user sessions.
    pub fn set_identity_verifier(&self, verifier: IdentityVerifier) {
        *self.idp.write() = Some(verifier);
    }

    /// Resolves the authenticated user behind `req`, from the
    /// `subject_token` parameter or the `ident` cookie (both carry IdP
    /// assertions).
    #[must_use]
    pub fn subject_of(&self, req: &Request) -> Option<String> {
        let token = req
            .param("subject_token")
            .map(str::to_owned)
            .or_else(|| req.cookie("ident").map(str::to_owned))?;
        self.idp.read().as_ref()?.verify(&token).ok()
    }

    /// The requester label for `req`: the `x-requester` header when the
    /// caller is an application, else a browser label derived from the
    /// session, else anonymous.
    #[must_use]
    pub fn requester_of(req: &Request, subject: Option<&str>) -> String {
        if let Some(r) = req.header("x-requester") {
            return r.to_owned();
        }
        match subject {
            Some(user) => format!("browser:{user}"),
            None => "browser:anonymous".to_owned(),
        }
    }

    /// Handles the shared routes; returns `None` when `req` is not one of
    /// them (the app then tries its domain routes).
    #[must_use]
    pub fn route_common(&self, net: &dyn Transport, req: &Request) -> Option<Response> {
        match req.url.path() {
            "/delegate/setup" => Some(self.delegate_setup(req)),
            "/delegate/done" => Some(self.delegate_done(req)),
            "/share" => Some(self.share(req)),
            "/shared" => {
                Some(Response::ok().with_body("policy linked at your authorization manager"))
            }
            "/acl" => Some(self.edit_acl(net, req)),
            "/.well-known/host-meta" => Some(self.host_meta(req)),
            p if p == protocol::EPOCH_PUSH_PATH => Some(self.epoch_push(req)),
            _ => None,
        }
    }

    /// AM→Host policy-epoch push (`/protection/v1/epoch`): advances the
    /// decision cache's view of `owner`'s policy epoch. The plain epoch
    /// parameters are unauthenticated by design — epochs are monotonic,
    /// so a forged push can only invalidate cached permits, never grant
    /// anything. A push may also carry a compiled capability sieve in its
    /// body (DESIGN.md §12); that *raises* trust, so it is HMAC-signed
    /// and [`HostCore::install_sieve`] verifies it fail-closed. A body
    /// that fails to parse or verify is silently dropped — the epoch note
    /// above already happened, so the Host is never left trusting
    /// anything a bad body claimed.
    fn epoch_push(&self, req: &Request) -> Response {
        let Some(owner) = req.param("owner") else {
            return Response::bad_request("owner required");
        };
        let Some(epoch) = req.param("epoch").and_then(|e| e.parse::<u64>().ok()) else {
            return Response::bad_request("numeric epoch required");
        };
        if !req.body.is_empty() {
            // A delta must apply *before* the plain epoch note: noting
            // first would purge the very base the delta builds on. The
            // two body kinds have disjoint field sets, so parsing is
            // unambiguous.
            if let Ok(delta) = protocol::SieveDeltaBody::from_json(&req.body) {
                let outcome = self.core.install_sieve_delta(&delta);
                self.core.note_policy_epoch(owner, epoch);
                return match outcome {
                    SieveDeltaOutcome::BaseMismatch => {
                        // Delivery confirmed, delta refused: ask the AM
                        // for a full-body reship.
                        Response::ok().with_body(protocol::SIEVE_RESYNC)
                    }
                    // A rejected delta is dropped fail-closed, exactly
                    // like a rejected full body — silently.
                    SieveDeltaOutcome::Installed | SieveDeltaOutcome::Rejected => {
                        Response::ok().with_body("epoch noted")
                    }
                };
            }
            // A decision invalidation (DESIGN.md §16) likewise replaces
            // the plain epoch note: a verified body evicts exactly the
            // named entries and keeps the rest serving, so noting first
            // would purge the very survivors it vouches for. A body that
            // fails to parse or verify falls through to the plain note —
            // the owner-wide purge, always safe.
            if let Ok(invalidation) = protocol::InvalidationBody::from_json(&req.body) {
                if self.core.install_invalidation(&invalidation) {
                    return Response::ok().with_body("invalidation applied");
                }
            }
        }
        self.core.note_policy_epoch(owner, epoch);
        if !req.body.is_empty() {
            if let Ok(sieve) = protocol::SieveBody::from_json(&req.body) {
                self.core.install_sieve(&sieve);
            }
        }
        Response::ok().with_body("epoch noted")
    }

    /// XRD/LRDD-based discovery (§VII): "a Requester learns the location
    /// of the correct AM and orchestrates the flow". The host publishes,
    /// per resource, an XRD document linking to the protecting AM.
    fn host_meta(&self, req: &Request) -> Response {
        let Some(resource_id) = req.param("resource") else {
            return Response::bad_request("resource required");
        };
        let Some(resource) = self.core.resource(resource_id) else {
            return Response::not_found(resource_id);
        };
        let mut xrd = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<XRD>\n");
        xrd.push_str(&format!(
            "  <Subject>https://{}/{}</Subject>\n",
            self.core.authority(),
            resource_id
        ));
        xrd.push_str(&format!(
            "  <Property type=\"owner\">{}</Property>\n",
            resource.owner
        ));
        if let Some(delegation) = self.core.delegation_for(resource_id, &resource.owner) {
            xrd.push_str(&format!(
                "  <Link rel=\"authorization-manager\" href=\"https://{}/authorize\"/>\n",
                delegation.am
            ));
        }
        xrd.push_str("</XRD>\n");
        Response::ok()
            .with_header("content-type", "application/xrd+xml")
            .with_body(xrd)
    }

    /// Fig. 3 step 1: the User provides the URL of their preferred AM; the
    /// Host redirects them there to confirm the delegation.
    fn delegate_setup(&self, req: &Request) -> Response {
        let (user, am) = match (req.param("user"), req.param("am")) {
            (Some(u), Some(a)) => (u, a),
            _ => return Response::bad_request("user and am required"),
        };
        let back = Url::new(self.core.authority(), "/delegate/done")
            .with_query("user", user)
            .with_query("am", am);
        let target = Url::new(am, "/delegate")
            .with_query("host", self.core.authority())
            .with_query("user", user)
            .with_query("return", &back.to_string());
        Response::redirect(&target)
    }

    /// Fig. 3 step 3: the AM redirected the User back with the host access
    /// token; the Host stores the delegation.
    fn delegate_done(&self, req: &Request) -> Response {
        let fields = (
            req.param("user"),
            req.param("am"),
            req.param("host_token"),
            req.param("delegation_id"),
        );
        let (user, am, token, delegation_id) = match fields {
            (Some(u), Some(a), Some(t), Some(d)) => (u, a, t, d),
            _ => return Response::bad_request("user, am, host_token, delegation_id required"),
        };
        self.core.set_user_delegation(
            user,
            DelegationConfig {
                am: am.to_owned(),
                host_token: token.to_owned(),
                delegation_id: delegation_id.to_owned(),
            },
        );
        Response::ok().with_body(format!(
            "access control for {user} on {} now delegated to {am}",
            self.core.authority()
        ))
    }

    /// Fig. 4: clicking "Share" on a delegated resource redirects the User
    /// to the AM's policy editor instead of a local configuration menu.
    fn share(&self, req: &Request) -> Response {
        let resource_id = match req.param("resource") {
            Some(r) => r,
            None => return Response::bad_request("resource required"),
        };
        let Some(resource) = self.core.resource(resource_id) else {
            return Response::not_found(resource_id);
        };
        match self.core.delegation_for(resource_id, &resource.owner) {
            Some(delegation) => {
                let back = Url::new(self.core.authority(), "/shared");
                let mut target = Url::new(&delegation.am, "/compose")
                    .with_query("owner", &resource.owner)
                    .with_query("host", self.core.authority())
                    .with_query("resource", resource_id)
                    .with_query("return", &back.to_string());
                // Pass through policy-linking parameters chosen in the UI.
                for key in ["policy", "realm", "general"] {
                    if let Some(v) = req.param(key) {
                        target = target.with_query(key, v);
                    }
                }
                Response::redirect(&target)
            }
            None => Response::ok()
                .with_body("resource is not delegated; use the built-in sharing menu (/acl)"),
        }
    }

    /// The built-in sharing menu of the status quo (§III): the owner edits
    /// the host-local ACL for one resource.
    fn edit_acl(&self, _net: &dyn Transport, req: &Request) -> Response {
        let subject_user = self.subject_of(req);
        let (resource_id, grantee, action) = match (
            req.param("resource"),
            req.param("grantee"),
            req.param("action"),
        ) {
            (Some(r), Some(g), Some(a)) => (r, g, a),
            _ => return Response::bad_request("resource, grantee, action required"),
        };
        let Some(resource) = self.core.resource(resource_id) else {
            return Response::not_found(resource_id);
        };
        if subject_user.as_deref() != Some(resource.owner.as_str()) {
            return Response::forbidden("only the owner may edit sharing");
        }
        let grantee_subject = parse_subject(grantee);
        let action = parse_action(action);
        let mut acl = self.core.legacy_acl(resource_id).unwrap_or_default();
        acl.insert(grantee_subject, action);
        self.core.set_legacy_acl(resource_id, acl);
        Response::ok().with_body("acl updated")
    }

    /// Runs the PEP for a resource route. On grant returns `Ok(subject)`;
    /// otherwise the response to send (redirect to AM, 403, 404, …).
    ///
    /// # Errors
    ///
    /// Returns the blocking [`Response`] when access is not granted.
    pub fn enforce_web(
        &self,
        net: &dyn Transport,
        req: &Request,
        resource_id: &str,
        action: &Action,
    ) -> Result<Option<String>, Response> {
        let subject = self.subject_of(req);
        // Borrow the requester label straight from the header on the warm
        // application path; only browser sessions need an owned label.
        let browser_label;
        let requester = match req.header("x-requester") {
            Some(r) => r,
            None => {
                browser_label = Self::requester_of(req, subject.as_deref());
                browser_label.as_str()
            }
        };
        match self.core.enforce(
            net,
            requester,
            subject.as_deref(),
            resource_id,
            action,
            req.bearer_token(),
            &req.url,
        ) {
            Enforcement::Grant => Ok(subject),
            Enforcement::Block(resp) => Err(resp),
        }
    }

    /// Convenience: requires an authenticated session, for owner-only
    /// routes like uploads.
    ///
    /// # Errors
    ///
    /// Returns `401 Unauthorized` when no valid session is attached.
    pub fn require_subject(&self, req: &Request) -> Result<String, Response> {
        self.subject_of(req)
            .ok_or_else(|| Response::with_status(Status::Unauthorized).with_body("login required"))
    }
}

fn parse_subject(spec: &str) -> Subject {
    match spec.split_once(':') {
        Some(("user", name)) => Subject::User(name.to_owned()),
        Some(("group", name)) => Subject::Group(name.to_owned()),
        Some(("app", name)) => Subject::App(name.to_owned()),
        _ if spec == "public" => Subject::Public,
        _ if spec == "authenticated" => Subject::Authenticated,
        _ => Subject::User(spec.to_owned()),
    }
}

/// Parses an action name, defaulting unknown names to custom actions.
#[must_use]
pub fn parse_action(name: &str) -> Action {
    match name {
        "read" => Action::Read,
        "write" => Action::Write,
        "delete" => Action::Delete,
        "list" => Action::List,
        "share" => Action::Share,
        other => Action::Custom(other.to_owned()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucam_webenv::identity::IdentityProvider;
    use ucam_webenv::Method;
    use ucam_webenv::SimNet;

    fn shell_with_idp() -> (AppShell, IdentityProvider) {
        let clock = SimClock::new();
        let shell = AppShell::new("h.example", clock.clone());
        let idp = IdentityProvider::new("idp.example", clock);
        idp.register_user("bob", "pw");
        shell.set_identity_verifier(idp.verifier());
        (shell, idp)
    }

    #[test]
    fn subject_from_param_and_cookie() {
        let (shell, idp) = shell_with_idp();
        let assertion = idp.login("bob", "pw").unwrap();
        let via_param = Request::new(Method::Get, "https://h.example/x")
            .with_param("subject_token", &assertion.token);
        assert_eq!(shell.subject_of(&via_param).as_deref(), Some("bob"));
        let via_cookie = Request::new(Method::Get, "https://h.example/x")
            .with_header("cookie", &format!("ident={}", assertion.token));
        assert_eq!(shell.subject_of(&via_cookie).as_deref(), Some("bob"));
        let forged = Request::new(Method::Get, "https://h.example/x")
            .with_param("subject_token", "fake.token");
        assert_eq!(shell.subject_of(&forged), None);
    }

    #[test]
    fn subject_none_without_idp() {
        let shell = AppShell::new("h.example", SimClock::new());
        let req = Request::new(Method::Get, "https://h.example/x")
            .with_param("subject_token", "anything");
        assert_eq!(shell.subject_of(&req), None);
    }

    #[test]
    fn requester_label_priority() {
        let req = Request::new(Method::Get, "https://h.example/x")
            .with_header("x-requester", "requester:printer");
        assert_eq!(
            AppShell::requester_of(&req, Some("bob")),
            "requester:printer"
        );
        let plain = Request::new(Method::Get, "https://h.example/x");
        assert_eq!(AppShell::requester_of(&plain, Some("bob")), "browser:bob");
        assert_eq!(AppShell::requester_of(&plain, None), "browser:anonymous");
    }

    #[test]
    fn delegate_setup_redirects_to_am() {
        let (shell, _) = shell_with_idp();
        let net = SimNet::new();
        let req = Request::new(Method::Get, "https://h.example/delegate/setup")
            .with_param("user", "bob")
            .with_param("am", "am.example");
        let resp = shell.route_common(&net, &req).unwrap();
        assert_eq!(resp.status, Status::Found);
        let loc = resp.location().unwrap();
        assert_eq!(loc.authority(), "am.example");
        assert_eq!(loc.path(), "/delegate");
        assert_eq!(loc.query("host"), Some("h.example"));
        assert!(loc.query("return").unwrap().contains("/delegate/done"));
    }

    #[test]
    fn delegate_done_stores_config() {
        let (shell, _) = shell_with_idp();
        let net = SimNet::new();
        let req = Request::new(Method::Get, "https://h.example/delegate/done")
            .with_param("user", "bob")
            .with_param("am", "am.example")
            .with_param("host_token", "ht-1")
            .with_param("delegation_id", "d-1");
        let resp = shell.route_common(&net, &req).unwrap();
        assert_eq!(resp.status, Status::Ok);
        let config = shell.core.delegation_for("any", "bob").unwrap();
        assert_eq!(config.am, "am.example");
        assert_eq!(config.host_token, "ht-1");
    }

    #[test]
    fn share_redirects_to_compose_for_delegated() {
        let (shell, _) = shell_with_idp();
        shell
            .core
            .put_resource("r1", "bob", "file", vec![])
            .unwrap();
        shell.core.set_user_delegation(
            "bob",
            DelegationConfig {
                am: "am.example".into(),
                host_token: "t".into(),
                delegation_id: "d".into(),
            },
        );
        let net = SimNet::new();
        let req = Request::new(Method::Get, "https://h.example/share")
            .with_param("resource", "r1")
            .with_param("policy", "p-1");
        let resp = shell.route_common(&net, &req).unwrap();
        assert_eq!(resp.status, Status::Found);
        let loc = resp.location().unwrap();
        assert_eq!(loc.path(), "/compose");
        assert_eq!(loc.query("policy"), Some("p-1"));
        assert_eq!(loc.query("owner"), Some("bob"));
    }

    #[test]
    fn share_falls_back_for_undelegated() {
        let (shell, _) = shell_with_idp();
        shell
            .core
            .put_resource("r1", "bob", "file", vec![])
            .unwrap();
        let net = SimNet::new();
        let req = Request::new(Method::Get, "https://h.example/share").with_param("resource", "r1");
        let resp = shell.route_common(&net, &req).unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert!(resp.body.contains("built-in"));
    }

    #[test]
    fn acl_edit_owner_only() {
        let (shell, idp) = shell_with_idp();
        idp.register_user("mallory", "pw");
        shell
            .core
            .put_resource("r1", "bob", "file", vec![])
            .unwrap();
        let net = SimNet::new();

        let bob = idp.login("bob", "pw").unwrap();
        let ok = Request::new(Method::Post, "https://h.example/acl")
            .with_param("subject_token", &bob.token)
            .with_param("resource", "r1")
            .with_param("grantee", "user:alice")
            .with_param("action", "read");
        assert_eq!(shell.route_common(&net, &ok).unwrap().status, Status::Ok);
        assert_eq!(shell.core.legacy_acl("r1").unwrap().len(), 1);

        let mallory = idp.login("mallory", "pw").unwrap();
        let bad = Request::new(Method::Post, "https://h.example/acl")
            .with_param("subject_token", &mallory.token)
            .with_param("resource", "r1")
            .with_param("grantee", "user:mallory")
            .with_param("action", "read");
        assert_eq!(
            shell.route_common(&net, &bad).unwrap().status,
            Status::Forbidden
        );
    }

    #[test]
    fn parse_subject_forms() {
        assert_eq!(parse_subject("public"), Subject::Public);
        assert_eq!(parse_subject("authenticated"), Subject::Authenticated);
        assert_eq!(parse_subject("user:a"), Subject::User("a".into()));
        assert_eq!(parse_subject("group:g"), Subject::Group("g".into()));
        assert_eq!(parse_subject("app:x"), Subject::App("x".into()));
        assert_eq!(parse_subject("bare"), Subject::User("bare".into()));
    }

    #[test]
    fn require_subject_401s_without_session() {
        let (shell, _) = shell_with_idp();
        let req = Request::new(Method::Get, "https://h.example/x");
        let err = shell.require_subject(&req).unwrap_err();
        assert_eq!(err.status, Status::Unauthorized);
    }
}
