//! A tiny raster-image substrate for the WebPics gallery.
//!
//! The paper's prototype gallery "allows users to edit their photos
//! (resize, rotate, crop, etc.)" and "also acts as a Web-based photo
//! editing tool" (§VI). This module supplies the pixel operations those
//! endpoints exercise — enough image processing that the editing code paths
//! are real, without pulling in an image codec.

use std::fmt;

/// A grayscale raster image (one byte per pixel, row-major).
///
/// # Example
///
/// ```
/// use ucam_host::image::Image;
///
/// let img = Image::gradient(4, 2);
/// let rotated = img.rotate90();
/// assert_eq!((rotated.width(), rotated.height()), (2, 4));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    width: u32,
    height: u32,
    pixels: Vec<u8>,
}

/// An error constructing or transforming an image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageError {
    /// Pixel buffer length does not equal `width * height`.
    SizeMismatch {
        /// Expected buffer length.
        expected: usize,
        /// Actual buffer length.
        actual: usize,
    },
    /// A crop rectangle exceeds the image bounds.
    CropOutOfBounds,
    /// A zero width or height was supplied.
    EmptyDimension,
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::SizeMismatch { expected, actual } => {
                write!(f, "pixel buffer holds {actual} bytes, expected {expected}")
            }
            ImageError::CropOutOfBounds => f.write_str("crop rectangle exceeds image bounds"),
            ImageError::EmptyDimension => f.write_str("image dimensions must be non-zero"),
        }
    }
}

impl std::error::Error for ImageError {}

impl Image {
    /// Builds an image from raw pixels.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::SizeMismatch`] or [`ImageError::EmptyDimension`].
    pub fn from_pixels(width: u32, height: u32, pixels: Vec<u8>) -> Result<Self, ImageError> {
        if width == 0 || height == 0 {
            return Err(ImageError::EmptyDimension);
        }
        let expected = (width as usize) * (height as usize);
        if pixels.len() != expected {
            return Err(ImageError::SizeMismatch {
                expected,
                actual: pixels.len(),
            });
        }
        Ok(Image {
            width,
            height,
            pixels,
        })
    }

    /// A deterministic test image (diagonal gradient).
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero.
    #[must_use]
    pub fn gradient(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "dimensions must be non-zero");
        let mut pixels = Vec::with_capacity((width * height) as usize);
        for y in 0..height {
            for x in 0..width {
                pixels.push(((x + y) % 256) as u8);
            }
        }
        Image {
            width,
            height,
            pixels,
        }
    }

    /// Image width in pixels.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    #[must_use]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Raw pixel bytes (row-major).
    #[must_use]
    pub fn pixels(&self) -> &[u8] {
        &self.pixels
    }

    /// The pixel at (x, y).
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[must_use]
    pub fn pixel(&self, x: u32, y: u32) -> u8 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[(y * self.width + x) as usize]
    }

    /// Rotates 90° clockwise.
    #[must_use]
    pub fn rotate90(&self) -> Image {
        let mut out = vec![0u8; self.pixels.len()];
        for y in 0..self.height {
            for x in 0..self.width {
                // (x, y) -> (height-1-y, x) in the rotated image.
                let nx = self.height - 1 - y;
                let ny = x;
                out[(ny * self.height + nx) as usize] = self.pixel(x, y);
            }
        }
        Image {
            width: self.height,
            height: self.width,
            pixels: out,
        }
    }

    /// Crops the rectangle at (x, y) with the given size.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::CropOutOfBounds`] or [`ImageError::EmptyDimension`].
    pub fn crop(&self, x: u32, y: u32, width: u32, height: u32) -> Result<Image, ImageError> {
        if width == 0 || height == 0 {
            return Err(ImageError::EmptyDimension);
        }
        if x.saturating_add(width) > self.width || y.saturating_add(height) > self.height {
            return Err(ImageError::CropOutOfBounds);
        }
        let mut pixels = Vec::with_capacity((width * height) as usize);
        for row in y..y + height {
            for col in x..x + width {
                pixels.push(self.pixel(col, row));
            }
        }
        Ok(Image {
            width,
            height,
            pixels,
        })
    }

    /// Resizes with nearest-neighbour sampling.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::EmptyDimension`] for a zero target size.
    pub fn resize(&self, width: u32, height: u32) -> Result<Image, ImageError> {
        if width == 0 || height == 0 {
            return Err(ImageError::EmptyDimension);
        }
        let mut pixels = Vec::with_capacity((width as usize) * (height as usize));
        for y in 0..height {
            for x in 0..width {
                let sx = (u64::from(x) * u64::from(self.width) / u64::from(width)) as u32;
                let sy = (u64::from(y) * u64::from(self.height) / u64::from(height)) as u32;
                pixels.push(self.pixel(sx, sy));
            }
        }
        Ok(Image {
            width,
            height,
            pixels,
        })
    }

    /// Serializes to a simple binary format (the gallery's storage format).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.pixels.len());
        out.extend_from_slice(&self.width.to_be_bytes());
        out.extend_from_slice(&self.height.to_be_bytes());
        out.extend_from_slice(&self.pixels);
        out
    }

    /// Deserializes from [`Image::to_bytes`] output.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::SizeMismatch`] for truncated or padded input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Image, ImageError> {
        if bytes.len() < 8 {
            return Err(ImageError::SizeMismatch {
                expected: 8,
                actual: bytes.len(),
            });
        }
        let width = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        let height = u32::from_be_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        Image::from_pixels(width, height, bytes[8..].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_validates() {
        assert!(Image::from_pixels(2, 2, vec![0; 4]).is_ok());
        assert!(matches!(
            Image::from_pixels(2, 2, vec![0; 3]),
            Err(ImageError::SizeMismatch {
                expected: 4,
                actual: 3
            })
        ));
        assert!(matches!(
            Image::from_pixels(0, 2, vec![]),
            Err(ImageError::EmptyDimension)
        ));
    }

    #[test]
    fn rotate90_moves_pixels_correctly() {
        // 2x1 image [a b] becomes 1x2 [a; b] ... rotated clockwise:
        // [a b] -> [a]
        //          [b]
        let img = Image::from_pixels(2, 1, vec![10, 20]).unwrap();
        let rot = img.rotate90();
        assert_eq!((rot.width(), rot.height()), (1, 2));
        assert_eq!(rot.pixel(0, 0), 10);
        assert_eq!(rot.pixel(0, 1), 20);
    }

    #[test]
    fn four_rotations_are_identity() {
        let img = Image::gradient(7, 3);
        let back = img.rotate90().rotate90().rotate90().rotate90();
        assert_eq!(back, img);
    }

    #[test]
    fn crop_extracts_subrectangle() {
        let img = Image::gradient(4, 4);
        let crop = img.crop(1, 2, 2, 2).unwrap();
        assert_eq!((crop.width(), crop.height()), (2, 2));
        assert_eq!(crop.pixel(0, 0), img.pixel(1, 2));
        assert_eq!(crop.pixel(1, 1), img.pixel(2, 3));
    }

    #[test]
    fn crop_bounds_checked() {
        let img = Image::gradient(4, 4);
        assert!(matches!(
            img.crop(3, 3, 2, 2),
            Err(ImageError::CropOutOfBounds)
        ));
        assert!(matches!(
            img.crop(0, 0, 0, 1),
            Err(ImageError::EmptyDimension)
        ));
        // Overflow-safe.
        assert!(matches!(
            img.crop(u32::MAX, 0, 2, 2),
            Err(ImageError::CropOutOfBounds)
        ));
    }

    #[test]
    fn resize_identity_and_downscale() {
        let img = Image::gradient(8, 8);
        assert_eq!(img.resize(8, 8).unwrap(), img);
        let small = img.resize(4, 4).unwrap();
        assert_eq!((small.width(), small.height()), (4, 4));
        // Nearest-neighbour picks source pixel (0,0) for target (0,0).
        assert_eq!(small.pixel(0, 0), img.pixel(0, 0));
    }

    #[test]
    fn resize_upscale() {
        let img = Image::from_pixels(2, 1, vec![0, 255]).unwrap();
        let big = img.resize(4, 1).unwrap();
        assert_eq!(big.pixels(), &[0, 0, 255, 255]);
    }

    #[test]
    fn bytes_roundtrip() {
        let img = Image::gradient(5, 9);
        let back = Image::from_bytes(&img.to_bytes()).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(Image::from_bytes(&[1, 2, 3]).is_err());
        assert!(Image::from_bytes(&[0, 0, 0, 2, 0, 0, 0, 2, 1]).is_err()); // 2x2 needs 4 px
    }

    proptest! {
        #[test]
        fn rotate_preserves_pixel_multiset(w in 1u32..12, h in 1u32..12) {
            let img = Image::gradient(w, h);
            let mut a = img.pixels().to_vec();
            let mut b = img.rotate90().pixels().to_vec();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }

        #[test]
        fn bytes_roundtrip_any_size(w in 1u32..16, h in 1u32..16) {
            let img = Image::gradient(w, h);
            prop_assert_eq!(Image::from_bytes(&img.to_bytes()).unwrap(), img);
        }
    }
}
