//! **WebDocs** — the scenario's "Web-based word processor" (§II): Bob
//! "creates documents to describe adventures … organizes … documents into
//! folders". The paper's prototype built two Hosts; the scenario names
//! three, so the reproduction completes the set.

use std::sync::Arc;

use ucam_policy::Action;
use ucam_webenv::{Method, Request, Response, SimClock, Status, Transport, WebApp};

use crate::shell::AppShell;

/// The online word-processor application.
///
/// Documents live under ids `docs/<folder>/<name>` and are UTF-8 text.
///
/// | Route | Meaning |
/// |---|---|
/// | `POST /docs?folder=f&id=d` (body) | create a document (owner session) |
/// | `GET /docs/<folder>/<d>` | read (read-enforced) |
/// | `POST /docs/<folder>/<d>` (body) | replace content (write-enforced) |
/// | `POST /docs/<folder>/<d>/append?text=` | append a paragraph (write-enforced) |
/// | `DELETE /docs/<folder>/<d>` | delete (delete-enforced) |
/// | `GET /folder/<f>` | list documents (list-enforced on `folder-meta/<f>`) |
/// | `POST /folders?name=f` | create a folder |
pub struct WebDocs {
    shell: AppShell,
}

impl std::fmt::Debug for WebDocs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WebDocs")
            .field("shell", &self.shell)
            .finish()
    }
}

impl WebDocs {
    /// Creates the word processor at `authority`.
    #[must_use]
    pub fn new(authority: &str, clock: SimClock) -> Arc<Self> {
        Arc::new(WebDocs {
            shell: AppShell::new(authority, clock),
        })
    }

    /// Access to the shared shell.
    #[must_use]
    pub fn shell(&self) -> &AppShell {
        &self.shell
    }

    fn create_folder(&self, req: &Request) -> Response {
        let owner = match self.shell.require_subject(req) {
            Ok(user) => user,
            Err(resp) => return resp,
        };
        let Some(name) = req.param("name") else {
            return Response::bad_request("name required");
        };
        let id = format!("folder-meta/{name}");
        match self
            .shell
            .core
            .put_resource(&id, &owner, "folder", Vec::new())
        {
            Ok(()) => Response::with_status(Status::Created).with_body(id),
            Err(e) => Response::with_status(Status::Conflict).with_body(e.to_string()),
        }
    }

    fn create_doc(&self, req: &Request) -> Response {
        let owner = match self.shell.require_subject(req) {
            Ok(user) => user,
            Err(resp) => return resp,
        };
        let (folder, name) = match (req.param("folder"), req.param("id")) {
            (Some(f), Some(d)) => (f, d),
            _ => return Response::bad_request("folder and id required"),
        };
        let id = format!("docs/{folder}/{name}");
        match self
            .shell
            .core
            .put_resource(&id, &owner, "document", req.body.clone().into_bytes())
        {
            Ok(()) => Response::with_status(Status::Created).with_body(id),
            Err(e) => Response::with_status(Status::Conflict).with_body(e.to_string()),
        }
    }

    fn doc_route(&self, net: &dyn Transport, req: &Request) -> Response {
        let rest = req.url.path().trim_start_matches("/docs/");
        let segments: Vec<&str> = rest.split('/').filter(|s| !s.is_empty()).collect();
        let (folder, name, op) = match segments.as_slice() {
            [folder, name] => (*folder, *name, None),
            [folder, name, op] => (*folder, *name, Some(*op)),
            _ => return Response::bad_request("expected /docs/<folder>/<doc>[/append]"),
        };
        let id = format!("docs/{folder}/{name}");
        let action = match (req.method, op) {
            (Method::Get, None) => Action::Read,
            (Method::Delete, None) => Action::Delete,
            _ => Action::Write,
        };
        if let Err(resp) = self.shell.enforce_web(net, req, &id, &action) {
            return resp;
        }
        match (req.method, op) {
            (Method::Get, None) => match self.shell.core.resource(&id) {
                Some(r) => Response::ok().with_body(String::from_utf8_lossy(&r.data).into_owned()),
                None => Response::not_found(&id),
            },
            (Method::Delete, None) => match self.shell.core.delete_resource(&id) {
                Ok(_) => Response::with_status(Status::NoContent),
                Err(e) => Response::not_found(&e.to_string()),
            },
            (Method::Post, None) => {
                match self
                    .shell
                    .core
                    .update_resource(&id, req.body.clone().into_bytes())
                {
                    Ok(()) => Response::ok().with_body("saved"),
                    Err(e) => Response::not_found(&e.to_string()),
                }
            }
            (Method::Post, Some("append")) => {
                let Some(text) = req.param("text") else {
                    return Response::bad_request("text required");
                };
                let Some(existing) = self.shell.core.resource(&id) else {
                    return Response::not_found(&id);
                };
                let mut content = existing.data;
                content.extend_from_slice(b"\n");
                content.extend_from_slice(text.as_bytes());
                match self.shell.core.update_resource(&id, content) {
                    Ok(()) => Response::ok().with_body("appended"),
                    Err(e) => Response::not_found(&e.to_string()),
                }
            }
            _ => Response::bad_request("unsupported document operation"),
        }
    }

    fn list_folder(&self, net: &dyn Transport, req: &Request) -> Response {
        let folder = req.url.path().trim_start_matches("/folder/");
        let meta_id = format!("folder-meta/{folder}");
        if let Err(resp) = self.shell.enforce_web(net, req, &meta_id, &Action::List) {
            return resp;
        }
        let docs = self.shell.core.ids_with_prefix(&format!("docs/{folder}/"));
        Response::ok().with_body(docs.join("\n"))
    }
}

impl WebApp for WebDocs {
    fn authority(&self) -> &str {
        self.shell.core.authority()
    }

    fn handle(&self, net: &dyn Transport, req: &Request) -> Response {
        if let Some(resp) = self.shell.route_common(net, req) {
            return resp;
        }
        match (req.method, req.url.path()) {
            (Method::Post, "/folders") => self.create_folder(req),
            (Method::Post, "/docs") => self.create_doc(req),
            (_, path) if path.starts_with("/docs/") => self.doc_route(net, req),
            (Method::Get, path) if path.starts_with("/folder/") => self.list_folder(net, req),
            (_, other) => Response::not_found(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucam_webenv::identity::IdentityProvider;
    use ucam_webenv::SimNet;

    fn setup() -> (SimNet, Arc<WebDocs>, String) {
        let net = SimNet::new();
        let docs = WebDocs::new("webdocs.example", net.clock().clone());
        let idp = IdentityProvider::new("idp.example", net.clock().clone());
        idp.register_user("bob", "pw");
        docs.shell().set_identity_verifier(idp.verifier());
        net.register(docs.clone());
        let token = idp.login("bob", "pw").unwrap().token;
        (net, docs, token)
    }

    #[test]
    fn create_read_append_delete() {
        let (net, _, token) = setup();
        let create = net.dispatch(
            "browser:bob",
            Request::new(Method::Post, "https://webdocs.example/docs")
                .with_param("folder", "trips")
                .with_param("id", "rome")
                .with_param("subject_token", &token)
                .with_body("Day 1: arrived."),
        );
        assert_eq!(create.status, Status::Created);

        net.dispatch(
            "browser:bob",
            Request::new(
                Method::Post,
                "https://webdocs.example/docs/trips/rome/append",
            )
            .with_param("text", "Day 2: colosseum.")
            .with_param("subject_token", &token),
        );

        let read = net.dispatch(
            "browser:bob",
            Request::new(Method::Get, "https://webdocs.example/docs/trips/rome")
                .with_param("subject_token", &token),
        );
        assert_eq!(read.body, "Day 1: arrived.\nDay 2: colosseum.");

        let del = net.dispatch(
            "browser:bob",
            Request::new(Method::Delete, "https://webdocs.example/docs/trips/rome")
                .with_param("subject_token", &token),
        );
        assert_eq!(del.status, Status::NoContent);
    }

    #[test]
    fn replace_content() {
        let (net, _, token) = setup();
        net.dispatch(
            "browser:bob",
            Request::new(Method::Post, "https://webdocs.example/docs")
                .with_param("folder", "f")
                .with_param("id", "d")
                .with_param("subject_token", &token)
                .with_body("v1"),
        );
        let save = net.dispatch(
            "browser:bob",
            Request::new(Method::Post, "https://webdocs.example/docs/f/d")
                .with_param("subject_token", &token)
                .with_body("v2"),
        );
        assert_eq!(save.status, Status::Ok);
        let read = net.dispatch(
            "browser:bob",
            Request::new(Method::Get, "https://webdocs.example/docs/f/d")
                .with_param("subject_token", &token),
        );
        assert_eq!(read.body, "v2");
    }

    #[test]
    fn folders_and_listing() {
        let (net, _, token) = setup();
        net.dispatch(
            "browser:bob",
            Request::new(Method::Post, "https://webdocs.example/folders")
                .with_param("name", "trips")
                .with_param("subject_token", &token),
        );
        for doc in ["rome", "oslo"] {
            net.dispatch(
                "browser:bob",
                Request::new(Method::Post, "https://webdocs.example/docs")
                    .with_param("folder", "trips")
                    .with_param("id", doc)
                    .with_param("subject_token", &token)
                    .with_body("x"),
            );
        }
        let list = net.dispatch(
            "browser:bob",
            Request::new(Method::Get, "https://webdocs.example/folder/trips")
                .with_param("subject_token", &token),
        );
        assert_eq!(list.body, "docs/trips/oslo\ndocs/trips/rome");
    }

    #[test]
    fn stranger_denied() {
        let (net, _, token) = setup();
        net.dispatch(
            "browser:bob",
            Request::new(Method::Post, "https://webdocs.example/docs")
                .with_param("folder", "f")
                .with_param("id", "d")
                .with_param("subject_token", &token)
                .with_body("private"),
        );
        let read = net.dispatch(
            "browser:anon",
            Request::new(Method::Get, "https://webdocs.example/docs/f/d"),
        );
        assert_eq!(read.status, Status::Forbidden);
    }

    #[test]
    fn append_requires_existing_doc() {
        let (net, _, token) = setup();
        let resp = net.dispatch(
            "browser:bob",
            Request::new(Method::Post, "https://webdocs.example/docs/f/ghost/append")
                .with_param("text", "x")
                .with_param("subject_token", &token),
        );
        assert_eq!(resp.status, Status::NotFound);
    }
}
