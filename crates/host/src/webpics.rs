//! **WebPics** — the paper's prototype "online photo gallery": users
//! "upload photos and create photo albums … it allows users to edit their
//! photos (resize, rotate, crop, etc.). Thus, this application also acts as
//! a Web-based photo editing tool." (§VI)
//!
//! WebPics can also act as a Requester: "The online photo album can access
//! photos hosted at the online storage service … users can store photos in
//! their online storage service and can load them to the photo gallery" —
//! see the `/import` route.

use std::sync::Arc;

use parking_lot::Mutex;

use ucam_crypto::{base64url_decode, base64url_encode};
use ucam_policy::Action;
use ucam_requester::{AccessOutcome, AccessSpec, RequesterClient};
use ucam_webenv::{Method, Request, Response, SimClock, Status, Transport, Url, WebApp};

use crate::image::Image;
use crate::shell::AppShell;

/// The online photo gallery application.
///
/// Photo resources live under ids `albums/<album>/<photo>`; album listings
/// are enforced with the `list` action on the album resource
/// `album-meta/<album>`. Photo bodies travel base64url-encoded.
///
/// | Route | Meaning |
/// |---|---|
/// | `POST /albums?name=a` | create an album (owner session) |
/// | `POST /photos?album=a&id=p` (body = base64 image) | upload |
/// | `GET /photos/<album>/<p>` | view (read-enforced) |
/// | `POST /photos/<album>/<p>/rotate` | edit: rotate 90° (write-enforced) |
/// | `POST /photos/<album>/<p>/crop?x&y&w&h` | edit: crop |
/// | `POST /photos/<album>/<p>/resize?w&h` | edit: resize |
/// | `GET /album/<a>` | list photos (list-enforced) |
/// | `POST /import?from=h&src=r&album=a&id=p` | load a photo from another Host (Requester flow) |
pub struct WebPics {
    shell: AppShell,
    client: Mutex<RequesterClient>,
}

impl std::fmt::Debug for WebPics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WebPics")
            .field("shell", &self.shell)
            .finish()
    }
}

impl WebPics {
    /// Creates the gallery at `authority`.
    #[must_use]
    pub fn new(authority: &str, clock: SimClock) -> Arc<Self> {
        Arc::new(WebPics {
            client: Mutex::new(RequesterClient::new(&format!("requester:{authority}"))),
            shell: AppShell::new(authority, clock),
        })
    }

    /// Access to the shared shell.
    #[must_use]
    pub fn shell(&self) -> &AppShell {
        &self.shell
    }

    fn create_album(&self, req: &Request) -> Response {
        let owner = match self.shell.require_subject(req) {
            Ok(user) => user,
            Err(resp) => return resp,
        };
        let Some(name) = req.param("name") else {
            return Response::bad_request("name required");
        };
        let id = format!("album-meta/{name}");
        match self
            .shell
            .core
            .put_resource(&id, &owner, "album", Vec::new())
        {
            Ok(()) => Response::with_status(Status::Created).with_body(id),
            Err(e) => Response::with_status(Status::Conflict).with_body(e.to_string()),
        }
    }

    fn upload_photo(&self, req: &Request) -> Response {
        let owner = match self.shell.require_subject(req) {
            Ok(user) => user,
            Err(resp) => return resp,
        };
        let (album, photo) = match (req.param("album"), req.param("id")) {
            (Some(a), Some(p)) => (a, p),
            _ => return Response::bad_request("album and id required"),
        };
        let Ok(bytes) = base64url_decode(&req.body) else {
            return Response::bad_request("body must be base64url image data");
        };
        if Image::from_bytes(&bytes).is_err() {
            return Response::bad_request("body is not a valid image");
        }
        let id = format!("albums/{album}/{photo}");
        match self.shell.core.put_resource(&id, &owner, "photo", bytes) {
            Ok(()) => Response::with_status(Status::Created).with_body(id),
            Err(e) => Response::with_status(Status::Conflict).with_body(e.to_string()),
        }
    }

    fn photo_route(&self, net: &dyn Transport, req: &Request) -> Response {
        // /photos/<album>/<photo>[/<op>]
        let rest = req.url.path().trim_start_matches("/photos/");
        let segments: Vec<&str> = rest.split('/').filter(|s| !s.is_empty()).collect();
        let (album, photo, op) = match segments.as_slice() {
            [album, photo] => (*album, *photo, None),
            [album, photo, op] => (*album, *photo, Some(*op)),
            _ => return Response::bad_request("expected /photos/<album>/<photo>[/<op>]"),
        };
        let id = format!("albums/{album}/{photo}");

        match op {
            None => {
                if let Err(resp) = self.shell.enforce_web(net, req, &id, &Action::Read) {
                    return resp;
                }
                match self.shell.core.resource(&id) {
                    Some(resource) => Response::ok().with_body(base64url_encode(&resource.data)),
                    None => Response::not_found(&id),
                }
            }
            Some(op) => {
                if let Err(resp) = self.shell.enforce_web(net, req, &id, &Action::Write) {
                    return resp;
                }
                self.edit_photo(&id, op, req)
            }
        }
    }

    /// The Web-based photo editing tool (§VI).
    fn edit_photo(&self, id: &str, op: &str, req: &Request) -> Response {
        let Some(resource) = self.shell.core.resource(id) else {
            return Response::not_found(id);
        };
        let Ok(image) = Image::from_bytes(&resource.data) else {
            return Response::bad_request("stored resource is not an image");
        };
        let edited = match op {
            "rotate" => Ok(image.rotate90()),
            "crop" => {
                let coords =
                    ["x", "y", "w", "h"].map(|k| req.param(k).and_then(|v| v.parse::<u32>().ok()));
                match coords {
                    [Some(x), Some(y), Some(w), Some(h)] => {
                        image.crop(x, y, w, h).map_err(|e| e.to_string())
                    }
                    _ => Err("crop needs numeric x, y, w, h".to_owned()),
                }
            }
            "resize" => {
                let dims = ["w", "h"].map(|k| req.param(k).and_then(|v| v.parse::<u32>().ok()));
                match dims {
                    [Some(w), Some(h)] => image.resize(w, h).map_err(|e| e.to_string()),
                    _ => Err("resize needs numeric w, h".to_owned()),
                }
            }
            other => Err(format!("unknown edit operation: {other}")),
        };
        let edited = match edited {
            Ok(img) => img,
            Err(msg) => return Response::bad_request(&msg),
        };
        match self.shell.core.update_resource(id, edited.to_bytes()) {
            Ok(()) => Response::ok().with_body(format!(
                "{op} ok; now {}x{}",
                edited.width(),
                edited.height()
            )),
            Err(e) => Response::not_found(&e.to_string()),
        }
    }

    fn list_album(&self, net: &dyn Transport, req: &Request) -> Response {
        let album = req.url.path().trim_start_matches("/album/");
        let meta_id = format!("album-meta/{album}");
        if let Err(resp) = self.shell.enforce_web(net, req, &meta_id, &Action::List) {
            return resp;
        }
        let photos = self.shell.core.ids_with_prefix(&format!("albums/{album}/"));
        Response::ok().with_body(photos.join("\n"))
    }

    /// Acting as a Requester (§VI): load a photo stored at another Host
    /// (e.g. WebStorage) through the full token flow.
    fn import(&self, net: &dyn Transport, req: &Request) -> Response {
        let owner = match self.shell.require_subject(req) {
            Ok(user) => user,
            Err(resp) => return resp,
        };
        let params = (
            req.param("from"),
            req.param("src"),
            req.param("album"),
            req.param("id"),
        );
        let (from, src, album, photo) = match params {
            (Some(f), Some(s), Some(a), Some(p)) => {
                (f.to_owned(), s.to_owned(), a.to_owned(), p.to_owned())
            }
            _ => return Response::bad_request("from, src, album, id required"),
        };
        let spec = AccessSpec::read(Url::new(&from, &format!("/{src}")));
        let mut client = self.client.lock();
        if let Some(token) = req.param("subject_token") {
            client.set_subject_token(Some(token.to_owned()));
        }
        match client.access(net, &spec) {
            AccessOutcome::Granted(resp) => {
                // Remote hosts serve bodies as text; image payloads travel
                // base64url-encoded. Decode when it parses as an image,
                // otherwise keep the raw bytes.
                let bytes = match base64url_decode(&resp.body) {
                    Ok(decoded) if Image::from_bytes(&decoded).is_ok() => decoded,
                    _ => resp.body.into_bytes(),
                };
                let id = format!("albums/{album}/{photo}");
                match self.shell.core.put_resource(&id, &owner, "photo", bytes) {
                    Ok(()) => Response::with_status(Status::Created).with_body(id),
                    Err(e) => Response::with_status(Status::Conflict).with_body(e.to_string()),
                }
            }
            AccessOutcome::Denied(reason) => Response::forbidden(&reason),
            AccessOutcome::PendingConsent { consent_id, .. } => {
                Response::with_status(Status::Accepted).with_body(consent_id)
            }
            AccessOutcome::NeedsClaims(msg) => {
                Response::with_status(Status::PaymentRequired).with_body(msg)
            }
            AccessOutcome::Failed(resp) => resp,
        }
    }
}

impl WebApp for WebPics {
    fn authority(&self) -> &str {
        self.shell.core.authority()
    }

    fn handle(&self, net: &dyn Transport, req: &Request) -> Response {
        if let Some(resp) = self.shell.route_common(net, req) {
            return resp;
        }
        match (req.method, req.url.path()) {
            (Method::Post, "/albums") => self.create_album(req),
            (Method::Post, "/photos") => self.upload_photo(req),
            (_, path) if path.starts_with("/photos/") => self.photo_route(net, req),
            (Method::Get, path) if path.starts_with("/album/") => self.list_album(net, req),
            (Method::Post, "/import") => self.import(net, req),
            (_, other) => Response::not_found(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucam_webenv::identity::IdentityProvider;
    use ucam_webenv::SimNet;

    fn setup() -> (SimNet, Arc<WebPics>, String) {
        let net = SimNet::new();
        let pics = WebPics::new("webpics.example", net.clock().clone());
        let idp = IdentityProvider::new("idp.example", net.clock().clone());
        idp.register_user("bob", "pw");
        pics.shell().set_identity_verifier(idp.verifier());
        net.register(pics.clone());
        let token = idp.login("bob", "pw").unwrap().token;
        (net, pics, token)
    }

    fn upload(net: &dyn Transport, token: &str, album: &str, id: &str, image: &Image) -> Response {
        net.dispatch(
            "browser:bob",
            Request::new(Method::Post, "https://webpics.example/photos")
                .with_param("album", album)
                .with_param("id", id)
                .with_param("subject_token", token)
                .with_body(base64url_encode(&image.to_bytes())),
        )
    }

    #[test]
    fn upload_and_view() {
        let (net, _, token) = setup();
        let img = Image::gradient(8, 8);
        assert_eq!(
            upload(&net, &token, "rome", "p1", &img).status,
            Status::Created
        );
        let view = net.dispatch(
            "browser:bob",
            Request::new(Method::Get, "https://webpics.example/photos/rome/p1")
                .with_param("subject_token", &token),
        );
        assert_eq!(view.status, Status::Ok);
        let bytes = base64url_decode(&view.body).unwrap();
        assert_eq!(Image::from_bytes(&bytes).unwrap(), img);
    }

    #[test]
    fn upload_rejects_garbage() {
        let (net, _, token) = setup();
        let resp = net.dispatch(
            "browser:bob",
            Request::new(Method::Post, "https://webpics.example/photos")
                .with_param("album", "a")
                .with_param("id", "p")
                .with_param("subject_token", &token)
                .with_body("!!!not-base64!!!"),
        );
        assert_eq!(resp.status, Status::BadRequest);
    }

    #[test]
    fn editing_operations() {
        let (net, pics, token) = setup();
        let img = Image::gradient(8, 4);
        upload(&net, &token, "rome", "p1", &img);

        let rot = net.dispatch(
            "browser:bob",
            Request::new(
                Method::Post,
                "https://webpics.example/photos/rome/p1/rotate",
            )
            .with_param("subject_token", &token),
        );
        assert_eq!(rot.status, Status::Ok);
        assert!(rot.body.contains("4x8"), "{}", rot.body);

        let crop = net.dispatch(
            "browser:bob",
            Request::new(Method::Post, "https://webpics.example/photos/rome/p1/crop")
                .with_param("subject_token", &token)
                .with_param("x", "0")
                .with_param("y", "0")
                .with_param("w", "2")
                .with_param("h", "2"),
        );
        assert_eq!(crop.status, Status::Ok);

        let resize = net.dispatch(
            "browser:bob",
            Request::new(
                Method::Post,
                "https://webpics.example/photos/rome/p1/resize",
            )
            .with_param("subject_token", &token)
            .with_param("w", "6")
            .with_param("h", "6"),
        );
        assert_eq!(resize.status, Status::Ok);

        let stored = pics.shell().core.resource("albums/rome/p1").unwrap();
        let final_img = Image::from_bytes(&stored.data).unwrap();
        assert_eq!((final_img.width(), final_img.height()), (6, 6));
    }

    #[test]
    fn bad_crop_parameters_rejected() {
        let (net, _, token) = setup();
        upload(&net, &token, "rome", "p1", &Image::gradient(4, 4));
        let resp = net.dispatch(
            "browser:bob",
            Request::new(Method::Post, "https://webpics.example/photos/rome/p1/crop")
                .with_param("subject_token", &token)
                .with_param("x", "3")
                .with_param("y", "3")
                .with_param("w", "9")
                .with_param("h", "9"),
        );
        assert_eq!(resp.status, Status::BadRequest);
        let unknown = net.dispatch(
            "browser:bob",
            Request::new(Method::Post, "https://webpics.example/photos/rome/p1/sepia")
                .with_param("subject_token", &token),
        );
        assert_eq!(unknown.status, Status::BadRequest);
    }

    #[test]
    fn albums_create_and_list() {
        let (net, _, token) = setup();
        let created = net.dispatch(
            "browser:bob",
            Request::new(Method::Post, "https://webpics.example/albums")
                .with_param("name", "rome")
                .with_param("subject_token", &token),
        );
        assert_eq!(created.status, Status::Created);
        upload(&net, &token, "rome", "p1", &Image::gradient(2, 2));
        upload(&net, &token, "rome", "p2", &Image::gradient(2, 2));
        let list = net.dispatch(
            "browser:bob",
            Request::new(Method::Get, "https://webpics.example/album/rome")
                .with_param("subject_token", &token),
        );
        assert_eq!(list.status, Status::Ok);
        assert_eq!(list.body, "albums/rome/p1\nalbums/rome/p2");
    }

    #[test]
    fn stranger_cannot_view_or_edit() {
        let (net, _, token) = setup();
        upload(&net, &token, "rome", "p1", &Image::gradient(2, 2));
        let view = net.dispatch(
            "browser:anon",
            Request::new(Method::Get, "https://webpics.example/photos/rome/p1"),
        );
        assert_eq!(view.status, Status::Forbidden);
        let edit = net.dispatch(
            "browser:anon",
            Request::new(
                Method::Post,
                "https://webpics.example/photos/rome/p1/rotate",
            ),
        );
        assert_eq!(edit.status, Status::Forbidden);
    }
}
